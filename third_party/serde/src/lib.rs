//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` trait names (blanket-implemented
//! for every type) and re-exports the no-op derive macros, so code written
//! against the real serde compiles unchanged in a no-network build.

pub use serde_derive::{Deserialize, Serialize};

/// Stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
