//! Offline stand-in for `criterion`: runs each registered benchmark a
//! configurable number of samples and prints mean wall-clock per
//! iteration. No statistical analysis, plots, or saved baselines — just
//! enough to keep `cargo bench` meaningful in a no-network build.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Mini benchmark driver mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size as u64,
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = if bencher.iterations == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / bencher.iterations.max(1) as u32
        };
        println!(
            "{id:<50} {per_iter:>12?}/iter  ({} iters, {:?} total)",
            bencher.iterations, bencher.elapsed
        );
        self
    }
}

/// Mirrors `criterion::Bencher`: times a closure over repeated calls.
#[derive(Debug)]
pub struct Bencher {
    samples: u64,
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One warm-up call outside the timed region.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = self.samples;
    }
}

/// Mirrors `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_routine() {
        let mut criterion = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        criterion.bench_function("counting", |b| b.iter(|| calls += 1));
        // One warm-up call plus three timed samples.
        assert_eq!(calls, 4);
    }
}
