//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy generating `Vec`s with length drawn from `size` and elements
/// drawn from `element`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Creates a vector strategy: lengths from `size`, elements from
/// `element`. An empty `size` range (e.g. `0..0`) always yields `vec![]`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.end.saturating_sub(self.size.start);
        let len = if span == 0 {
            self.size.start.min(self.size.end)
        } else {
            self.size.start + rng.below(span as u64) as usize
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = TestRng::from_name("vec");
        let strat = vec(0usize..5, 2..7);
        for _ in 0..500 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
