//! Deterministic case generation and failure reporting.

/// Cases run per property. Smaller than the real proptest's 256 default —
/// properties here wrap whole training loops — but large enough to probe
/// boundary behavior.
pub const CASES: u32 = 64;

/// A deterministic splitmix64 generator. Each property derives its own
/// stream from the test's name, so runs are stable across machines and
/// processes (no RUST_TEST_THREADS sensitivity, no wall-clock seeding).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name via FNV-1a.
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: hash }
    }

    /// Next raw 64-bit draw (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0) is meaningless");
        // Multiply-shift bounded draw; bias is negligible at these sizes.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// A failed property case, carrying the formatted assertion message.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps an assertion message.
    pub fn new(message: String) -> Self {
        Self { message }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic_per_name() {
        let mut a = TestRng::from_name("alpha");
        let mut b = TestRng::from_name("alpha");
        let mut c = TestRng::from_name("beta");
        let draws_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let draws_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let draws_c: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(draws_a, draws_b);
        assert_ne!(draws_a, draws_c);
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = TestRng::from_name("below");
        for n in 1..100u64 {
            for _ in 0..100 {
                assert!(rng.below(n) < n);
            }
        }
    }

    #[test]
    fn unit_draw_stays_in_range() {
        let mut rng = TestRng::from_name("unit");
        for _ in 0..10_000 {
            let x = rng.next_unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
