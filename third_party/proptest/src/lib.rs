//! Offline stand-in for `proptest`: a small but genuinely functional
//! property-testing engine.
//!
//! Supports the API surface this repository uses — numeric range
//! strategies, tuple composition, [`Strategy::prop_map`],
//! [`collection::vec`], [`arbitrary::any`], and the `proptest!` /
//! `prop_assert*!` macros — and actually runs each property over
//! [`test_runner::CASES`] deterministic pseudo-random cases. Unlike the
//! real crate there is no failure shrinking and no persisted regression
//! corpus: a failing case reports its case index and per-test seed, which
//! is enough to reproduce it (seeding is a pure function of the test
//! name).

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// item expands to a `#[test]` that evaluates the body over
/// [`test_runner::CASES`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for __proptest_case in 0..$crate::test_runner::CASES {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )*
                    let __proptest_result: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(err) = __proptest_result {
                        panic!(
                            "property '{}' failed at case {}/{}: {}",
                            stringify!($name),
                            __proptest_case,
                            $crate::test_runner::CASES,
                            err
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with formatted context) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::new(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::new(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!`-style equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::new(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// `prop_assert!`-style inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::new(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}
