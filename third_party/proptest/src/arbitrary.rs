//! The `any::<T>()` strategy for types with a canonical full-range
//! distribution.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types that can be drawn uniformly over their full domain.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u16
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy drawing arbitrary values of `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Creates the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u64_varies() {
        let mut rng = TestRng::from_name("any");
        let a = any::<u64>().generate(&mut rng);
        let b = any::<u64>().generate(&mut rng);
        assert_ne!(a, b, "consecutive full-range draws should differ");
    }
}
