//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! float_range_strategy {
    ($($float:ty),*) => {
        $(
            impl Strategy for Range<$float> {
                type Value = $float;

                fn generate(&self, rng: &mut TestRng) -> $float {
                    let span = f64::from(self.end) - f64::from(self.start);
                    let draw = f64::from(self.start) + span * rng.next_unit_f64();
                    let value = draw as $float;
                    // Rounding may land exactly on the (exclusive) end.
                    if value < self.end {
                        value
                    } else {
                        self.start
                    }
                }
            }
        )*
    };
}

float_range_strategy!(f32);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let span = self.end - self.start;
        let draw = self.start + span * rng.next_unit_f64();
        if draw < self.end {
            draw
        } else {
            self.start
        }
    }
}

macro_rules! int_range_strategy {
    ($($int:ty),*) => {
        $(
            impl Strategy for Range<$int> {
                type Value = $int;

                fn generate(&self, rng: &mut TestRng) -> $int {
                    debug_assert!(self.start < self.end, "empty integer range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $int
                }
            }
        )*
    };
}

int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {
        $(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, G)
);

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let f = (0.25f32..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let d = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&d));
            let u = (5usize..9).generate(&mut rng);
            assert!((5..9).contains(&u));
        }
    }

    #[test]
    fn prop_map_composes() {
        let mut rng = TestRng::from_name("map");
        let strat = (1usize..10).prop_map(|n| n * 2);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
    }

    #[test]
    fn tuples_draw_independently() {
        let mut rng = TestRng::from_name("tuple");
        let strat = (0.0f32..1.0, 0usize..4, 0.0f64..1.0);
        let (a, b, c) = strat.generate(&mut rng);
        assert!((0.0..1.0).contains(&a));
        assert!(b < 4);
        assert!((0.0..1.0).contains(&c));
    }
}
