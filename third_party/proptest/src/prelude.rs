//! The glob-import surface mirroring `proptest::prelude`.

pub use crate::arbitrary::any;
pub use crate::strategy::{Just, Strategy};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

/// Mirrors the real prelude's `prop` module alias.
pub mod prop {
    pub use crate::collection;
}
