//! Offline stand-in for `serde_derive`: the derives expand to nothing.
//! The companion `serde` stand-in blanket-implements the traits, so
//! `#[derive(Serialize, Deserialize)]` still type-checks everywhere.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
