//! Offline stand-in for `serde_json`.
//!
//! Serialization returns a placeholder document; offline experiment runs
//! still produce their human-readable tables on stdout, only the JSON
//! side-car files degrade to `"{}"`.

/// Error type mirroring `serde_json::Error`'s public face.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json stand-in: serialization unavailable offline")
    }
}

impl std::error::Error for Error {}

/// Placeholder for `serde_json::to_string_pretty`.
pub fn to_string_pretty<T: ?Sized>(_value: &T) -> Result<String, Error> {
    Ok("{}".to_owned())
}

/// Placeholder for `serde_json::to_string`.
pub fn to_string<T: ?Sized>(_value: &T) -> Result<String, Error> {
    Ok("{}".to_owned())
}
