//! Umbrella crate re-exporting the Shoggoth reproduction workspace.
pub use shoggoth;
