#!/usr/bin/env bash
# Performance harness: Criterion micro-benchmarks plus the fixed-workload
# throughput probe. The probe writes BENCH_tensor.json to the repo root
# (training steps/sec before/after the kernel refactor, matmul ns per
# size, end-to-end simulated frames/sec, fleet serial-vs-parallel wall
# time). See DESIGN.md "Performance architecture" for how to read it.
#
# Usage:
#   scripts/bench.sh            # probe + full criterion suite
#   scripts/bench.sh --probe    # throughput probe only (CI smoke)
#   scripts/bench.sh <filter>   # probe + criterion benches matching filter
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tensor/runner throughput probe (release) -> BENCH_tensor.json"
cargo run --release -q -p shoggoth-bench --bin tensor_throughput

if [[ "${1:-}" == "--probe" ]]; then
  exit 0
fi

echo "==> criterion micro-benchmarks"
cargo bench -p shoggoth-bench --bench components "${@}"
