#!/usr/bin/env python3
"""Render the measured-results section of EXPERIMENTS.md from the JSON
files the harness binaries write to target/experiments/.

Usage: python3 scripts/experiments_md.py > /tmp/measured.md
"""
import json
import os
import sys

DIR = os.path.join(os.path.dirname(__file__), "..", "target", "experiments")


def load(name):
    path = os.path.join(DIR, f"{name}.json")
    if not os.path.exists(path):
        return None
    with open(path) as f:
        return json.load(f)


def table1():
    d = load("table1")
    if not d:
        return
    print(f"### Table I (measured at {d['frames_per_stream']} frames/stream, seed {d['seed']})\n")
    print("| Stream | Strategy | Up (Kbps) | Down (Kbps) | mAP@0.5 (%) |")
    print("|---|---|---:|---:|---:|")
    for r in d["reports"]:
        print(
            f"| {r['stream_name']} | {r['strategy']} | {r['uplink_kbps']:.1f} "
            f"| {r['downlink_kbps']:.1f} | {r['map50'] * 100:.1f} |"
        )
    print()


def table2():
    d = load("table2")
    if not d:
        return
    print(f"### Table II (measured at {d['frames']} frames, seed {d['seed']})\n")
    print("| Method | mAP (%) | Forward (s) | Backward (s) | Overall (s) |")
    print("|---|---:|---:|---:|---:|")
    for r in d["rows"]:
        print(
            f"| {r['method']} | {r['map50'] * 100:.1f} | {r['forward_secs']:.1f} "
            f"| {r['backward_secs']:.1f} | {r['overall_secs']:.1f} |"
        )
    print()


def table3():
    d = load("table3")
    if not d:
        return
    print(f"### Table III (measured at {d['frames']} frames, seed {d['seed']})\n")
    print("| Rate (fps) | Up BW (Kbps) | Average IoU | mAP (%) |")
    print("|---|---:|---:|---:|")
    for r in d["rows"]:
        print(
            f"| {r['rate']} | {r['uplink_kbps']:.1f} | {r['average_iou']:.3f} "
            f"| {r['map50'] * 100:.1f} |"
        )
    print()


def fig4():
    d = load("fig4")
    if not d:
        return
    print(f"### Figure 4 (measured at {d['frames']} frames, seed {d['seed']})\n")
    print("| Strategy | Avg FPS | Min FPS |")
    print("|---|---:|---:|")
    for name, avg, mn in d["averages"]:
        print(f"| {name} | {avg:.1f} | {mn:.1f} |")
    print()


def fig5():
    d = load("fig5")
    if not d:
        return
    print(f"### Figure 5 (measured at {d['frames']} frames, seed {d['seed']})\n")
    print("| Strategy | frames with mAP gain > 0 vs Edge-Only |")
    print("|---|---:|")
    for name, frac in d["fraction_above_zero"]:
        print(f"| {name} | {frac * 100:.1f}% |")
    print()
    print(f"* Shoggoth gain > AMS gain on **{d['shoggoth_beats_ams'] * 100:.1f}%** of frames (paper: 73%).")
    print(f"* Shoggoth gain ≥ Cloud-Only gain on **{d['shoggoth_meets_cloud'] * 100:.1f}%** of frames (paper: ~20%).")
    print()


if __name__ == "__main__":
    for section in (table1, table2, table3, fig4, fig5):
        section()
    print(file=sys.stderr)
