#!/usr/bin/env bash
# The whole CI gate, runnable locally. Every step must pass before merge;
# see DESIGN.md §8 (Correctness tooling) for what the domain lints check.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo run -p xtask -- lint"
cargo run -q -p xtask -- lint

echo "==> cargo test --workspace (tier-1 and crate tests)"
cargo test -q --workspace

echo "==> cargo test -p shoggoth-tensor --features finite-check"
cargo test -q -p shoggoth-tensor --features finite-check

echo "CI green."
