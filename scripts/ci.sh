#!/usr/bin/env bash
# The whole CI gate, runnable locally. Every step must pass before merge;
# see DESIGN.md §8 (Correctness tooling) for what the domain lints check.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo run -p xtask -- lint"
cargo run -q -p xtask -- lint

echo "==> cargo test --workspace (tier-1 and crate tests)"
cargo test -q --workspace

echo "==> cargo test -p shoggoth-tensor --features finite-check"
cargo test -q -p shoggoth-tensor --features finite-check

# Gating: chaos smoke. A fixed-seed worst-case fault schedule (stacked
# outages, bursty loss, degradation, jitter, flaky cloud) must complete
# without a panic; see DESIGN.md §10 (Failure model & resilience). The
# traced run must also leave its telemetry artifacts behind (§11).
echo "==> chaos smoke: cargo run --release --example unreliable_network"
cargo run -q --release --example unreliable_network
for artifact in target/experiments/telemetry_unreliable_network.jsonl \
                target/experiments/telemetry_unreliable_network.html; do
  if [[ ! -s "$artifact" ]]; then
    echo "chaos smoke did not export $artifact (or it is empty)" >&2
    exit 1
  fi
done
echo "    telemetry artifacts present (JSONL + timeline HTML)"

# Non-gating: the throughput probe exercises the release-mode hot path and
# refreshes BENCH_tensor.json, but perf numbers on shared runners are too
# noisy to gate a merge on.
echo "==> bench smoke: scripts/bench.sh --probe (non-gating)"
if ! bash scripts/bench.sh --probe; then
  echo "bench smoke failed (non-gating; see output above)"
fi

echo "CI green."
