//! Anatomy of data drift — the paper's Figure 1, measured.
//!
//! Shows the two faces of drift on the UA-DETRAC-like preset:
//! (a) the class distribution shifts between domains (Fig. 1(c)), and
//! (b) the same lightweight student that is sharp on its source domain
//! falls apart on night scenes, while the cloud teacher barely notices.
//!
//! ```bash
//! cargo run --release --example drift_anatomy
//! ```

use shoggoth::sim::{SimConfig, Simulation};
use shoggoth::strategy::Strategy;
use shoggoth_models::{
    sample_domain_batch, StudentConfig, StudentDetector, TeacherConfig, TeacherDetector,
};
use shoggoth_util::Rng;
use shoggoth_video::domain::class_histogram;
use shoggoth_video::presets;

fn main() {
    let stream = presets::detrac(3);
    let library = &stream.library;
    let world = library.world();
    let classes = world.num_classes();

    // (a) Class-distribution shift: sample each domain's mix.
    println!("class distribution per domain (car / bus / van / truck):");
    println!("{:-<66}", "");
    let mut rng = Rng::seed_from(1);
    for domain in library.domains() {
        let draws: Vec<usize> = (0..4000).map(|_| domain.sample_class(&mut rng)).collect();
        let hist = class_histogram(&draws, classes);
        let bars: Vec<String> = hist
            .iter()
            .map(|h| format!("{:>5.1}%", h * 100.0))
            .collect();
        println!("{:<16} {}", domain.name, bars.join("  "));
    }
    println!("{:-<66}", "");

    // (b) Appearance drift: per-domain accuracy of student vs teacher.
    println!("\npre-training student (day-sunny only) and teacher (all domains) ...");
    let mut student = StudentDetector::pretrained_with(
        StudentConfig::new(world.feature_dim(), classes, 5).quick(),
        library,
        0,
    );
    let mut teacher = TeacherDetector::pretrained_with(
        TeacherConfig::new(world.feature_dim(), classes, 6).quick(),
        library,
    );

    println!("\nclassification accuracy per domain:");
    println!("{:-<54}", "");
    println!(
        "{:<16} {:>12} {:>12} {:>10}",
        "domain", "student", "teacher", "gap"
    );
    println!("{:-<54}", "");
    for domain in library.domains() {
        let eval = sample_domain_batch(world, domain, 400, 200, &mut rng);
        let s = student.evaluate(&eval);
        let t = teacher.evaluate(&eval);
        println!(
            "{:<16} {:>11.1}% {:>11.1}% {:>9.1}%",
            domain.name,
            s * 100.0,
            t * 100.0,
            (t - s) * 100.0
        );
    }
    println!("{:-<54}", "");
    println!("\nthe widening gap on drifted domains is the accuracy Shoggoth's");
    println!("adaptive online learning recovers (see `traffic_surveillance`).");

    // (c) What recovering it looks like: a short adaptive run on the same
    // preset, summarized by the report's Display form.
    println!("\nrunning 60 s of adaptive online learning on this stream ...\n");
    let mut config = SimConfig::quick(presets::detrac(3).with_total_frames(1800));
    config.strategy = Strategy::Shoggoth;
    let report = Simulation::run(&config).expect("simulation run failed");
    println!("{report}");
    println!("\nper-frame drift/recovery timelines for runs like this come from:");
    println!("  cargo run --release -p shoggoth-bench --bin timeline");
    println!("  (writes target/experiments/telemetry_*.jsonl and .html)");
}
