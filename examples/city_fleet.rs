//! City fleet: many cameras, one cloud GPU.
//!
//! Simulates a small deployment of traffic cameras, all sharing the same
//! cloud server, and shows why the paper argues Shoggoth scales to more
//! devices per GPU than AMS: the cloud only *labels* for Shoggoth, while
//! for AMS it also *trains* every device's model.
//!
//! ```bash
//! cargo run --release --example city_fleet
//! ```

use shoggoth::fleet::{run_fleet, FleetConfig};
use shoggoth::sim::SimConfig;
use shoggoth::strategy::Strategy;
use shoggoth_video::presets;

fn main() {
    let devices = 3;
    println!("simulating a {devices}-camera fleet (this pre-trains models once) ...\n");

    println!("{:-<78}", "");
    println!(
        "{:<12} {:>10} {:>14} {:>16} {:>18}",
        "strategy", "mean mAP", "up Kbps/dev", "GPU util/dev", "devices per GPU"
    );
    println!("{:-<78}", "");
    for strategy in [Strategy::Shoggoth, Strategy::Ams, Strategy::CloudOnly] {
        let mut base = SimConfig::quick(presets::detrac(23).with_total_frames(5400));
        base.strategy = strategy;
        let report = run_fleet(&FleetConfig::new(base, devices)).expect("fleet run failed");
        let supported = if report.supported_devices_per_gpu.is_finite() {
            format!("{:.0}", report.supported_devices_per_gpu)
        } else {
            "unlimited".into()
        };
        println!(
            "{:<12} {:>9.1}% {:>14.1} {:>15.2}% {:>18}",
            report.strategy,
            report.mean_map50 * 100.0,
            report.mean_uplink_kbps,
            report.gpu_utilization_per_device * 100.0,
            supported
        );
    }
    println!("{:-<78}", "");
    println!("\nShoggoth's cloud footprint is labeling-only, so one GPU serves the");
    println!("most cameras; Cloud-Only burns GPU on every single frame.");
}
