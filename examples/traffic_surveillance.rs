//! Traffic surveillance: the paper's motivating workload.
//!
//! A UA-DETRAC-like intersection camera rides through day, rain, dusk and
//! night. This example compares Shoggoth against the Edge-Only baseline
//! *per scene*, showing where adaptive online learning earns its keep —
//! exactly the data-drift story of the paper's Figure 1.
//!
//! ```bash
//! cargo run --release --example traffic_surveillance
//! ```

use shoggoth::sim::{SimConfig, Simulation};
use shoggoth::strategy::Strategy;
use shoggoth_metrics::map::{map_at_05, FrameEval};
use shoggoth_models::Detector;
use shoggoth_video::presets;

fn main() {
    let stream = presets::detrac(11).with_total_frames(7200); // 4 minutes

    let mut config = SimConfig::quick(stream.clone());
    config.strategy = Strategy::Shoggoth;
    println!("pre-training models ...");
    let (student, teacher) = Simulation::build_models(&config);

    // Run Shoggoth once through the stream.
    let shoggoth = Simulation::run_with_models(&config, student.clone(), teacher.clone())
        .expect("simulation run failed");

    // For the per-scene breakdown, replay the stream with the frozen
    // (non-adapted) student and score both strategies scene by scene.
    let mut frozen = student;
    let mut scene_names: Vec<String> = Vec::new();
    let mut edge_evals: Vec<Vec<FrameEval>> = Vec::new();
    let mut shoggoth_maps: Vec<Vec<f64>> = Vec::new();
    for frame in stream.build() {
        if frame.scene_index >= scene_names.len() {
            scene_names.push(frame.domain_name.clone());
            edge_evals.push(Vec::new());
            shoggoth_maps.push(Vec::new());
        }
        let detections = frozen.detect(&frame);
        shoggoth_maps[frame.scene_index].push(shoggoth.per_frame_map[frame.index as usize]);
        edge_evals[frame.scene_index].push(FrameEval {
            detections,
            ground_truth: frame.ground_truth,
        });
    }

    let classes = stream.library.world().num_classes();
    println!("\nscene-by-scene mAP@0.5 (%), Edge-Only vs Shoggoth:");
    println!("{:-<64}", "");
    println!(
        "{:<6} {:<22} {:>12} {:>12}",
        "scene", "domain", "Edge-Only", "Shoggoth"
    );
    println!("{:-<64}", "");
    for (i, name) in scene_names.iter().enumerate() {
        let edge_map = map_at_05(&edge_evals[i], classes) * 100.0;
        let shog_map =
            shoggoth_maps[i].iter().sum::<f64>() / shoggoth_maps[i].len().max(1) as f64 * 100.0;
        let marker = if shog_map > edge_map + 2.0 {
            "  <- adapted"
        } else {
            ""
        };
        println!("{i:<6} {name:<22} {edge_map:>12.1} {shog_map:>12.1}{marker}");
    }
    println!("{:-<64}", "");
    println!(
        "\noverall: Shoggoth mAP {:.1} % using {:.1} Kbps uplink, {} training sessions",
        shoggoth.map50 * 100.0,
        shoggoth.uplink_kbps,
        shoggoth.training_sessions
    );
}
