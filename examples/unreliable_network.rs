//! Drive a KITTI stream through a scripted outage storm and watch the
//! edge's resilience layer manage the failures.
//!
//! The schedule stacks every fault the link model supports: a long
//! mid-run outage, a second short one, a bandwidth-degradation episode,
//! bursty Gilbert–Elliott loss, and latency jitter — plus a flaky cloud
//! labeling service. The run is fully deterministic (seeded RNG), which
//! is also why CI uses it as the chaos smoke test.
//!
//! ```bash
//! cargo run --release --example unreliable_network
//! ```

use shoggoth::resilience::ResilienceConfig;
use shoggoth::sim::{SimConfig, Simulation};
use shoggoth::strategy::Strategy;
use shoggoth::CloudFaultProfile;
use shoggoth_net::{FaultProfile, GilbertElliott, LatencyJitter, LinkConfig};
use shoggoth_telemetry::{render_timeline, to_jsonl, RingRecorder};
use shoggoth_video::presets;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let storm = FaultProfile::none()
        .with_loss_rate(0.05)
        .with_burst(GilbertElliott::bursty())
        .with_outage(15.0, 58.0)
        .with_outage(75.0, 79.0)
        .with_degradation(60.0, 68.0, 0.5)
        .with_jitter(LatencyJitter {
            jitter_secs: 0.05,
            spike_prob: 0.1,
            spike_secs: 1.0,
        });

    let mut config = SimConfig::quick(presets::kitti(29).with_total_frames(2700));
    config.strategy = Strategy::Shoggoth;
    config.link = LinkConfig::cellular().with_fault(storm);
    config.cloud.faults = CloudFaultProfile {
        label_drop_rate: 0.1,
        slow_label_rate: 0.2,
        slow_label_secs: 0.5,
    };

    println!("90 s KITTI run through an outage storm (pre-training models) ...\n");
    let (student, teacher) = Simulation::build_models(&config);
    let mut recorder = RingRecorder::default();
    let resilient =
        Simulation::run_traced(&config, student.clone(), teacher.clone(), &mut recorder)?;

    // The same storm without the resilience layer: fire-and-forget.
    let mut naive_config = config.clone();
    naive_config.resilience = ResilienceConfig::disabled();
    let naive = Simulation::run_with_models(&naive_config, student, teacher)?;

    let r = &resilient.resilience;
    println!("resilience counters");
    println!("{:-<58}", "");
    println!("  upload timeouts        {:>8}", r.upload_timeouts);
    println!("  retransmits            {:>8}", r.retransmits);
    println!("  retries dropped        {:>8}", r.retries_dropped);
    println!("  breaker opens          {:>8}", r.breaker_opens);
    println!("  breaker half-opens     {:>8}", r.breaker_half_opens);
    println!("  breaker closes         {:>8}", r.breaker_closes);
    println!("  probe uploads          {:>8}", r.probe_uploads);
    println!("  suppressed uploads     {:>8}", r.suppressed_uploads);
    println!("  suppressed bytes       {:>8}", r.suppressed_bytes);
    println!("  cloud label drops      {:>8}", r.cloud_label_drops);
    println!("  slow label batches     {:>8}", r.slow_label_batches);
    println!("  messages lost          {:>8}", r.messages_lost);
    println!("    of which outage      {:>8}", r.outage_drops);
    println!(
        "  breaker spans (s)      closed {:.1} / open {:.1} / half-open {:.1}",
        r.closed_secs, r.open_secs, r.half_open_secs
    );
    println!("{:-<58}", "");
    println!(
        "\n{:<18} {:>12} {:>12} {:>10}",
        "", "uplink KB", "sessions", "mAP@0.5"
    );
    for (name, report) in [("resilient", &resilient), ("fire-and-forget", &naive)] {
        println!(
            "{:<18} {:>12.1} {:>12} {:>9.1}%",
            name,
            report.uplink_bytes as f64 / 1024.0,
            report.training_sessions,
            report.map50 * 100.0
        );
    }
    println!(
        "\nThe breaker spent {:.0} s suspended instead of transmitting into a",
        r.open_secs
    );
    println!("dead link, then recovered by probe and retransmitted the queued");
    println!("chunks — the extra uplink over fire-and-forget is the price of");
    println!("actually getting labels (and training sessions) through the storm.");

    // Export the traced run as telemetry artifacts: one stamped event per
    // JSONL line, and a self-contained SVG timeline of the whole storm.
    let records = recorder.records();
    let dir = std::path::Path::new("target/experiments");
    std::fs::create_dir_all(dir)?;
    let jsonl = dir.join("telemetry_unreliable_network.jsonl");
    std::fs::write(&jsonl, to_jsonl(&records))?;
    let html = dir.join("telemetry_unreliable_network.html");
    std::fs::write(
        &html,
        render_timeline("Shoggoth through the outage storm", &records),
    )?;
    println!("\n{resilient}");
    println!(
        "\n[telemetry exported to {} and {}]",
        jsonl.display(),
        html.display()
    );
    Ok(())
}
