//! Sampling-rate policies head to head (the paper's Table III story).
//!
//! Runs the same drifting stream under several fixed sampling rates and
//! under the adaptive controller, then prints the bandwidth/accuracy
//! trade-off each policy achieved, plus the adaptive controller's rate
//! trajectory so you can watch it react to scene changes.
//!
//! ```bash
//! cargo run --release --example sampling_policies
//! ```

use shoggoth::controller::{phi_score, ControllerConfig, SamplingRateController};
use shoggoth::sim::{SimConfig, Simulation};
use shoggoth::strategy::Strategy;
use shoggoth_models::Detector;
use shoggoth_video::presets;

fn main() {
    let stream = presets::waymo(17).with_total_frames(5400); // 3 minutes

    let mut base = SimConfig::quick(stream.clone());
    println!("pre-training models ...");
    let (student, teacher) = Simulation::build_models(&base);

    println!("\npolicy comparison on {} :", stream.name);
    println!("{:-<66}", "");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>10}",
        "policy", "up Kbps", "avg IoU", "mAP %", "sessions"
    );
    println!("{:-<66}", "");
    let policies = [
        ("fixed 0.2", Strategy::FixedRate(0.2)),
        ("fixed 0.8", Strategy::FixedRate(0.8)),
        ("fixed 2.0", Strategy::FixedRate(2.0)),
        ("adaptive", Strategy::Shoggoth),
    ];
    for (label, strategy) in policies {
        base.strategy = strategy;
        let report = Simulation::run_with_models(&base, student.clone(), teacher.clone())
            .expect("simulation run failed");
        println!(
            "{:<12} {:>12.1} {:>12.3} {:>12.1} {:>10}",
            label,
            report.uplink_kbps,
            report.average_iou,
            report.map50 * 100.0,
            report.training_sessions
        );
    }
    println!("{:-<66}", "");

    // Show the raw controller reacting to a synthetic φ/α trace: a calm
    // stretch, a scene change, then calm again.
    println!("\ncontroller trajectory on a synthetic calm -> change -> calm trace:");
    let mut ctl =
        SamplingRateController::new(ControllerConfig::paper_defaults()).expect("valid defaults");
    let mut teacher = teacher;
    let mut prev: Option<Vec<shoggoth_models::Detection>> = None;
    let mut shown_step = 0;
    for (i, frame) in stream.build().enumerate() {
        if i % 30 != 0 {
            continue; // observe once per second
        }
        let dets = teacher.detect(&frame);
        if let Some(p) = &prev {
            ctl.observe_phi(phi_score(p, &dets));
        }
        prev = Some(dets);
        if i % 300 == 0 {
            // Update every 10 s with a plausible α.
            let alpha = if frame.domain_name.contains("night") {
                0.5
            } else {
                0.95
            };
            let rate = ctl.update(alpha, 0.4);
            shown_step += 1;
            println!(
                "  t={:>5.0}s  domain={:<22} phi_bar={:.2}  rate={:.2} fps",
                frame.timestamp,
                frame.domain_name,
                ctl.phi_bar(),
                rate
            );
            if shown_step >= 18 {
                break;
            }
        }
    }
}
