//! Build your own drift scenario with [`shoggoth_video::StreamBuilder`]
//! and run Shoggoth on it.
//!
//! The scenario: a highway toll plaza that is calm all morning, hit by a
//! violent storm, then dark. Shoggoth should coast cheaply through the
//! calm stretch and burst its sampling rate at the two drift events.
//!
//! ```bash
//! cargo run --release --example custom_scenario
//! ```

use shoggoth::sim::{SimConfig, Simulation};
use shoggoth::strategy::Strategy;
use shoggoth_video::{Illumination, StreamBuilder, Weather, WorldConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stream = StreamBuilder::new("toll-plaza", WorldConfig::new(3, 32, 77))
        // Classes: car, truck, motorcycle. The first domain is the
        // pre-training source.
        .domain(
            "morning",
            Illumination::Day,
            Weather::Sunny,
            0.0,
            vec![6.0, 2.0, 1.0],
        )
        .domain(
            "storm",
            Illumination::Dusk,
            Weather::Rainy,
            0.8,
            vec![4.0, 3.0, 0.2],
        )
        .domain(
            "night",
            Illumination::Night,
            Weather::Cloudy,
            0.9,
            vec![5.0, 2.0, 0.1],
        )
        .scene("morning", 2400) // 80 s of calm
        .scene("storm", 1800)
        .scene("morning", 900)
        .scene("night", 1800)
        .scene("morning", 900)
        .mean_objects(6.0)
        .transition_frames(60)
        .build()?;

    println!(
        "custom scenario: {} frames over {} scenes",
        stream.total_frames(),
        5
    );
    println!("pre-training models ...\n");

    let mut config = SimConfig::quick(stream);
    let (student, teacher) = Simulation::build_models(&config);

    println!("{:-<64}", "");
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>10}",
        "strategy", "mAP %", "up Kbps", "avg rate", "sessions"
    );
    println!("{:-<64}", "");
    for strategy in [Strategy::EdgeOnly, Strategy::Shoggoth, Strategy::Prompt] {
        config.strategy = strategy;
        let report = Simulation::run_with_models(&config, student.clone(), teacher.clone())
            .expect("simulation run failed");
        println!(
            "{:<12} {:>10.1} {:>12.1} {:>12.2} {:>10}",
            report.strategy,
            report.map50 * 100.0,
            report.uplink_kbps,
            report.avg_sampling_rate,
            report.training_sessions
        );
    }
    println!("{:-<64}", "");
    Ok(())
}
