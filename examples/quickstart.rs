//! Quickstart: run the Shoggoth edge-cloud system on a short synthetic
//! video stream and print what happened.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use shoggoth::sim::{SimConfig, Simulation};
use shoggoth::strategy::Strategy;
use shoggoth_video::presets;

fn main() {
    // A KITTI-like stream: one object class, four driving domains,
    // trimmed to two minutes of 30 fps video.
    let stream = presets::kitti(7).with_total_frames(3600);

    // Paper-scaled configuration, small models so this example runs in
    // seconds even in debug builds.
    let mut config = SimConfig::quick(stream);
    config.strategy = Strategy::Shoggoth;

    println!("pre-training student (source domain) and teacher (all domains) ...");
    let report = Simulation::run(&config).expect("simulation run failed");

    println!("\n{report}");

    // Compare against the no-adaptation baseline on the same stream.
    let mut edge_config = config.clone();
    edge_config.strategy = Strategy::EdgeOnly;
    let edge = Simulation::run(&edge_config).expect("simulation run failed");
    println!(
        "\nEdge-Only baseline   : mAP {:.1} % at zero bandwidth",
        edge.map50 * 100.0
    );
    println!(
        "adaptive online learning gained {:+.1} mAP points",
        (report.map50 - edge.map50) * 100.0
    );
    println!("\nfor a per-frame telemetry timeline of a run like this, see:");
    println!("  cargo run --release -p shoggoth-bench --bin timeline");
    println!("  (writes target/experiments/telemetry_*.jsonl and .html)");
}
