//! Telemetry golden tests: recording must be *observation only*.
//!
//! The contract under test is the one `DESIGN.md` §11 states: a traced
//! run and an untraced run of the same seeded scenario produce
//! bit-identical [`SimReport`]s (equality deliberately ignores the
//! attached summary), and fleet traces merge identically for every
//! worker-thread count. A recorder that perturbed a single RNG draw or
//! control-flow branch would fail every test in this file.

use proptest::prelude::*;
use shoggoth::fleet::{run_fleet_traced, FleetConfig};
use shoggoth::sim::{SimConfig, SimReport, Simulation};
use shoggoth::strategy::Strategy;
use shoggoth::CloudFaultProfile;
use shoggoth_models::{StudentDetector, TeacherDetector};
use shoggoth_net::{FaultProfile, GilbertElliott, LatencyJitter, LinkConfig};
use shoggoth_telemetry::{Histogram, NoopRecorder, Record, Recorder, RingRecorder};
use shoggoth_video::presets;

const STREAM_SEED: u64 = 83;

/// The chaos acceptance scenario: the scripted outage storm from the
/// `unreliable_network` smoke test, on the same stream seed the chaos
/// harness uses, plus a flaky cloud labeler.
fn storm_config(frames: u64) -> SimConfig {
    let storm = FaultProfile::none()
        .with_loss_rate(0.05)
        .with_burst(GilbertElliott::bursty())
        .with_outage(15.0, 58.0)
        .with_outage(75.0, 79.0)
        .with_degradation(60.0, 68.0, 0.5)
        .with_jitter(LatencyJitter {
            jitter_secs: 0.05,
            spike_prob: 0.1,
            spike_secs: 1.0,
        });
    let mut config = SimConfig::quick(presets::kitti(STREAM_SEED).with_total_frames(frames));
    config.strategy = Strategy::Shoggoth;
    config.link = LinkConfig::cellular().with_fault(storm);
    config.cloud.faults = CloudFaultProfile {
        label_drop_rate: 0.1,
        slow_label_rate: 0.2,
        slow_label_secs: 0.5,
    };
    config
}

thread_local! {
    /// One pre-trained model pair per test thread (`Mlp` is not `Sync`);
    /// models depend on the stream library, not the frame count.
    static MODELS: (StudentDetector, TeacherDetector) =
        Simulation::build_models(&storm_config(60));
}

fn run_traced<R: Recorder>(config: &SimConfig, recorder: &mut R) -> SimReport {
    let (student, teacher) = MODELS.with(Clone::clone);
    Simulation::run_traced(config, student, teacher, recorder).expect("traced run must not fail")
}

#[test]
fn tracing_is_observation_only() {
    let config = storm_config(2_700);

    let untraced = run_traced(&config, &mut NoopRecorder);
    assert!(untraced.telemetry.is_none(), "no-op must not aggregate");

    let mut ring = RingRecorder::default();
    let traced = run_traced(&config, &mut ring);

    // The golden assertion: every measured field bit-identical. The manual
    // `PartialEq` on `SimReport` destructures all fields, so a new field
    // that escaped the determinism contract would fail here too.
    assert_eq!(untraced, traced, "recording must not perturb the run");
    assert!(!ring.records().is_empty(), "storm must leave a trace");
}

#[test]
fn ring_summary_agrees_with_the_report() {
    let config = storm_config(2_700);
    let mut ring = RingRecorder::default();
    let report = run_traced(&config, &mut ring);

    let summary = report.telemetry.as_ref().expect("ring aggregates");
    assert!(summary.events_recorded > 0);

    // Counters double-book the engine's own accounting; any drift between
    // the two means an event site was missed or double-fired.
    let c = &summary.counters;
    let r = &report.resilience;
    assert_eq!(c.frames, report.frames, "one FrameStatus per frame");
    assert_eq!(c.upload_timeouts, r.upload_timeouts);
    assert_eq!(c.uploads_suppressed, r.suppressed_uploads);
    assert_eq!(c.probe_uploads, r.probe_uploads);
    assert_eq!(c.retransmits, r.retransmits);
    assert_eq!(c.cloud_label_drops, r.cloud_label_drops);
    assert_eq!(c.slow_label_batches, r.slow_label_batches);
    // `messages_lost` also counts telemetry beacons and downlink batches,
    // which have no `ChunkUploaded` event.
    assert!(c.uploads_lost <= r.messages_lost);
    assert_eq!(
        c.breaker_transitions,
        r.breaker_opens + r.breaker_half_opens + r.breaker_closes,
        "every breaker transition must be traced"
    );
    assert_eq!(c.adaptation_steps, report.training_sessions as u64);
    assert!(c.breaker_transitions >= 2, "storm must trip the breaker");

    // Histogram invariant on real data: buckets always partition samples.
    assert_eq!(summary.queue_depth.count, report.frames);
    let bucket_sum: u64 = summary.queue_depth.buckets.iter().map(|(_, n)| n).sum();
    assert_eq!(bucket_sum, summary.queue_depth.count);
}

#[test]
fn fleet_traces_are_thread_count_invariant() {
    let devices = 3;
    let serial = FleetConfig::new(storm_config(900), devices).with_threads(1);
    let threaded = FleetConfig::new(storm_config(900), devices).with_threads(4);

    let (serial_report, serial_traces) =
        run_fleet_traced(&serial, RingRecorder::DEFAULT_CAPACITY).expect("serial fleet runs");
    let (threaded_report, threaded_traces) =
        run_fleet_traced(&threaded, RingRecorder::DEFAULT_CAPACITY).expect("threaded fleet runs");

    assert_eq!(serial_report, threaded_report, "fleet reports must match");
    assert_eq!(
        serial_traces, threaded_traces,
        "merged event streams must be identical for every thread count"
    );
    assert_eq!(serial_traces.len(), devices);
    assert!(serial_traces.iter().all(|trace| !trace.is_empty()));

    // Devices replay different streams, so their traces must differ.
    assert_ne!(serial_traces[0], serial_traces[1]);
}

proptest! {
    /// Histogram bucket counts always sum to the number of recorded
    /// events, whatever mix of finite, infinite, and NaN samples arrives.
    #[test]
    fn histogram_buckets_partition_all_samples(
        bit_patterns in proptest::collection::vec(any::<u64>(), 0..200)
    ) {
        // Reinterpreted bits cover the whole f64 domain — NaNs,
        // infinities, subnormals — and the specials are forced in.
        let mut values: Vec<f64> = bit_patterns.iter().map(|b| f64::from_bits(*b)).collect();
        values.extend([f64::NAN, f64::INFINITY, f64::NEG_INFINITY]);
        let mut histogram = Histogram::new(&[0.0, 1.0, 10.0, 100.0]);
        for value in &values {
            histogram.record(*value);
        }
        prop_assert_eq!(histogram.total(), values.len() as u64);
        let summary = histogram.summary();
        let bucket_sum: u64 = summary.buckets.iter().map(|(_, n)| n).sum();
        prop_assert_eq!(bucket_sum, summary.count);
        prop_assert_eq!(summary.count, values.len() as u64);
    }
}

/// Exported records survive the JSONL round into one line per event, and
/// the timeline carries all four lanes — the artifact shape CI checks.
#[test]
fn exports_have_the_documented_shape() {
    let config = storm_config(900);
    let mut ring = RingRecorder::default();
    let _report = run_traced(&config, &mut ring);
    let records: Vec<Record> = ring.records();

    let jsonl = shoggoth_telemetry::to_jsonl(&records);
    assert_eq!(jsonl.lines().count(), records.len(), "one line per record");
    assert!(jsonl
        .lines()
        .all(|line| line.starts_with('{') && line.ends_with('}')));

    let html = shoggoth_telemetry::render_timeline("storm", &records);
    assert!(html.contains("<svg"), "timeline must embed an SVG");
    for lane in [
        "sampling rate (fps)",
        "accuracy (per-frame mAP@0.5)",
        "uplink (MB cumulative)",
        "breaker state",
    ] {
        assert!(html.contains(lane), "missing lane: {lane}");
    }
}
