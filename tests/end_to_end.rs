//! Cross-crate integration tests: full simulations exercising every crate
//! together, checking the paper's qualitative claims on small streams.

use shoggoth::sim::{SimConfig, SimReport, Simulation};
use shoggoth::strategy::Strategy;
use shoggoth_models::{StudentDetector, TeacherDetector};
use shoggoth_video::presets;

/// Builds a quick config over a deterministic KITTI-like stream.
fn config(strategy: Strategy, frames: u64) -> SimConfig {
    let mut config = SimConfig::quick(presets::waymo(31).with_total_frames(frames));
    config.strategy = strategy;
    config
}

fn run_all(frames: u64) -> (Vec<(Strategy, SimReport)>, StudentDetector, TeacherDetector) {
    let base = config(Strategy::EdgeOnly, frames);
    let (student, teacher) = Simulation::build_models(&base);
    let mut reports = Vec::new();
    for strategy in Strategy::table_one() {
        let cfg = config(strategy, frames);
        let report = Simulation::run_with_models(&cfg, student.clone(), teacher.clone())
            .expect("run succeeds");
        reports.push((strategy, report));
    }
    (reports, student, teacher)
}

fn find(reports: &[(Strategy, SimReport)], s: Strategy) -> &SimReport {
    &reports.iter().find(|(st, _)| *st == s).expect("ran").1
}

#[test]
fn table_one_qualitative_orderings_hold() {
    let (reports, _, _) = run_all(2700); // 90 seconds
    let edge = find(&reports, Strategy::EdgeOnly);
    let cloud = find(&reports, Strategy::CloudOnly);
    let shoggoth = find(&reports, Strategy::Shoggoth);
    let ams = find(&reports, Strategy::Ams);
    let prompt = find(&reports, Strategy::Prompt);

    // Accuracy: the golden model dominates; adaptive strategies must not
    // collapse relative to the static edge model. (On a 90-second stream
    // the quick models get only 2-3 sessions, so small dips from early
    // pseudo-label noise are tolerated — the long-horizon gains are
    // asserted by the full-scale harness, not this smoke test.)
    assert!(
        cloud.map50 > edge.map50 + 0.05,
        "cloud {} vs edge {}",
        cloud.map50,
        edge.map50
    );
    assert!(
        shoggoth.map50 >= edge.map50 - 0.08,
        "shoggoth {} vs edge {}",
        shoggoth.map50,
        edge.map50
    );
    assert!(
        ams.map50 >= edge.map50 - 0.08,
        "ams {} vs edge {}",
        ams.map50,
        edge.map50
    );
    assert!(
        prompt.map50 >= edge.map50 - 0.08,
        "prompt {} vs edge {}",
        prompt.map50,
        edge.map50
    );

    // Bandwidth: Cloud-Only dwarfs everything; Edge-Only uses nothing;
    // Shoggoth's label downlink is tiny next to AMS's model downlink.
    assert_eq!(edge.uplink_bytes, 0);
    assert!(
        cloud.uplink_bytes > 4 * shoggoth.uplink_bytes.max(1),
        "cloud {} vs shoggoth {}",
        cloud.uplink_bytes,
        shoggoth.uplink_bytes
    );
    assert!(cloud.downlink_bytes > cloud.uplink_bytes / 2);
    if ams.training_sessions > 0 {
        assert!(ams.downlink_bytes > 5 * shoggoth.downlink_bytes.max(1));
    }

    // FPS: only strategies that train on the edge dip below 30.
    assert!((edge.avg_fps - 30.0).abs() < 1e-9);
    assert!((cloud.avg_fps - 30.0).abs() < 1e-9);
    assert!((find(&reports, Strategy::Ams).avg_fps - 30.0).abs() < 1e-9);
}

#[test]
fn prompt_uses_more_uplink_than_adaptive() {
    let (reports, _, _) = run_all(2700);
    let shoggoth = find(&reports, Strategy::Shoggoth);
    let prompt = find(&reports, Strategy::Prompt);
    // Prompt samples at the maximum rate; the adaptive controller cannot
    // exceed it.
    assert!(prompt.uplink_bytes >= shoggoth.uplink_bytes);
    assert!(prompt.avg_sampling_rate >= shoggoth.avg_sampling_rate - 1e-9);
}

#[test]
fn reports_are_internally_consistent() {
    let (reports, _, _) = run_all(1800);
    for (strategy, report) in &reports {
        assert_eq!(report.frames, 1800, "{strategy}");
        assert_eq!(report.per_frame_map.len(), 1800, "{strategy}");
        assert!((0.0..=1.0).contains(&report.map50), "{strategy}");
        assert!((0.0..=1.0).contains(&report.average_iou), "{strategy}");
        assert!(report.min_fps <= report.avg_fps, "{strategy}");
        assert!(report.duration_secs > 59.0, "{strategy}");
        // Kbps figures must agree with the byte totals.
        let expect_up = report.uplink_bytes as f64 * 8.0 / 1000.0 / report.duration_secs;
        assert!((report.uplink_kbps - expect_up).abs() < 1e-6, "{strategy}");
    }
}

#[test]
fn same_seed_same_report_different_seed_different_stream() {
    let cfg = config(Strategy::Shoggoth, 900);
    let (student, teacher) = Simulation::build_models(&cfg);
    let a = Simulation::run_with_models(&cfg, student.clone(), teacher.clone()).expect("runs");
    let b = Simulation::run_with_models(&cfg, student.clone(), teacher.clone()).expect("runs");
    assert_eq!(a.map50, b.map50);
    assert_eq!(a.uplink_bytes, b.uplink_bytes);

    let mut cfg2 = cfg.clone();
    cfg2.stream = cfg2.stream.with_seed(99);
    let c = Simulation::run_with_models(&cfg2, student, teacher).expect("runs");
    assert_ne!(a.per_frame_map, c.per_frame_map);
}

#[test]
fn adaptive_rate_moves_with_the_stream() {
    // On a long-enough stream, the controller must have moved the rate
    // off its initial value at least once.
    let cfg = config(Strategy::Shoggoth, 3600);
    let report = Simulation::run(&cfg).expect("runs");
    let initial = cfg.cloud.controller.initial_rate;
    assert!(
        (report.final_sampling_rate - initial).abs() > 1e-6
            || (report.avg_sampling_rate - initial).abs() > 1e-3,
        "controller never acted: avg {} final {}",
        report.avg_sampling_rate,
        report.final_sampling_rate
    );
    // And it must respect the paper's bounds.
    assert!(report.final_sampling_rate >= 0.1 - 1e-9);
    assert!(report.final_sampling_rate <= 2.0 + 1e-9);
}
