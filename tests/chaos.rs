//! Chaos harness: scripted fault schedules and property-based sweeps over
//! arbitrary ones.
//!
//! Every test here asserts the same contract: *no fault schedule may
//! panic the engine*, every frame is played and reported, byte counters
//! stay monotone in run length, and the circuit breaker's per-state span
//! accounting sums to the simulation duration. All fault injection draws
//! from the simulation's seeded RNG, so each schedule is replayed
//! bit-identically — including across `parallel_map` fleet runs.

use proptest::prelude::*;
use shoggoth::fleet::{run_fleet, FleetConfig};
use shoggoth::resilience::ResilienceConfig;
use shoggoth::sim::{SimConfig, SimReport, Simulation};
use shoggoth::strategy::Strategy;
use shoggoth::CloudFaultProfile;
use shoggoth_models::{StudentDetector, TeacherDetector};
use shoggoth_net::{FaultProfile, GilbertElliott, LatencyJitter, LinkConfig};
use shoggoth_video::presets;

const STREAM_SEED: u64 = 83;

fn chaos_config(frames: u64, fault: FaultProfile) -> SimConfig {
    let mut config = SimConfig::quick(presets::kitti(STREAM_SEED).with_total_frames(frames));
    config.strategy = Strategy::Shoggoth;
    config.link = LinkConfig::cellular().with_fault(fault);
    config
}

thread_local! {
    /// Models are stream-library-scoped, not frame-count-scoped, so one
    /// pre-trained pair (per test thread — `Mlp` is not `Sync`) serves
    /// every run in this harness.
    static MODELS: (StudentDetector, TeacherDetector) =
        Simulation::build_models(&chaos_config(60, FaultProfile::none()));
}

fn run(config: &SimConfig) -> SimReport {
    let (student, teacher) = MODELS.with(Clone::clone);
    Simulation::run_with_models(config, student, teacher).expect("chaos run must not fail")
}

/// The shared invariants every chaos run must uphold.
fn assert_invariants(report: &SimReport, frames: u64) {
    assert_eq!(report.frames, frames, "every frame must be played");
    assert!(
        (0.0..=1.0).contains(&report.map50),
        "map50 {}",
        report.map50
    );
    let r = &report.resilience;
    let span_sum = r.closed_secs + r.open_secs + r.half_open_secs;
    assert!(
        (span_sum - report.duration_secs).abs() < 1e-6,
        "breaker spans {} must sum to duration {}",
        span_sum,
        report.duration_secs
    );
    assert!(r.breaker_closes <= r.breaker_half_opens);
    assert!(r.breaker_half_opens <= r.breaker_opens);
    assert!(r.outage_drops <= r.messages_lost);
}

fn worst_case_fault() -> FaultProfile {
    FaultProfile::none()
        .with_loss_rate(0.2)
        .with_burst(GilbertElliott::bursty())
        .with_outage(8.0, 16.0)
        .with_outage(25.0, 28.0)
        .with_degradation(4.0, 20.0, 0.2)
        .with_jitter(LatencyJitter {
            jitter_secs: 0.05,
            spike_prob: 0.1,
            spike_secs: 1.5,
        })
}

#[test]
fn scripted_schedules_complete_with_invariants() {
    let schedules = [
        (
            "bursty",
            FaultProfile::none().with_burst(GilbertElliott::bursty()),
        ),
        (
            "outage storm",
            FaultProfile::none()
                .with_outage(5.0, 12.0)
                .with_outage(15.0, 22.0)
                .with_outage(25.0, 29.0),
        ),
        (
            "degraded and jittery",
            FaultProfile::none()
                .with_degradation(0.0, 30.0, 0.1)
                .with_jitter(LatencyJitter {
                    jitter_secs: 0.1,
                    spike_prob: 0.2,
                    spike_secs: 2.0,
                }),
        ),
        ("worst case", worst_case_fault()),
    ];
    for (name, fault) in schedules {
        let config = chaos_config(900, fault);
        let report = run(&config);
        assert_invariants(&report, 900);
        println!(
            "{name}: timeouts {} retransmits {} opens {} suppressed {}",
            report.resilience.upload_timeouts,
            report.resilience.retransmits,
            report.resilience.breaker_opens,
            report.resilience.suppressed_uploads,
        );
    }
}

#[test]
fn cloud_faults_starve_training_without_crashing() {
    let mut config = chaos_config(1800, FaultProfile::none());
    config.cloud.faults = CloudFaultProfile {
        label_drop_rate: 0.4,
        slow_label_rate: 0.9,
        slow_label_secs: 1.0,
    };
    let report = run(&config);
    assert_invariants(&report, 1800);
    assert!(
        report.resilience.cloud_label_drops > 0,
        "a flaky cloud should drop some label batches"
    );
    assert!(report.resilience.slow_label_batches > 0);
}

#[test]
fn worst_case_schedule_is_deterministic() {
    let config = chaos_config(900, worst_case_fault());
    let a = run(&config);
    let b = run(&config);
    assert_eq!(a, b, "identical seed + schedule must be bit-identical");
}

#[test]
fn chaos_fleet_is_thread_count_invariant() {
    let mut base = chaos_config(600, worst_case_fault());
    base.strategy = Strategy::Shoggoth;
    let serial = run_fleet(&FleetConfig::new(base.clone(), 3).with_threads(1))
        .expect("serial chaos fleet completes");
    let parallel = run_fleet(&FleetConfig::new(base, 3).with_threads(4))
        .expect("parallel chaos fleet completes");
    assert_eq!(
        serial, parallel,
        "fleet chaos runs must not depend on worker scheduling"
    );
    for report in &serial.per_device {
        assert_invariants(report, 600);
    }
}

#[test]
fn scripted_outage_window_saves_bandwidth_at_edge_only_accuracy() {
    // The acceptance scenario: a total outage covering the entire run.
    // The breaker must bound the uplink spend (strictly below the
    // fire-and-forget behavior of earlier revisions) while accuracy
    // matches Edge-Only on the identical stream and models.
    let fault = FaultProfile::none().with_outage(0.0, 1e9);
    let config = chaos_config(2700, fault);

    let resilient = run(&config);
    let mut fire_and_forget = config.clone();
    fire_and_forget.resilience = ResilienceConfig::disabled();
    let wasteful = run(&fire_and_forget);
    let mut edge_cfg = config.clone();
    edge_cfg.strategy = Strategy::EdgeOnly;
    let edge = run(&edge_cfg);

    assert_invariants(&resilient, 2700);
    assert!(
        resilient.uplink_bytes < wasteful.uplink_bytes,
        "breaker must save bytes: {} vs {}",
        resilient.uplink_bytes,
        wasteful.uplink_bytes
    );
    assert!(
        resilient.map50 >= edge.map50 - 1e-9,
        "no worse than Edge-Only"
    );
    assert_eq!(resilient.training_sessions, 0, "no labels, no training");
    assert!(resilient.resilience.breaker_opens >= 1);
    assert!(resilient.resilience.suppressed_bytes > 0);
    assert_eq!(
        resilient.resilience.outage_drops, resilient.resilience.messages_lost,
        "every loss here is an outage loss"
    );
}

proptest! {
    /// Arbitrary valid fault schedules: the run completes, plays every
    /// frame, keeps byte counters monotone in run length, and the breaker
    /// span accounting closes.
    #[test]
    fn arbitrary_fault_schedules_hold_invariants(
        loss_rate in 0.0..1.0f64,
        enter_bad in 0.0..0.5f64,
        exit_bad in 0.01..1.0f64,
        loss_bad in 0.0..1.0f64,
        outage_start in 0.0..10.0f64,
        outage_len in 0.5..8.0f64,
        factor in 0.05..1.0f64,
        jitter_secs in 0.0..0.2f64,
        spike_prob in 0.0..0.3f64,
        label_drop in 0.0..0.5f64,
        slow_rate in 0.0..0.5f64,
    ) {
        let fault = FaultProfile::none()
            .with_loss_rate(loss_rate)
            .with_burst(GilbertElliott {
                enter_bad,
                exit_bad,
                loss_good: 0.01,
                loss_bad,
            })
            .with_outage(outage_start, outage_start + outage_len)
            .with_degradation(2.0, 14.0, factor)
            .with_jitter(LatencyJitter {
                jitter_secs,
                spike_prob,
                spike_secs: 1.0,
            });
        let mut short = chaos_config(240, fault);
        short.cloud.faults = CloudFaultProfile {
            label_drop_rate: label_drop,
            slow_label_rate: slow_rate,
            slow_label_secs: 0.5,
        };
        let mut long = short.clone();
        long.stream = long.stream.with_total_frames(480);

        let short_report = run(&short);
        let long_report = run(&long);
        assert_invariants(&short_report, 240);
        assert_invariants(&long_report, 480);
        // The long run replays the short run as a prefix, so its byte
        // counters must dominate (monotonicity).
        prop_assert!(long_report.uplink_bytes >= short_report.uplink_bytes);
        prop_assert!(long_report.downlink_bytes >= short_report.downlink_bytes);
    }
}
