//! Failure-injection tests: the system must degrade gracefully, not
//! crash, when the network misbehaves.

use shoggoth::resilience::ResilienceConfig;
use shoggoth::sim::{SimConfig, Simulation};
use shoggoth::strategy::Strategy;
use shoggoth_net::LinkConfig;
use shoggoth_video::presets;

fn base(frames: u64) -> SimConfig {
    let mut config = SimConfig::quick(presets::kitti(61).with_total_frames(frames));
    config.strategy = Strategy::Shoggoth;
    config
}

#[test]
fn lossy_link_still_completes() {
    let mut config = base(1800);
    config.link = LinkConfig::cellular().with_loss_rate(0.3);
    let report = Simulation::run(&config).expect("lossy run still completes");
    assert_eq!(report.frames, 1800);
    // Uplink bytes are still billed for lost messages (the sender
    // transmitted them).
    assert!(report.uplink_bytes > 0);
}

#[test]
fn total_blackout_degrades_to_edge_only_accuracy() {
    let config_ok = base(2700);
    let (student, teacher) = Simulation::build_models(&config_ok);

    let mut config_dead = config_ok.clone();
    config_dead.link = LinkConfig::cellular().with_loss_rate(1.0);
    let dead = Simulation::run_with_models(&config_dead, student.clone(), teacher.clone())
        .expect("dead-link run still completes");

    let mut config_edge = config_ok.clone();
    config_edge.strategy = Strategy::EdgeOnly;
    let edge = Simulation::run_with_models(&config_edge, student.clone(), teacher.clone())
        .expect("edge-only run completes");

    // With every message lost, no labels ever arrive, so no training
    // happens: accuracy matches Edge-Only on the identical stream.
    assert_eq!(dead.training_sessions, 0);
    assert!((dead.map50 - edge.map50).abs() < 1e-9);
    assert_eq!(dead.downlink_bytes, 0);

    // The breaker must detect the blackout and suspend the uplink:
    // bounded bytes, not ever-growing waste. Compare against the
    // fire-and-forget behavior of earlier revisions on identical models.
    let mut config_waste = config_dead.clone();
    config_waste.resilience = ResilienceConfig::disabled();
    let wasteful = Simulation::run_with_models(&config_waste, student, teacher)
        .expect("fire-and-forget run completes");
    assert!(dead.resilience.breaker_opens >= 1, "breaker never opened");
    assert!(dead.resilience.suppressed_uploads > 0);
    assert!(
        dead.uplink_bytes < wasteful.uplink_bytes,
        "breaker should save uplink bytes: resilient {} vs fire-and-forget {}",
        dead.uplink_bytes,
        wasteful.uplink_bytes
    );
    // Open spans dominate a permanent blackout: the edge spends almost
    // the whole run not transmitting.
    assert!(dead.resilience.open_secs > dead.duration_secs * 0.5);
}

#[test]
fn moderate_loss_costs_accuracy_but_not_correctness() {
    let config_ok = base(3600);
    let (student, teacher) = Simulation::build_models(&config_ok);
    let clean = Simulation::run_with_models(&config_ok, student.clone(), teacher.clone())
        .expect("clean run completes");

    let mut config_lossy = config_ok.clone();
    config_lossy.link = LinkConfig::cellular().with_loss_rate(0.5);
    let lossy =
        Simulation::run_with_models(&config_lossy, student, teacher).expect("lossy run completes");

    // The report stays well-formed under heavy loss.
    assert!((0.0..=1.0).contains(&lossy.map50));
    assert!(lossy.min_fps > 0.0);
    // Retransmission works: some timed-out chunks were re-sent.
    assert!(lossy.resilience.upload_timeouts > 0);
    // The clean run never needed the resilience machinery.
    assert_eq!(clean.resilience.upload_timeouts, 0);
    assert_eq!(clean.resilience.breaker_opens, 0);
}

#[test]
fn ams_survives_model_update_loss() {
    let mut config = base(2700);
    config.strategy = Strategy::Ams;
    config.link = LinkConfig::cellular().with_loss_rate(0.4);
    let report = Simulation::run(&config).expect("AMS lossy run completes");
    assert_eq!(report.frames, 2700);
    // AMS keeps the edge at full frame rate regardless of loss.
    assert!((report.avg_fps - 30.0).abs() < 1e-9);
}
