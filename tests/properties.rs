//! Property-based tests (proptest) over the core data structures and
//! invariants: PRNG ranges, matrix algebra, IoU geometry, replay-memory
//! size discipline, controller clamping, codec bounds, and mAP bounds.

use proptest::prelude::*;
use shoggoth::controller::{phi_score, ControllerConfig, SamplingRateController};
use shoggoth::replay::{ReplayItem, ReplayMemory};
use shoggoth_metrics::map::{average_iou, map_at_05, FrameEval};
use shoggoth_metrics::matching::match_detections;
use shoggoth_models::Detection;
use shoggoth_net::{Codec, FrameGroupStats};
use shoggoth_tensor::{losses, Matrix};
use shoggoth_util::stats::EmpiricalCdf;
use shoggoth_util::Rng;
use shoggoth_video::{BBox, GroundTruthObject};

fn arb_bbox() -> impl Strategy<Value = BBox> {
    (0.0f32..0.9, 0.0f32..0.9, 0.01f32..0.5, 0.01f32..0.5)
        .prop_map(|(x, y, w, h)| BBox::new(x, y, w, h))
}

fn arb_detection() -> impl Strategy<Value = Detection> {
    (arb_bbox(), 0usize..4, 0.01f32..1.0).prop_map(|(bbox, class, confidence)| Detection {
        bbox,
        class,
        confidence,
    })
}

proptest! {
    #[test]
    fn rng_below_always_in_range(seed in any::<u64>(), n in 1usize..10_000) {
        let mut rng = Rng::seed_from(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(n) < n);
        }
    }

    #[test]
    fn rng_unit_interval(seed in any::<u64>()) {
        let mut rng = Rng::seed_from(seed);
        for _ in 0..100 {
            let x = rng.next_f64();
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn iou_is_symmetric_and_bounded(a in arb_bbox(), b in arb_bbox()) {
        let ab = a.iou(&b);
        let ba = b.iou(&a);
        prop_assert!((ab - ba).abs() < 1e-6);
        prop_assert!((0.0..=1.0 + 1e-6).contains(&ab));
        prop_assert!((a.iou(&a) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn matmul_distributes_over_addition(
        seed in any::<u64>(),
        n in 1usize..8,
        m in 1usize..8,
        k in 1usize..8,
    ) {
        let mut rng = Rng::seed_from(seed);
        let a = Matrix::from_fn(n, m, |_, _| rng.next_gaussian_f32(0.0, 1.0));
        let b = Matrix::from_fn(m, k, |_, _| rng.next_gaussian_f32(0.0, 1.0));
        let c = Matrix::from_fn(m, k, |_, _| rng.next_gaussian_f32(0.0, 1.0));
        // a(b + c) == ab + ac
        let lhs = a.matmul(&b.add(&c).expect("same shape")).expect("shapes");
        let rhs = a
            .matmul(&b)
            .expect("shapes")
            .add(&a.matmul(&c).expect("shapes"))
            .expect("same shape");
        let diff = lhs.sub(&rhs).expect("same shape").frobenius_norm();
        prop_assert!(diff < 1e-3 * (1.0 + lhs.frobenius_norm()));
    }

    #[test]
    fn transpose_reverses_matmul(
        seed in any::<u64>(),
        n in 1usize..6,
        m in 1usize..6,
    ) {
        let mut rng = Rng::seed_from(seed);
        let a = Matrix::from_fn(n, m, |_, _| rng.next_gaussian_f32(0.0, 1.0));
        let b = Matrix::from_fn(m, n, |_, _| rng.next_gaussian_f32(0.0, 1.0));
        // (ab)^T == b^T a^T
        let lhs = a.matmul(&b).expect("shapes").transpose();
        let rhs = b.transpose().matmul(&a.transpose()).expect("shapes");
        let diff = lhs.sub(&rhs).expect("same shape").frobenius_norm();
        prop_assert!(diff < 1e-4 * (1.0 + lhs.frobenius_norm()));
    }

    #[test]
    fn softmax_rows_are_distributions(seed in any::<u64>(), rows in 1usize..6, cols in 1usize..6) {
        let mut rng = Rng::seed_from(seed);
        let logits = Matrix::from_fn(rows, cols, |_, _| rng.next_gaussian_f32(0.0, 5.0));
        let p = losses::softmax(&logits);
        for r in 0..rows {
            let sum: f32 = p.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn replay_memory_never_exceeds_capacity(
        seed in any::<u64>(),
        capacity in 1usize..200,
        batches in prop::collection::vec(0usize..120, 1..12),
    ) {
        let mut rng = Rng::seed_from(seed);
        let mut memory = ReplayMemory::new(capacity);
        for (run, &batch_size) in batches.iter().enumerate() {
            let batch: Vec<ReplayItem> = (0..batch_size)
                .map(|i| ReplayItem { activation: vec![i as f32], label: run, stored_at_run: 0 })
                .collect();
            memory.integrate(batch, &mut rng);
            prop_assert!(memory.len() <= capacity);
        }
        prop_assert_eq!(memory.runs(), batches.len());
    }

    #[test]
    fn controller_rate_always_clamped(
        seed in any::<u64>(),
        phis in prop::collection::vec(0.0f64..1.0, 1..40),
        alphas in prop::collection::vec(0.0f64..1.0, 1..10),
    ) {
        let mut rng = Rng::seed_from(seed);
        let config = ControllerConfig::paper_defaults();
        let mut ctl = SamplingRateController::new(config).expect("generated config is valid");
        for &phi in &phis {
            ctl.observe_phi(phi);
        }
        for &alpha in &alphas {
            let lambda = rng.next_f64();
            let r = ctl.update(alpha, lambda);
            prop_assert!(r >= config.r_min - 1e-12 && r <= config.r_max + 1e-12);
            prop_assert!((ctl.rate() - r).abs() < 1e-12);
        }
    }

    #[test]
    fn controller_rate_clamped_for_arbitrary_configs(
        r_min in 0.01f64..1.0,
        span in 0.0f64..4.0,
        init_frac in 0.0f64..1.0,
        eta_r in 0.0f64..10.0,
        eta_alpha in 0.0f64..10.0,
        phi_target in 0.0f64..1.0,
        alpha_target in 0.0f64..1.0,
        phi_window in 1usize..60,
        steps in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 1..40),
    ) {
        // Not just the paper constants: any *valid* configuration must
        // keep the rate inside [r_min, r_max] no matter how hard the
        // φ/α error terms push.
        let config = ControllerConfig {
            phi_target,
            alpha_target,
            eta_r,
            eta_alpha,
            r_min,
            r_max: r_min + span,
            initial_rate: r_min + init_frac * span,
            phi_window,
            lambda_alpha: 0.4,
        };
        let mut ctl = SamplingRateController::new(config).expect("generated config is valid");
        for &(phi, alpha, lambda) in &steps {
            ctl.observe_phi(phi);
            let r = ctl.update(alpha, lambda);
            prop_assert!(r >= config.r_min - 1e-12 && r <= config.r_max + 1e-12);
        }
    }

    #[test]
    fn phi_score_is_bounded_and_reflexive(
        dets in prop::collection::vec(arb_detection(), 0..12),
        other in prop::collection::vec(arb_detection(), 0..12),
    ) {
        let phi_self = phi_score(&dets, &dets);
        prop_assert!(phi_self < 1e-9, "phi of identical label sets must be 0, got {phi_self}");
        let phi = phi_score(&dets, &other);
        prop_assert!((0.0..=1.0).contains(&phi));
    }

    #[test]
    fn codec_output_is_positive_and_monotone_in_frames(
        n in 1usize..60,
        motion in 0.0f32..0.05,
        gap in 0.01f64..10.0,
    ) {
        let codec = Codec::h264_like();
        let group = vec![FrameGroupStats::new(786_432, motion); n];
        let bytes = codec.encode_group(&group, gap);
        prop_assert!(bytes > 0);
        // Raw size is an upper bound; best-case P ratio a lower bound.
        let raw: u64 = group.iter().map(|f| f.raw_bytes).sum();
        prop_assert!(bytes <= raw);
        prop_assert!(bytes as f64 >= raw as f64 / codec.p_frame_ratio * 0.99);
        // One more frame never costs fewer bytes.
        let mut bigger = group.clone();
        bigger.push(FrameGroupStats::new(786_432, motion));
        prop_assert!(codec.encode_group(&bigger, gap) >= bytes);
    }

    #[test]
    fn matching_counts_are_consistent(
        dets in prop::collection::vec(arb_detection(), 0..10),
        gts in prop::collection::vec((arb_bbox(), 0usize..4), 0..10),
    ) {
        let ground_truth: Vec<GroundTruthObject> = gts
            .iter()
            .enumerate()
            .map(|(i, (bbox, class))| GroundTruthObject { track_id: i as u64, class: *class, bbox: *bbox })
            .collect();
        let result = match_detections(&dets, &ground_truth, 0.5);
        prop_assert_eq!(result.true_positives + result.false_positives, dets.len());
        prop_assert_eq!(result.true_positives + result.false_negatives, ground_truth.len());
        prop_assert!(result.precision() <= 1.0 && result.recall() <= 1.0);
        // No ground-truth object may be claimed twice.
        let mut claimed: Vec<usize> = result
            .assignments
            .iter()
            .flatten()
            .map(|(gt, _)| *gt)
            .collect();
        let before = claimed.len();
        claimed.sort_unstable();
        claimed.dedup();
        prop_assert_eq!(claimed.len(), before);
    }

    #[test]
    fn map_is_bounded(
        dets in prop::collection::vec(arb_detection(), 0..10),
        gts in prop::collection::vec((arb_bbox(), 0usize..4), 0..10),
    ) {
        let frame = FrameEval {
            detections: dets,
            ground_truth: gts
                .iter()
                .enumerate()
                .map(|(i, (bbox, class))| GroundTruthObject { track_id: i as u64, class: *class, bbox: *bbox })
                .collect(),
        };
        let frames = vec![frame];
        let map = map_at_05(&frames, 4);
        prop_assert!((0.0..=1.0).contains(&map));
        let iou = average_iou(&frames);
        prop_assert!((0.0..=1.0 + 1e-6).contains(&iou));
    }

    #[test]
    fn cdf_is_monotone_nondecreasing(values in prop::collection::vec(-10.0f64..10.0, 1..100)) {
        let cdf = EmpiricalCdf::new(&values);
        let curve = cdf.curve(20);
        for pair in curve.windows(2) {
            prop_assert!(pair[1].1 >= pair[0].1);
        }
        prop_assert!(cdf.eval(f64::INFINITY) >= 1.0 - 1e-12);
        prop_assert!(cdf.eval(f64::NEG_INFINITY) <= 1e-12);
    }
}
