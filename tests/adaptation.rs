//! Cross-crate adaptation tests: the learning dynamics the whole paper
//! rests on, exercised through video + models + trainer together.

use shoggoth::trainer::{AdaptiveTrainer, FreezePolicy, ReplayPlacement, TrainerConfig};
use shoggoth_models::{
    pseudo_label, sample_domain_batch, Detector, StudentConfig, StudentDetector, TeacherConfig,
    TeacherDetector,
};
use shoggoth_util::Rng;
use shoggoth_video::presets;

/// Common fixture: a Waymo-like library, a source-pretrained student and
/// an all-domain teacher.
fn fixture() -> (
    shoggoth_video::StreamConfig,
    StudentDetector,
    TeacherDetector,
) {
    let stream = presets::waymo(41);
    let world = stream.library.world();
    let student = StudentDetector::pretrained_with(
        StudentConfig::new(world.feature_dim(), world.num_classes(), 7).quick(),
        &stream.library,
        0,
    );
    let teacher = TeacherDetector::pretrained_with(
        TeacherConfig::new(world.feature_dim(), world.num_classes(), 8).quick(),
        &stream.library,
    );
    (stream, student, teacher)
}

#[test]
fn distillation_from_teacher_labels_recovers_drift() {
    // End-to-end knowledge distillation: the student trains ONLY on
    // teacher pseudo-labels from real stream frames (never ground truth)
    // and still recovers accuracy on a drifted domain.
    let (stream, mut student, mut teacher) = fixture();
    let night_index = stream
        .library
        .domains()
        .iter()
        .position(|d| d.name == "night")
        .expect("waymo preset has a night domain");

    let mut rng = Rng::seed_from(1);
    let eval = sample_domain_batch(
        stream.library.world(),
        stream.library.domain(night_index),
        400,
        200,
        &mut rng,
    );
    let before = student.evaluate(&eval);

    // Collect night frames from the real stream and have the teacher
    // label them per Eq. (1).
    let classes = stream.library.world().num_classes();
    let night_frames: Vec<_> = stream
        .build()
        .filter(|f| f.domain_name == "night")
        .take(120)
        .collect();
    assert!(!night_frames.is_empty(), "stream visits night");
    let mut trainer = AdaptiveTrainer::new(TrainerConfig::quick());
    for chunk in night_frames.chunks(30) {
        let fresh: Vec<_> = chunk
            .iter()
            .flat_map(|f| pseudo_label(&mut teacher, f, classes, 0.5))
            .collect();
        trainer
            .train_session(&mut student, &fresh, &mut rng)
            .expect("session trains");
    }
    let after = student.evaluate(&eval);
    // The robust backbone keeps the pre-adaptation drop small, so assert
    // the distillation contract rather than a fixed gain: training on
    // teacher labels must not hurt, and must leave the student near the
    // teacher's own accuracy on the same data.
    assert!(
        after >= before - 0.01,
        "distillation hurt night accuracy: {before} -> {after}"
    );
    let teacher_acc = teacher.evaluate(&eval);
    assert!(
        after >= teacher_acc - 0.1,
        "student {after} should approach teacher {teacher_acc} after distillation"
    );
}

#[test]
fn teacher_label_quality_bounds_student_recovery() {
    // The student cannot exceed what its (imperfect) teacher shows it by
    // much: after adaptation, student accuracy stays below teacher
    // accuracy plus tolerance on the same data.
    let (stream, mut student, mut teacher) = fixture();
    let mut rng = Rng::seed_from(2);
    let domain = stream.library.domain(4); // night
    let eval = sample_domain_batch(stream.library.world(), domain, 400, 200, &mut rng);
    let mut trainer = AdaptiveTrainer::new(TrainerConfig::quick());
    for _ in 0..4 {
        let batch = sample_domain_batch(stream.library.world(), domain, 120, 60, &mut rng);
        // Re-label the batch THROUGH the teacher (erasing ground truth).
        let (features, _) = shoggoth_models::LabeledSample::to_batch(&batch);
        let teacher_view = teacher.classify(&features);
        let fresh: Vec<_> = batch
            .iter()
            .zip(teacher_view)
            .map(|(s, (class, conf))| shoggoth_models::LabeledSample {
                features: s.features.clone(),
                label: if conf >= 0.5 {
                    class
                } else {
                    stream.library.world().num_classes()
                },
            })
            .collect();
        trainer
            .train_session(&mut student, &fresh, &mut rng)
            .expect("session trains");
    }
    let student_acc = student.evaluate(&eval);
    let teacher_acc = teacher.evaluate(&eval);
    assert!(
        student_acc <= teacher_acc + 0.08,
        "student {student_acc} should not materially exceed teacher {teacher_acc}"
    );
}

#[test]
fn all_freeze_policies_complete_and_preserve_source_competence() {
    let (stream, student, _) = fixture();
    let mut rng = Rng::seed_from(3);
    let world = stream.library.world();
    let source_eval = sample_domain_batch(world, stream.library.domain(0), 300, 150, &mut rng);
    for freeze in [
        FreezePolicy::FreezeAfterFirstBatch,
        FreezePolicy::CompletelyFrozen,
        FreezePolicy::SlowFront { scale: 0.1 },
        FreezePolicy::FullyTrainable,
    ] {
        let mut s = student.clone();
        let mut trainer = AdaptiveTrainer::new(TrainerConfig {
            freeze,
            ..TrainerConfig::quick()
        });
        for _ in 0..2 {
            let fresh = sample_domain_batch(world, stream.library.domain(1), 80, 40, &mut rng);
            trainer
                .train_session(&mut s, &fresh, &mut rng)
                .expect("session trains");
        }
        let acc = s.evaluate(&source_eval);
        assert!(
            acc > 0.4,
            "{freeze:?}: source competence collapsed to {acc}"
        );
    }
}

#[test]
fn replay_placements_all_train() {
    let (stream, student, _) = fixture();
    let mut rng = Rng::seed_from(4);
    let world = stream.library.world();
    let drift_eval = sample_domain_batch(world, stream.library.domain(4), 300, 150, &mut rng);
    for placement in [
        ReplayPlacement::Input,
        ReplayPlacement::Penultimate,
        ReplayPlacement::Layer(3),
    ] {
        let mut s = student.clone();
        let before = s.evaluate(&drift_eval);
        let mut trainer = AdaptiveTrainer::new(TrainerConfig {
            placement,
            ..TrainerConfig::quick()
        });
        for _ in 0..3 {
            let fresh = sample_domain_batch(world, stream.library.domain(4), 100, 50, &mut rng);
            trainer
                .train_session(&mut s, &fresh, &mut rng)
                .expect("session trains");
        }
        let after = s.evaluate(&drift_eval);
        assert!(
            after > before,
            "{placement:?}: no improvement ({before} -> {after})"
        );
    }
}
