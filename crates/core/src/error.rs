//! Typed errors for the training and simulation hot path.
//!
//! The trainer, the simulation engine, and the sampling-rate controller
//! form the hot path of every experiment sweep: a panic there aborts an
//! entire fleet run and loses every finished data point. These errors make
//! the failure modes explicit instead — a sweep can log the failed
//! configuration and keep going. The `xtask lint` panic audit (L2) holds
//! these modules to zero `unwrap`/`expect` calls.

use shoggoth_net::InvalidLink;
use shoggoth_tensor::TensorError;

/// A configuration whose fields are mutually inconsistent, rejected at
/// construction time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidConfig {
    /// The component that rejected the configuration.
    pub component: &'static str,
    /// What is inconsistent.
    pub reason: &'static str,
}

impl std::fmt::Display for InvalidConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid {} configuration: {}",
            self.component, self.reason
        )
    }
}

impl std::error::Error for InvalidConfig {}

/// Errors from one adaptive-training session
/// ([`crate::trainer::AdaptiveTrainer::train_session`]).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TrainError {
    /// A tensor-engine operation failed mid-session. With the
    /// `finite-check` feature enabled this is also how a poisoned tensor
    /// ([`TensorError::NonFinite`]) surfaces from the training loop.
    Tensor {
        /// What the trainer was doing when the engine failed.
        context: &'static str,
        /// The underlying engine error.
        source: TensorError,
    },
}

impl TrainError {
    /// Adapter for `map_err`: wraps a [`TensorError`] with the trainer
    /// activity it interrupted.
    pub(crate) fn tensor(context: &'static str) -> impl FnOnce(TensorError) -> Self {
        move |source| Self::Tensor { context, source }
    }
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Tensor { context, source } => {
                write!(f, "training failed during {context}: {source}")
            }
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Tensor { source, .. } => Some(source),
        }
    }
}

/// Errors from a simulation run ([`crate::sim::Simulation::run`]).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The run was rejected before it started.
    Config(InvalidConfig),
    /// The link or fault-profile configuration was rejected (NaN rates,
    /// inverted outage windows, non-positive capacities).
    Link(InvalidLink),
    /// Adaptive training failed inside the run.
    Train(TrainError),
    /// A tensor operation outside a training session failed (e.g. the AMS
    /// model-weight transfer to the edge student).
    Tensor {
        /// What the engine was doing when the operation failed.
        context: &'static str,
        /// The underlying engine error.
        source: TensorError,
    },
    /// An internal invariant of the engine was violated. This is a bug,
    /// reported as an error rather than a panic so a long sweep can record
    /// it and move on to the next configuration.
    Invariant {
        /// The invariant that did not hold.
        context: &'static str,
    },
}

impl From<InvalidConfig> for SimError {
    fn from(err: InvalidConfig) -> Self {
        SimError::Config(err)
    }
}

impl From<TrainError> for SimError {
    fn from(err: TrainError) -> Self {
        SimError::Train(err)
    }
}

impl From<InvalidLink> for SimError {
    fn from(err: InvalidLink) -> Self {
        SimError::Link(err)
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Config(err) => write!(f, "{err}"),
            SimError::Link(err) => write!(f, "{err}"),
            SimError::Train(err) => write!(f, "{err}"),
            SimError::Tensor { context, source } => {
                write!(f, "simulation failed during {context}: {source}")
            }
            SimError::Invariant { context } => {
                write!(f, "simulation invariant violated: {context}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(err) => Some(err),
            SimError::Link(err) => Some(err),
            SimError::Train(err) => Some(err),
            SimError::Tensor { source, .. } => Some(source),
            SimError::Invariant { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_chains_name_the_failure_site() {
        let err = TrainError::Tensor {
            context: "tail forward pass",
            source: TensorError::MissingForwardCache { layer: "dense" },
        };
        let msg = err.to_string();
        assert!(msg.contains("tail forward pass"), "{msg}");
        assert!(msg.contains("dense"), "{msg}");
        let sim: SimError = err.into();
        assert!(sim.to_string().contains("tail forward pass"));
    }

    #[test]
    fn source_exposes_the_tensor_error() {
        use std::error::Error;
        let err = SimError::Tensor {
            context: "AMS weight import",
            source: TensorError::ParamCount {
                expected: 10,
                actual: 9,
            },
        };
        assert!(err.source().is_some());
        assert!(SimError::Invariant { context: "x" }.source().is_none());
    }

    #[test]
    fn invalid_config_display() {
        let err = InvalidConfig {
            component: "sampling-rate controller",
            reason: "r_min must not exceed r_max",
        };
        assert_eq!(
            err.to_string(),
            "invalid sampling-rate controller configuration: r_min must not exceed r_max"
        );
    }
}
