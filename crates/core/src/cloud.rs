//! The cloud server: online labeling and the sampling-rate controller.

use crate::controller::{phi_score, ControllerConfig, RateDecision, SamplingRateController};
use crate::error::InvalidConfig;
use serde::{Deserialize, Serialize};
use shoggoth_models::{pseudo_label, Detection, Detector, LabeledSample, TeacherDetector};
use shoggoth_util::Rng;
use shoggoth_video::Frame;

/// Cloud-side fault injection: the labeling service itself can fail, not
/// just the link. A loaded teacher GPU drops label batches outright or
/// returns them late — both starve the edge's training pool exactly like
/// link loss does, so the resilience layer must treat them the same way
/// (an unacknowledged upload).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CloudFaultProfile {
    /// Probability a delivered batch's labels are never returned.
    pub label_drop_rate: f64,
    /// Probability a returned label batch is late.
    pub slow_label_rate: f64,
    /// Extra latency of a late label batch, seconds.
    pub slow_label_secs: f64,
}

/// What the cloud did with one delivered upload's labels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LabelFate {
    /// The labels were never returned (the upload will time out).
    Dropped,
    /// The labels were returned after `extra_latency_secs` of queueing
    /// (zero for a healthy cloud).
    Delivered {
        /// Extra cloud-side latency before the labels departed.
        extra_latency_secs: f64,
    },
}

impl CloudFaultProfile {
    /// A healthy cloud (the paper's experiments).
    pub fn none() -> Self {
        Self {
            label_drop_rate: 0.0,
            slow_label_rate: 0.0,
            slow_label_secs: 0.0,
        }
    }

    /// Validates the profile.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfig`] on NaN/out-of-range rates or a negative
    /// or non-finite slow-label latency.
    pub fn validate(&self) -> Result<(), InvalidConfig> {
        let reject = |reason| InvalidConfig {
            component: "cloud fault profile",
            reason,
        };
        if !(0.0..=1.0).contains(&self.label_drop_rate) {
            return Err(reject("label drop rate must be in [0, 1] (NaN rejected)"));
        }
        if !(0.0..=1.0).contains(&self.slow_label_rate) {
            return Err(reject("slow label rate must be in [0, 1] (NaN rejected)"));
        }
        if !self.slow_label_secs.is_finite() || self.slow_label_secs < 0.0 {
            return Err(reject("slow label latency must be finite and non-negative"));
        }
        Ok(())
    }

    /// Draws the fate of one delivered batch's labels from the seeded RNG.
    pub fn label_fate(&self, rng: &mut Rng) -> LabelFate {
        if rng.bernoulli(self.label_drop_rate) {
            return LabelFate::Dropped;
        }
        if rng.bernoulli(self.slow_label_rate) {
            LabelFate::Delivered {
                extra_latency_secs: self.slow_label_secs,
            }
        } else {
            LabelFate::Delivered {
                extra_latency_secs: 0.0,
            }
        }
    }
}

impl Default for CloudFaultProfile {
    fn default() -> Self {
        Self::none()
    }
}

/// Cloud-side configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloudConfig {
    /// Confidence threshold θ of the pseudo-labeling rule (Eq. 1).
    pub label_threshold: f32,
    /// Sampling-rate controller parameters (Eqs. 2–3).
    pub controller: ControllerConfig,
    /// Fault injection on the labeling service itself.
    pub faults: CloudFaultProfile,
}

impl Default for CloudConfig {
    fn default() -> Self {
        Self {
            label_threshold: 0.5,
            controller: ControllerConfig::paper_defaults(),
            faults: CloudFaultProfile::none(),
        }
    }
}

/// The result of labeling one uploaded batch.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelBatch {
    /// Per-frame labeled samples, in upload order.
    pub per_frame: Vec<Vec<LabeledSample>>,
    /// Total labeled samples across the batch.
    pub total_samples: usize,
    /// φ scores observed between consecutive sampled frames.
    pub phi_scores: Vec<f64>,
}

/// The cloud server shared by all edge devices: hosts the golden teacher,
/// labels sampled frames online (Eq. 1), tracks the scene-change score φ,
/// and runs the sampling-rate controller.
///
/// # Examples
///
/// ```
/// use shoggoth::cloud::{CloudConfig, CloudServer};
/// use shoggoth_models::{TeacherConfig, TeacherDetector};
/// use shoggoth_video::presets;
///
/// let stream = presets::kitti(2).with_total_frames(40);
/// let teacher = TeacherDetector::pretrained_with(
///     TeacherConfig::new(32, 1, 3).quick(), &stream.library);
/// let mut cloud = CloudServer::new(teacher, 1, CloudConfig::default())?;
/// let frames: Vec<_> = stream.build().take(3).collect();
/// let refs: Vec<&_> = frames.iter().collect();
/// let batch = cloud.label_batch(&refs);
/// assert_eq!(batch.per_frame.len(), 3);
/// assert_eq!(batch.phi_scores.len(), 3);
/// # Ok::<(), shoggoth::error::InvalidConfig>(())
/// ```
#[derive(Debug, Clone)]
pub struct CloudServer {
    teacher: TeacherDetector,
    controller: SamplingRateController,
    config: CloudConfig,
    num_classes: usize,
    prev_labels: Option<Vec<Detection>>,
}

impl CloudServer {
    /// Creates a cloud server around a pre-trained teacher.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfig`] if the controller configuration or the
    /// cloud fault profile is inconsistent.
    pub fn new(
        teacher: TeacherDetector,
        num_classes: usize,
        config: CloudConfig,
    ) -> Result<Self, InvalidConfig> {
        config.faults.validate()?;
        Ok(Self {
            teacher,
            controller: SamplingRateController::new(config.controller)?,
            config,
            num_classes,
            prev_labels: None,
        })
    }

    /// The current sampling rate the controller prescribes.
    pub fn rate(&self) -> f64 {
        self.controller.rate()
    }

    /// Read access to the controller (diagnostics).
    pub fn controller(&self) -> &SamplingRateController {
        &self.controller
    }

    /// Labels an uploaded batch of sampled frames with the teacher and
    /// records per-frame φ scores against the previously-labeled frame.
    pub fn label_batch(&mut self, frames: &[&Frame]) -> LabelBatch {
        let mut per_frame = Vec::with_capacity(frames.len());
        let mut phi_scores = Vec::with_capacity(frames.len());
        let mut total = 0;
        for frame in frames {
            let detections = self.teacher.detect(frame);
            if let Some(prev) = &self.prev_labels {
                let phi = phi_score(prev, &detections);
                self.controller.observe_phi(phi);
                phi_scores.push(phi);
            } else {
                phi_scores.push(0.0);
            }
            self.prev_labels = Some(detections);
            let samples = pseudo_label(
                &mut self.teacher,
                frame,
                self.num_classes,
                self.config.label_threshold,
            );
            total += samples.len();
            per_frame.push(samples);
        }
        LabelBatch {
            per_frame,
            total_samples: total,
            phi_scores,
        }
    }

    /// Runs the golden model directly on a frame (the Cloud-Only path).
    pub fn infer(&mut self, frame: &Frame) -> Vec<Detection> {
        self.teacher.detect(frame)
    }

    /// Updates the sampling rate from the edge's reported estimated
    /// accuracy α and resource usage λ (Eqs. 2–3).
    pub fn update_rate(&mut self, alpha: f64, lambda: f64) -> f64 {
        self.controller.update(alpha, lambda)
    }

    /// [`update_rate`](Self::update_rate), but returning the fully
    /// attributed [`RateDecision`] for the telemetry trace.
    pub fn update_rate_detailed(&mut self, alpha: f64, lambda: f64) -> RateDecision {
        self.controller.update_detailed(alpha, lambda)
    }

    /// Mutable access to the hosted teacher (AMS's cloud-side training).
    pub fn teacher_mut(&mut self) -> &mut TeacherDetector {
        &mut self.teacher
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shoggoth_models::TeacherConfig;
    use shoggoth_video::presets;

    fn setup() -> (CloudServer, Vec<Frame>) {
        let stream = presets::kitti(12).with_total_frames(60);
        let teacher =
            TeacherDetector::pretrained_with(TeacherConfig::new(32, 1, 9).quick(), &stream.library);
        let cloud =
            CloudServer::new(teacher, 1, CloudConfig::default()).expect("valid default config");
        let frames: Vec<Frame> = stream.build().collect();
        (cloud, frames)
    }

    #[test]
    fn labeling_covers_every_proposal() {
        let (mut cloud, frames) = setup();
        let refs: Vec<&Frame> = frames.iter().take(4).collect();
        let batch = cloud.label_batch(&refs);
        for (labels, frame) in batch.per_frame.iter().zip(&refs) {
            assert_eq!(labels.len(), frame.proposals.len());
        }
        assert_eq!(
            batch.total_samples,
            refs.iter().map(|f| f.proposals.len()).sum::<usize>()
        );
    }

    #[test]
    fn first_frame_has_zero_phi() {
        let (mut cloud, frames) = setup();
        let refs: Vec<&Frame> = frames.iter().take(2).collect();
        let batch = cloud.label_batch(&refs);
        assert_eq!(batch.phi_scores[0], 0.0);
    }

    #[test]
    fn consecutive_frames_have_low_phi() {
        // Adjacent frames share tracks, so teacher labels barely change.
        let (mut cloud, frames) = setup();
        let refs: Vec<&Frame> = frames.iter().take(10).collect();
        let batch = cloud.label_batch(&refs);
        let mean_phi: f64 =
            batch.phi_scores[1..].iter().sum::<f64>() / (batch.phi_scores.len() - 1) as f64;
        assert!(mean_phi < 0.6, "adjacent-frame phi too high: {mean_phi}");
    }

    #[test]
    fn rate_updates_respond_to_alpha() {
        let (mut cloud, frames) = setup();
        let refs: Vec<&Frame> = frames.iter().take(5).collect();
        cloud.label_batch(&refs);
        let r_low_alpha = cloud.update_rate(0.1, 0.1);
        assert!(r_low_alpha >= cloud.controller().config().r_min);
        assert!(r_low_alpha <= cloud.controller().config().r_max);
    }

    #[test]
    fn invalid_fault_profile_rejected_at_server_construction() {
        let stream = presets::kitti(12).with_total_frames(10);
        let teacher =
            TeacherDetector::pretrained_with(TeacherConfig::new(32, 1, 9).quick(), &stream.library);
        let config = CloudConfig {
            faults: CloudFaultProfile {
                label_drop_rate: f64::NAN,
                ..CloudFaultProfile::none()
            },
            ..CloudConfig::default()
        };
        let err = CloudServer::new(teacher, 1, config).expect_err("NaN rate must be rejected");
        assert_eq!(err.component, "cloud fault profile");
    }

    #[test]
    fn fault_profile_rejects_out_of_range_fields() {
        let bad_rate = CloudFaultProfile {
            slow_label_rate: 1.5,
            ..CloudFaultProfile::none()
        };
        assert!(bad_rate.validate().is_err());
        let bad_secs = CloudFaultProfile {
            slow_label_secs: -1.0,
            ..CloudFaultProfile::none()
        };
        assert!(bad_secs.validate().is_err());
        assert!(CloudFaultProfile::none().validate().is_ok());
    }

    #[test]
    fn label_fates_follow_the_configured_rates() {
        use shoggoth_util::Rng;
        let faults = CloudFaultProfile {
            label_drop_rate: 0.3,
            slow_label_rate: 0.5,
            slow_label_secs: 4.0,
        };
        let mut rng = Rng::seed_from(17);
        let (mut drops, mut slow) = (0u32, 0u32);
        for _ in 0..2000 {
            match faults.label_fate(&mut rng) {
                LabelFate::Dropped => drops += 1,
                LabelFate::Delivered { extra_latency_secs } if extra_latency_secs > 0.0 => {
                    slow += 1;
                }
                LabelFate::Delivered { .. } => {}
            }
        }
        assert!((500..700).contains(&drops), "drops {drops}");
        // Slow applies to the ~70% that survive the drop draw.
        assert!((600..800).contains(&slow), "slow {slow}");
    }

    #[test]
    fn infer_emits_detections() {
        let (mut cloud, frames) = setup();
        let total: usize = frames.iter().take(10).map(|f| cloud.infer(f).len()).sum();
        assert!(total > 0, "teacher should detect something in 10 frames");
    }
}
