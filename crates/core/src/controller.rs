//! The adaptive frame-sampling controller — the paper's Eqs. (2)–(3).
//!
//! The cloud keeps the scene-change score φ̄ near a target, pushes the
//! sampling rate up when the edge's estimated accuracy α falls below its
//! target, and carries the previous rate scaled by the resource-usage
//! trend λ:
//!
//! ```text
//! r_{t+1} = [ R(φ) + R(α) + R(λ) ]_{r_min}^{r_max}
//! R(φ) = η_r · (φ̄_t − φ_target)
//! R(α) = η_α · max(0, α_target − α_t)
//! R(λ) = (1 + λ̄_{t+1} − λ̄_t) · r_t
//! ```

use crate::error::InvalidConfig;
use serde::{Deserialize, Serialize};
use shoggoth_metrics::match_detections;
use shoggoth_models::Detection;
use shoggoth_util::{Ewma, RingBuffer};
use shoggoth_video::GroundTruthObject;

/// Controller parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Target scene-change score `φ_target`.
    pub phi_target: f64,
    /// Target estimated accuracy `α_target`.
    pub alpha_target: f64,
    /// Step size `η_r` on the φ term.
    pub eta_r: f64,
    /// Step size `η_α` on the α term.
    pub eta_alpha: f64,
    /// Minimum sampling rate in fps (the paper uses 0.1).
    pub r_min: f64,
    /// Maximum sampling rate in fps (the paper uses 2.0).
    pub r_max: f64,
    /// Initial sampling rate in fps.
    pub initial_rate: f64,
    /// Length of the recent-frame horizon over which φ̄ is averaged.
    pub phi_window: usize,
    /// Smoothing factor of the λ̄ exponentially-weighted average.
    pub lambda_alpha: f64,
}

impl ControllerConfig {
    /// The defaults used throughout the evaluation.
    pub fn paper_defaults() -> Self {
        Self {
            phi_target: 0.35,
            alpha_target: 0.8,
            eta_r: 2.5,
            eta_alpha: 3.0,
            r_min: 0.1,
            r_max: 2.0,
            initial_rate: 0.5,
            phi_window: 30,
            lambda_alpha: 0.4,
        }
    }
}

impl ControllerConfig {
    /// The sampling rate the edge falls back to while the uplink circuit
    /// breaker is open: the controller's floor `r_min`. Sampling at the
    /// floor keeps the chunk cadence (and hence recovery probing) alive
    /// without spending bandwidth the outage would waste.
    pub fn outage_floor(&self) -> f64 {
        self.r_min
    }
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// One controller update, fully attributed: every Eq. (2)–(3) input and
/// term alongside the resulting rate, so telemetry can explain *why* the
/// rate moved (φ pressure, α pressure, or the λ carry term).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RateDecision {
    /// Scene-change score φ̄ over the recent-frame horizon.
    pub phi_bar: f64,
    /// Edge-reported estimated accuracy α_t.
    pub alpha: f64,
    /// Raw resource-usage sample λ_{t+1} (clamped to `[0, 1]`).
    pub lambda: f64,
    /// Smoothed λ̄_{t+1} after observing this sample.
    pub lambda_bar: f64,
    /// Term `R(φ) = η_r · (φ̄_t − φ_target)`.
    pub r_phi: f64,
    /// Term `R(α) = η_α · max(0, α_target − α_t)`.
    pub r_alpha: f64,
    /// Term `R(λ) = (1 + λ̄_{t+1} − λ̄_t) · r_t`.
    pub r_lambda: f64,
    /// The clamped new rate `r_{t+1}` in fps.
    pub rate: f64,
}

/// The sampling-rate controller running in the cloud.
///
/// # Examples
///
/// ```
/// use shoggoth::controller::{ControllerConfig, SamplingRateController};
///
/// let mut ctl = SamplingRateController::new(ControllerConfig::paper_defaults())?;
/// // Rapid scene change and poor accuracy drive the rate upward.
/// for _ in 0..10 {
///     ctl.observe_phi(0.9);
/// }
/// let r = ctl.update(0.3, 0.2);
/// assert!(r > ctl.config().initial_rate);
/// assert!(r <= ctl.config().r_max);
/// # Ok::<(), shoggoth::error::InvalidConfig>(())
/// ```
#[derive(Debug, Clone)]
pub struct SamplingRateController {
    config: ControllerConfig,
    rate: f64,
    phi_horizon: RingBuffer<f64>,
    lambda_ewma: Ewma,
    lambda_bar_prev: f64,
}

impl SamplingRateController {
    /// Creates a controller at the configured initial rate.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfig`] if the configuration is inconsistent
    /// (`r_min > r_max`, non-positive window, or an initial rate outside
    /// the bounds).
    pub fn new(config: ControllerConfig) -> Result<Self, InvalidConfig> {
        let reject = |reason| InvalidConfig {
            component: "sampling-rate controller",
            reason,
        };
        if config.r_min > config.r_max {
            return Err(reject("r_min must not exceed r_max"));
        }
        if config.phi_window == 0 {
            return Err(reject("phi window must be positive"));
        }
        if !(config.r_min..=config.r_max).contains(&config.initial_rate) {
            return Err(reject("initial rate must lie within [r_min, r_max]"));
        }
        Ok(Self {
            rate: config.initial_rate,
            phi_horizon: RingBuffer::new(config.phi_window),
            lambda_ewma: Ewma::new(config.lambda_alpha),
            lambda_bar_prev: 0.0,
            config,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Current sampling rate `r_t` in fps.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Mean φ over the recent-frame horizon.
    pub fn phi_bar(&self) -> f64 {
        self.phi_horizon.mean()
    }

    /// Records a per-frame scene-change score (cloud side, computed from
    /// consecutive teacher labels).
    pub fn observe_phi(&mut self, phi: f64) {
        self.phi_horizon.push(phi.clamp(0.0, 1.0));
    }

    /// Applies Eq. (2)/(3) with the edge-reported estimated accuracy `α_t`
    /// and resource usage `λ_{t+1}`, returning the new rate `r_{t+1}`.
    pub fn update(&mut self, alpha: f64, lambda: f64) -> f64 {
        self.update_detailed(alpha, lambda).rate
    }

    /// [`update`](Self::update), but returning the fully-attributed
    /// [`RateDecision`] (telemetry's controller trace).
    pub fn update_detailed(&mut self, alpha: f64, lambda: f64) -> RateDecision {
        let phi_bar = self.phi_bar();
        let r_phi = self.config.eta_r * (phi_bar - self.config.phi_target);
        let r_alpha = self.config.eta_alpha * (self.config.alpha_target - alpha).max(0.0);
        let lambda_bar_next = self.lambda_ewma.observe(lambda.clamp(0.0, 1.0));
        let r_lambda = (1.0 + lambda_bar_next - self.lambda_bar_prev) * self.rate;
        self.lambda_bar_prev = lambda_bar_next;
        self.rate = (r_phi + r_alpha + r_lambda).clamp(self.config.r_min, self.config.r_max);
        RateDecision {
            phi_bar,
            alpha,
            lambda,
            lambda_bar: lambda_bar_next,
            r_phi,
            r_alpha,
            r_lambda,
            rate: self.rate,
        }
    }
}

/// The per-frame scene-change score φ_k (§III-C).
///
/// The paper defines φ_k as the task loss of the teacher's labels on frame
/// `I_k` scored against its labels on `I_{k−1}`, and motivates this by
/// noting that *labels* live in a much smaller space than pixels, making
/// them a robust change signal. We follow that argument to its clean form:
/// φ is the total-variation distance between the two frames' class-count
/// histograms, plus the disagreement left after geometric matching at a
/// loose IoU. Identical label sets score 0; disjoint ones score 1; two
/// empty frames score 0 (a perfectly stationary empty scene).
///
/// (A strict IoU-0.5 matching is deliberately *not* used here: at sampling
/// gaps of a second or more, object motion alone breaks box overlap, which
/// would saturate φ and blind the controller — the label-space histogram
/// is the stable signal.)
pub fn phi_score(prev: &[Detection], cur: &[Detection]) -> f64 {
    let total = prev.len() + cur.len();
    if total == 0 {
        return 0.0;
    }
    // Class-count total-variation term: how much did the label
    // *population* change?
    let max_class = prev.iter().chain(cur).map(|d| d.class).max().unwrap_or(0);
    let mut count_prev = vec![0i64; max_class + 1];
    let mut count_cur = vec![0i64; max_class + 1];
    for d in prev {
        count_prev[d.class] += 1;
    }
    for d in cur {
        count_cur[d.class] += 1;
    }
    let tv: i64 = count_prev
        .iter()
        .zip(&count_cur)
        .map(|(a, b)| (a - b).abs())
        .sum();
    let histogram_term = tv as f64 / total as f64;

    // Geometric term at a loose IoU: of the objects that persist by
    // count, how many moved out of overlap entirely?
    let pseudo_gt: Vec<GroundTruthObject> = prev
        .iter()
        .enumerate()
        .map(|(i, d)| GroundTruthObject {
            track_id: i as u64,
            class: d.class,
            bbox: d.bbox,
        })
        .collect();
    let result = match_detections(cur, &pseudo_gt, 0.1);
    let geometric_term = 1.0 - 2.0 * result.true_positives as f64 / total as f64;

    (0.7 * histogram_term + 0.3 * geometric_term).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shoggoth_video::BBox;

    fn det(class: usize, x: f32) -> Detection {
        Detection {
            bbox: BBox::new(x, 0.1, 0.2, 0.2),
            class,
            confidence: 0.9,
        }
    }

    #[test]
    fn identical_labels_score_zero_phi() {
        let labels = vec![det(0, 0.1), det(1, 0.5)];
        assert!(phi_score(&labels, &labels).abs() < 1e-9);
    }

    #[test]
    fn disjoint_labels_score_one_phi() {
        let a = vec![det(0, 0.1)];
        let b = vec![det(1, 0.7)];
        assert!((phi_score(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_pair_scores_zero_phi() {
        assert_eq!(phi_score(&[], &[]), 0.0);
    }

    #[test]
    fn appearing_object_scores_partial_phi() {
        let a = vec![det(0, 0.1)];
        let b = vec![det(0, 0.1), det(0, 0.6)];
        let phi = phi_score(&a, &b);
        assert!((phi - (1.0 - 2.0 / 3.0)).abs() < 1e-9, "phi {phi}");
    }

    #[test]
    fn rate_stays_within_bounds() {
        let mut ctl = SamplingRateController::new(ControllerConfig::paper_defaults())
            .expect("valid defaults");
        for _ in 0..20 {
            ctl.observe_phi(1.0);
        }
        for _ in 0..10 {
            let r = ctl.update(0.0, 1.0);
            assert!(r <= ctl.config().r_max && r >= ctl.config().r_min);
        }
        assert!((ctl.rate() - 2.0).abs() < 1e-9, "should saturate at r_max");
    }

    #[test]
    fn stationary_scene_drives_rate_down() {
        let mut ctl = SamplingRateController::new(ControllerConfig::paper_defaults())
            .expect("valid defaults");
        // No scene change, accurate model, low resource pressure.
        for _ in 0..30 {
            ctl.observe_phi(0.0);
        }
        for _ in 0..20 {
            ctl.update(0.95, 0.05);
        }
        assert!(
            ctl.rate() < ctl.config().initial_rate,
            "rate should fall on stationary video: {}",
            ctl.rate()
        );
    }

    #[test]
    fn poor_accuracy_raises_rate() {
        let mut ctl = SamplingRateController::new(ControllerConfig::paper_defaults())
            .expect("valid defaults");
        for _ in 0..30 {
            ctl.observe_phi(0.25); // exactly on target: no φ pressure
        }
        let before = ctl.rate();
        let after = ctl.update(0.2, 0.1);
        assert!(
            after > before,
            "low α must raise the rate: {before} -> {after}"
        );
    }

    #[test]
    fn update_is_literal_equation() {
        let config = ControllerConfig {
            phi_target: 0.2,
            alpha_target: 0.8,
            eta_r: 1.0,
            eta_alpha: 2.0,
            r_min: 0.0,
            r_max: 10.0,
            initial_rate: 1.0,
            phi_window: 4,
            lambda_alpha: 1.0, // λ̄ tracks the last sample exactly
        };
        let mut ctl = SamplingRateController::new(config).expect("valid config");
        ctl.observe_phi(0.6); // φ̄ = 0.6
                              // R(φ) = 1.0·(0.6−0.2) = 0.4
                              // R(α) = 2.0·max(0, 0.8−0.5) = 0.6
                              // λ̄_{t+1} = 0.3, λ̄_t = 0 → R(λ) = (1+0.3)·1.0 = 1.3
        let r = ctl.update(0.5, 0.3);
        assert!((r - 2.3).abs() < 1e-9, "r {r}");
    }

    #[test]
    fn out_of_range_initial_rate_rejected() {
        let err = SamplingRateController::new(ControllerConfig {
            initial_rate: 5.0,
            ..ControllerConfig::paper_defaults()
        })
        .expect_err("out-of-range initial rate must be rejected");
        assert!(err.reason.contains("initial rate must lie within"), "{err}");
    }

    #[test]
    fn inverted_bounds_rejected() {
        let err = SamplingRateController::new(ControllerConfig {
            r_min: 3.0,
            r_max: 1.0,
            ..ControllerConfig::paper_defaults()
        })
        .expect_err("inverted bounds must be rejected");
        assert!(err.reason.contains("r_min"), "{err}");
    }
}
