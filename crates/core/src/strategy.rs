//! The strategies compared in the paper's evaluation (§IV-A).

use serde::{Deserialize, Serialize};

/// An inference/adaptation strategy.
///
/// These are exactly the five strategies of the paper's Table I, plus the
/// fixed-rate family used by Table III's sensitivity study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Strategy {
    /// The paper's system: edge inference, cloud labeling, edge adaptive
    /// training with latent replay, adaptive frame sampling.
    Shoggoth,
    /// The edge model without any video-specific customization.
    EdgeOnly,
    /// Every frame uploaded; the golden model infers in the cloud and
    /// ships results (with masks) back.
    CloudOnly,
    /// Shoggoth without adaptive sampling: a fixed 2 fps sampling rate
    /// (the paper's maximum), prompt and regular model adaptation.
    Prompt,
    /// Adaptive Model Streaming (Khani et al.): the entire distillation
    /// runs in the cloud on a shadow student, and every update ships the
    /// full student weights down to the edge. Adaptive sampling is kept,
    /// as in the paper's comparison.
    Ams,
    /// Shoggoth with a fixed sampling rate (Table III's sensitivity
    /// sweep).
    FixedRate(f64),
}

impl Strategy {
    /// Human-readable name, matching the paper's table headers.
    pub fn name(&self) -> String {
        match self {
            Strategy::Shoggoth => "Shoggoth".into(),
            Strategy::EdgeOnly => "Edge-Only".into(),
            Strategy::CloudOnly => "Cloud-Only".into(),
            Strategy::Prompt => "Prompt".into(),
            Strategy::Ams => "AMS".into(),
            Strategy::FixedRate(r) => format!("Fixed({r})"),
        }
    }

    /// Whether the edge device samples and uploads frames for labeling.
    pub fn uses_sampling(&self) -> bool {
        matches!(
            self,
            Strategy::Shoggoth | Strategy::Prompt | Strategy::Ams | Strategy::FixedRate(_)
        )
    }

    /// Whether the sampling rate adapts via the controller (Eqs. 2–3).
    pub fn adaptive_rate(&self) -> bool {
        matches!(self, Strategy::Shoggoth | Strategy::Ams)
    }

    /// Whether adaptation training runs on the edge device (contending
    /// with inference for the GPU).
    pub fn trains_on_edge(&self) -> bool {
        matches!(
            self,
            Strategy::Shoggoth | Strategy::Prompt | Strategy::FixedRate(_)
        )
    }

    /// The fixed sampling rate, if this strategy has one.
    pub fn fixed_rate(&self) -> Option<f64> {
        match self {
            Strategy::Prompt => Some(2.0),
            Strategy::FixedRate(r) => Some(*r),
            _ => None,
        }
    }

    /// The five strategies of Table I, in column order.
    pub fn table_one() -> [Strategy; 5] {
        [
            Strategy::EdgeOnly,
            Strategy::CloudOnly,
            Strategy::Prompt,
            Strategy::Ams,
            Strategy::Shoggoth,
        ]
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_and_training_flags_are_consistent() {
        assert!(Strategy::Shoggoth.uses_sampling());
        assert!(Strategy::Shoggoth.adaptive_rate());
        assert!(Strategy::Shoggoth.trains_on_edge());
        assert!(!Strategy::EdgeOnly.uses_sampling());
        assert!(!Strategy::CloudOnly.uses_sampling());
        assert!(Strategy::Ams.uses_sampling());
        assert!(Strategy::Ams.adaptive_rate());
        assert!(!Strategy::Ams.trains_on_edge(), "AMS trains in the cloud");
        assert!(!Strategy::Prompt.adaptive_rate());
    }

    #[test]
    fn prompt_is_pinned_at_two_fps() {
        assert_eq!(Strategy::Prompt.fixed_rate(), Some(2.0));
        assert_eq!(Strategy::FixedRate(0.4).fixed_rate(), Some(0.4));
        assert_eq!(Strategy::Shoggoth.fixed_rate(), None);
    }

    #[test]
    fn names_match_the_paper() {
        assert_eq!(Strategy::Ams.name(), "AMS");
        assert_eq!(Strategy::EdgeOnly.name(), "Edge-Only");
        assert_eq!(Strategy::FixedRate(0.8).to_string(), "Fixed(0.8)");
    }

    #[test]
    fn table_one_has_five_columns() {
        assert_eq!(Strategy::table_one().len(), 5);
    }
}
