//! # Shoggoth — edge-cloud collaborative real-time video inference
//!
//! A from-scratch reproduction of *"Shoggoth: Towards Efficient Edge-Cloud
//! Collaborative Real-Time Video Inference via Adaptive Online Learning"*
//! (DAC 2023). The architecture decouples knowledge distillation: the
//! **cloud labels** sampled frames with an expensive golden model, the
//! **edge trains** its lightweight model on those labels — with latent
//! replay against catastrophic forgetting and an adaptive frame-sampling
//! controller that balances accuracy, scene change rate, and resource use.
//!
//! The crate is organized around the paper's sections:
//!
//! * [`replay`] — replay memory management, Algorithm 1 verbatim.
//! * [`trainer`] — adaptive training with latent replay, training control
//!   (constant original:replay mix, freeze policy, BRN), §III-B.
//! * [`controller`] — the φ/α/λ sampling-rate controller, Eqs. (2)–(3).
//! * [`cloud`] — the cloud server: online labeling and rate control.
//! * [`strategy`] — Shoggoth plus every baseline the paper compares
//!   against (Edge-Only, Cloud-Only, Prompt, AMS, fixed rates).
//! * [`sim`] — a deterministic, time-stepped simulation of the whole
//!   edge-cloud system at 30 fps, producing the measurements behind every
//!   table and figure ([`sim::SimReport`]).
//! * [`fleet`] — multi-device scalability analysis: cloud-GPU seconds per
//!   device and supportable devices per GPU (the paper's §IV-B point 4).
//! * [`resilience`] — the edge's failure management: upload timeouts,
//!   bounded retransmission with exponential backoff, and a circuit
//!   breaker that suspends the uplink during outages ([`sim::SimReport`]
//!   surfaces every transition and count).
//!
//! Every stage of the pipeline can additionally stream stamped telemetry
//! events into a `shoggoth-telemetry` recorder
//! ([`Simulation::run_traced`](sim::Simulation::run_traced),
//! [`fleet::run_fleet_traced`]) — observation-only by contract, so traced
//! and untraced runs measure bit-identical results.
//!
//! # Examples
//!
//! Run a short Shoggoth simulation end to end:
//!
//! ```
//! use shoggoth::sim::{SimConfig, Simulation};
//! use shoggoth::strategy::Strategy;
//! use shoggoth_video::presets;
//!
//! let mut config = SimConfig::quick(presets::kitti(5).with_total_frames(1500));
//! config.strategy = Strategy::Shoggoth;
//! let report = Simulation::run(&config)?;
//! assert!(report.map50 > 0.0);
//! assert!(report.training_sessions > 0);
//! assert!(report.uplink_kbps > 0.0);
//! # Ok::<(), shoggoth::error::SimError>(())
//! ```

pub mod cloud;
pub mod controller;
pub mod error;
pub mod fleet;
pub mod replay;
pub mod resilience;
pub mod sim;
pub mod strategy;
pub mod trainer;

pub use cloud::{CloudConfig, CloudFaultProfile, CloudServer, LabelFate};
pub use controller::{phi_score, ControllerConfig, RateDecision, SamplingRateController};
pub use error::{InvalidConfig, SimError, TrainError};
pub use fleet::{run_fleet, run_fleet_traced, FleetConfig, FleetReport};
pub use replay::{ReplayItem, ReplayMemory};
pub use resilience::{
    BreakerState, CircuitBreaker, EdgeResilience, ResilienceConfig, ResilienceReport, UploadTimeout,
};
pub use sim::{SimConfig, SimReport, Simulation};
pub use strategy::Strategy;
pub use trainer::{AdaptiveTrainer, FreezePolicy, ReplayPlacement, SessionReport, TrainerConfig};
