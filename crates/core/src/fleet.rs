//! Multi-device fleet analysis: how many edge devices one cloud GPU
//! supports.
//!
//! The paper argues (§IV-B, point 4) that because AMS "requires more
//! computing resources for training on the cloud, Shoggoth can support
//! more edge devices when several edge devices share the same GPU
//! server". This module quantifies that claim: it runs one simulation per
//! device (each with its own stream seed), accounts the cloud GPU seconds
//! each device demanded — teacher inference for labeling, plus cloud-side
//! training for AMS — and derives the per-device GPU utilization and the
//! supportable fleet size.

use crate::error::SimError;
use crate::sim::{SimConfig, SimReport, Simulation};
use serde::Serialize;
use shoggoth_compute::stack::mask_rcnn_x101;
use shoggoth_compute::DeviceProfile;
use shoggoth_models::{StudentDetector, TeacherDetector};
use shoggoth_telemetry::{Record, RingRecorder};
use shoggoth_util::parallel_map;

/// Configuration of a fleet analysis.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Base simulation configuration; each device gets a reseeded copy of
    /// the same stream preset.
    pub base: SimConfig,
    /// Number of edge devices to simulate.
    pub devices: usize,
    /// The shared cloud GPU.
    pub cloud_gpu: DeviceProfile,
    /// Worker threads for the per-device simulations. `0` (the default)
    /// resolves to the machine's available parallelism; `1` forces the
    /// serial path. Device seeds and report order do not depend on this —
    /// every thread count produces bit-identical [`FleetReport`]s.
    pub threads: usize,
}

impl FleetConfig {
    /// Builds a fleet around a base config.
    ///
    /// # Panics
    ///
    /// Panics if `devices == 0`.
    pub fn new(base: SimConfig, devices: usize) -> Self {
        assert!(devices > 0, "fleet needs at least one device");
        let cloud_gpu = base.cloud_device;
        Self {
            base,
            devices,
            cloud_gpu,
            threads: 0,
        }
    }

    /// Sets the worker-thread count (`0` = auto).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Aggregate result of a fleet analysis.
///
/// `PartialEq` is derived so determinism tests can compare whole fleet
/// runs across thread counts.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetReport {
    /// Strategy analyzed.
    pub strategy: String,
    /// Devices simulated.
    pub devices: usize,
    /// Per-device simulation reports.
    pub per_device: Vec<SimReport>,
    /// Mean mAP@0.5 across devices.
    pub mean_map50: f64,
    /// Total cloud GPU seconds consumed by the whole fleet (teacher
    /// inference + any cloud-side training).
    pub cloud_gpu_secs: f64,
    /// Stream duration in seconds (wall-clock of the analysis window).
    pub duration_secs: f64,
    /// Mean cloud GPU utilization demanded per device, in `[0, ..)`.
    pub gpu_utilization_per_device: f64,
    /// Devices one GPU can serve at full utilization (the paper's
    /// scalability headline).
    pub supported_devices_per_gpu: f64,
    /// Mean uplink Kbps per device.
    pub mean_uplink_kbps: f64,
}

impl std::fmt::Display for FleetReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} fleet: {} devices over {:.1} s",
            self.strategy, self.devices, self.duration_secs
        )?;
        writeln!(f, "  accuracy   mean mAP@0.5 {:.3}", self.mean_map50)?;
        writeln!(
            f,
            "  cloud GPU  {:.1} s total, {:.3} utilization/device",
            self.cloud_gpu_secs, self.gpu_utilization_per_device
        )?;
        writeln!(
            f,
            "  capacity   {:.1} devices per GPU",
            self.supported_devices_per_gpu
        )?;
        write!(
            f,
            "  network    {:.1} Kbps mean uplink per device",
            self.mean_uplink_kbps
        )
    }
}

/// Runs the fleet analysis.
///
/// Each device replays the same stream *preset* with a distinct seed
/// (different traffic, same statistics) so the fleet represents `devices`
/// cameras of the same deployment. Models are pre-trained once and cloned
/// per device.
///
/// Devices are simulated on `config.threads` worker threads. Every device
/// is seeded up front from its index alone and the reports are merged back
/// in device order, so the result is bit-identical to a serial run.
///
/// # Errors
///
/// Returns the first [`SimError`] (in device order) a device run produced;
/// completed device reports are discarded (each device is cheap relative
/// to the sweep).
pub fn run_fleet(config: &FleetConfig) -> Result<FleetReport, SimError> {
    let per_device: Vec<SimReport> = parallel_map(
        device_jobs(config),
        config.threads,
        |_, (device_config, device_student, device_teacher)| {
            Simulation::run_with_models(&device_config, device_student, device_teacher)
        },
    )
    .into_iter()
    .collect::<Result<_, _>>()?;
    Ok(aggregate(config, per_device))
}

/// [`run_fleet`], but with a per-device [`RingRecorder`] (each keeping at
/// most `capacity` records). Returns the fleet report plus one event
/// trace per device, merged in device order — the merged streams are
/// identical for every thread count, because each device's recorder lives
/// entirely inside that device's pre-seeded job.
///
/// # Errors
///
/// Returns the first [`SimError`] (in device order) a device run produced;
/// completed device reports are discarded (each device is cheap relative
/// to the sweep).
pub fn run_fleet_traced(
    config: &FleetConfig,
    capacity: usize,
) -> Result<(FleetReport, Vec<Vec<Record>>), SimError> {
    let results = parallel_map(
        device_jobs(config),
        config.threads,
        move |_, (device_config, device_student, device_teacher)| {
            let mut recorder = RingRecorder::new(capacity);
            Simulation::run_traced(
                &device_config,
                device_student,
                device_teacher,
                &mut recorder,
            )
            .map(|report| (report, recorder.drain_records()))
        },
    );
    let mut per_device = Vec::with_capacity(config.devices);
    let mut traces = Vec::with_capacity(config.devices);
    for result in results {
        let (report, records) = result?;
        per_device.push(report);
        traces.push(records);
    }
    Ok((aggregate(config, per_device), traces))
}

/// Materializes the per-device work items (config + model clones) before
/// any fan-out, so worker scheduling cannot influence seeding.
fn device_jobs(config: &FleetConfig) -> Vec<(SimConfig, StudentDetector, TeacherDetector)> {
    let (student, teacher) = Simulation::build_models(&config.base);
    (0..config.devices)
        .map(|device| {
            let mut device_config = config.base.clone();
            device_config.stream = device_config
                .stream
                .with_seed(config.base.stream.seed.wrapping_add(device as u64 * 7919));
            device_config.sim_seed = config.base.sim_seed.wrapping_add(device as u64);
            (device_config, student.clone(), teacher.clone())
        })
        .collect()
}

/// Folds per-device reports into the fleet aggregate (shared by the traced
/// and untraced runners).
fn aggregate(config: &FleetConfig, per_device: Vec<SimReport>) -> FleetReport {
    let teacher_infer_secs = config
        .cloud_gpu
        .secs_for(mask_rcnn_x101().total_forward_flops());
    let duration_secs = per_device
        .first()
        .map(|r| r.duration_secs)
        .unwrap_or_default();
    let cloud_gpu_secs: f64 = per_device
        .iter()
        .map(|r| r.teacher_frames as f64 * teacher_infer_secs + r.cloud_training_secs)
        .sum();
    let mean_map50 = per_device.iter().map(|r| r.map50).sum::<f64>() / config.devices as f64;
    let mean_uplink_kbps =
        per_device.iter().map(|r| r.uplink_kbps).sum::<f64>() / config.devices as f64;
    let per_device_util = cloud_gpu_secs / config.devices as f64 / duration_secs.max(1e-9);

    FleetReport {
        strategy: config.base.strategy.name(),
        devices: config.devices,
        mean_map50,
        cloud_gpu_secs,
        duration_secs,
        gpu_utilization_per_device: per_device_util,
        supported_devices_per_gpu: if per_device_util > 0.0 {
            1.0 / per_device_util
        } else {
            f64::INFINITY
        },
        mean_uplink_kbps,
        per_device,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;
    use shoggoth_video::presets;

    fn fleet(strategy: Strategy, devices: usize) -> FleetReport {
        let mut base = SimConfig::quick(presets::kitti(71).with_total_frames(1800));
        base.strategy = strategy;
        run_fleet(&FleetConfig::new(base, devices)).expect("fleet runs cleanly")
    }

    #[test]
    fn fleet_runs_one_report_per_device() {
        let report = fleet(Strategy::Shoggoth, 3);
        assert_eq!(report.per_device.len(), 3);
        assert_eq!(report.devices, 3);
        assert!(report.duration_secs > 0.0);
    }

    #[test]
    fn devices_see_different_streams() {
        let report = fleet(Strategy::Shoggoth, 2);
        assert_ne!(
            report.per_device[0].per_frame_map, report.per_device[1].per_frame_map,
            "devices must not replay identical traffic"
        );
    }

    #[test]
    fn cloud_only_demands_far_more_gpu_than_shoggoth() {
        let shoggoth = fleet(Strategy::Shoggoth, 2);
        let cloud = fleet(Strategy::CloudOnly, 2);
        assert!(
            cloud.cloud_gpu_secs > 10.0 * shoggoth.cloud_gpu_secs.max(1e-9),
            "cloud-only {} vs shoggoth {}",
            cloud.cloud_gpu_secs,
            shoggoth.cloud_gpu_secs
        );
        assert!(cloud.supported_devices_per_gpu < shoggoth.supported_devices_per_gpu);
    }

    #[test]
    fn ams_training_costs_cloud_gpu_time() {
        let shoggoth = fleet(Strategy::Shoggoth, 2);
        let ams = fleet(Strategy::Ams, 2);
        let ams_training: f64 = ams.per_device.iter().map(|r| r.cloud_training_secs).sum();
        let shoggoth_training: f64 = shoggoth
            .per_device
            .iter()
            .map(|r| r.cloud_training_secs)
            .sum();
        assert_eq!(shoggoth_training, 0.0, "Shoggoth trains on the edge");
        if ams.per_device.iter().any(|r| r.training_sessions > 0) {
            assert!(ams_training > 0.0, "AMS must bill cloud training time");
        }
    }

    #[test]
    fn edge_only_uses_no_cloud_gpu() {
        let report = fleet(Strategy::EdgeOnly, 2);
        assert_eq!(report.cloud_gpu_secs, 0.0);
        assert!(report.supported_devices_per_gpu.is_infinite());
    }
}
