//! Edge-side resilience: upload timeouts, bounded retransmission with
//! exponential backoff, and a circuit breaker over the uplink.
//!
//! The paper assumes the cloud path is best-effort, but the seed
//! implementation took that literally: during a total blackout the edge
//! "kept (pointlessly) transmitting" — every chunk billed, none
//! delivered, no reaction anywhere. This module gives the edge the three
//! standard failure-management mechanisms, all deterministic under the
//! simulation's seeded RNG:
//!
//! * **In-flight tracking** ([`EdgeResilience::register`] /
//!   [`EdgeResilience::ack`]): every upload carries an id and a deadline;
//!   an upload not acknowledged (labels returned) by its deadline counts
//!   as a timeout.
//! * **Bounded retransmission**: timed-out chunks requeue with
//!   exponential backoff plus jitter, up to `max_attempts` sends and a
//!   bounded queue — overflow drops the oldest work instead of growing
//!   without bound.
//! * **Circuit breaker** ([`CircuitBreaker`]): consecutive timeouts open
//!   the breaker, which *suspends* the uplink (sampled chunks are counted
//!   and discarded, saving their bytes), freezes adaptation, and widens
//!   the sampling interval to the controller's outage floor. After a
//!   cooldown it half-opens and sends a single probe chunk; a delivered
//!   probe closes the breaker and releases the queued retransmits.
//!
//! ```text
//!            consecutive timeouts ≥ open_after
//!   CLOSED ────────────────────────────────────▶ OPEN
//!     ▲                                           │ cooldown elapsed
//!     │ probe acked                               ▼
//!     └────────────────────────────────────── HALF-OPEN
//!                     probe timeout ──▶ OPEN (again)
//! ```
//!
//! Every transition and count is surfaced in [`ResilienceReport`], and
//! the breaker's span accounting (seconds spent per state) sums to the
//! simulation duration — an invariant the chaos tests assert.

use crate::error::InvalidConfig;
use serde::{Deserialize, Serialize};
use shoggoth_net::Link;
use shoggoth_util::Rng;
use shoggoth_video::Frame;

/// Parameters of the edge resilience layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResilienceConfig {
    /// Seconds after which an unacknowledged upload counts as timed out.
    pub upload_timeout_secs: f64,
    /// Maximum total send attempts per chunk (1 = never retransmit).
    pub max_attempts: u32,
    /// Base of the exponential backoff before a retransmit, seconds.
    pub backoff_base_secs: f64,
    /// Cap on the exponential backoff, seconds.
    pub backoff_max_secs: f64,
    /// Uniform jitter added to each backoff, seconds (decorrelates
    /// retransmit storms across a fleet).
    pub backoff_jitter_secs: f64,
    /// Consecutive timeouts that open the circuit breaker
    /// (0 = breaker disabled, never opens).
    pub breaker_open_after: u32,
    /// Seconds the breaker stays open before half-opening with a probe.
    /// Each failed probe doubles the next cooldown (escalation), so a
    /// long outage costs a handful of probes, not one per cooldown.
    pub breaker_cooldown_secs: f64,
    /// Cap on the escalating cooldown, seconds. A successful recovery
    /// resets the cooldown to `breaker_cooldown_secs`.
    pub breaker_cooldown_max_secs: f64,
    /// Maximum chunks waiting in the retransmit queue; overflow drops the
    /// oldest queued chunk.
    pub retransmit_capacity: usize,
}

impl ResilienceConfig {
    /// The resilience layer as shipped: retries with backoff and an
    /// outage-detecting breaker.
    pub fn standard() -> Self {
        Self {
            upload_timeout_secs: 2.0,
            max_attempts: 3,
            backoff_base_secs: 0.5,
            backoff_max_secs: 8.0,
            backoff_jitter_secs: 0.25,
            breaker_open_after: 2,
            breaker_cooldown_secs: 5.0,
            breaker_cooldown_max_secs: 40.0,
            retransmit_capacity: 4,
        }
    }

    /// The seed repo's behavior: fire-and-forget uploads, no retries, no
    /// breaker. Used as the baseline in blackout-waste comparisons.
    pub fn disabled() -> Self {
        Self {
            upload_timeout_secs: 2.0,
            max_attempts: 1,
            backoff_base_secs: 0.5,
            backoff_max_secs: 8.0,
            backoff_jitter_secs: 0.0,
            breaker_open_after: 0,
            breaker_cooldown_secs: 5.0,
            breaker_cooldown_max_secs: 40.0,
            retransmit_capacity: 0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfig`] on NaN/non-positive timeouts or
    /// cooldowns, negative backoff parameters, or `max_attempts == 0`.
    pub fn validate(&self) -> Result<(), InvalidConfig> {
        let reject = |reason| InvalidConfig {
            component: "resilience",
            reason,
        };
        if !self.upload_timeout_secs.is_finite() || self.upload_timeout_secs <= 0.0 {
            return Err(reject("upload timeout must be finite and positive"));
        }
        if self.max_attempts == 0 {
            return Err(reject("max attempts must be at least 1"));
        }
        if !self.backoff_base_secs.is_finite() || self.backoff_base_secs < 0.0 {
            return Err(reject("backoff base must be finite and non-negative"));
        }
        if !self.backoff_max_secs.is_finite() || self.backoff_max_secs < self.backoff_base_secs {
            return Err(reject("backoff cap must be finite and at least the base"));
        }
        if !self.backoff_jitter_secs.is_finite() || self.backoff_jitter_secs < 0.0 {
            return Err(reject("backoff jitter must be finite and non-negative"));
        }
        if !self.breaker_cooldown_secs.is_finite() || self.breaker_cooldown_secs <= 0.0 {
            return Err(reject("breaker cooldown must be finite and positive"));
        }
        if !self.breaker_cooldown_max_secs.is_finite()
            || self.breaker_cooldown_max_secs < self.breaker_cooldown_secs
        {
            return Err(reject(
                "breaker cooldown cap must be finite and at least the base cooldown",
            ));
        }
        Ok(())
    }

    /// The backoff delay before send attempt `attempt + 1`, given that
    /// attempt number `attempt` (1-based) just failed: exponential in the
    /// attempt index, capped at `backoff_max_secs`.
    pub fn backoff_secs(&self, attempt: u32) -> f64 {
        let exp = attempt.saturating_sub(1).min(32);
        (self.backoff_base_secs * f64::powi(2.0, exp as i32)).min(self.backoff_max_secs)
    }
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self::standard()
    }
}

/// The circuit breaker's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum BreakerState {
    /// Normal operation: uploads flow.
    Closed,
    /// Outage detected: uplink suspended, adaptation frozen.
    Open,
    /// Cooldown elapsed: probing the link with a single chunk.
    HalfOpen,
}

/// A consecutive-failure circuit breaker with per-state span accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitBreaker {
    open_after: u32,
    cooldown_secs: f64,
    cooldown_max_secs: f64,
    current_cooldown_secs: f64,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at_secs: f64,
    span_start_secs: f64,
    closed_secs: f64,
    open_secs: f64,
    half_open_secs: f64,
    opens: u64,
    half_opens: u64,
    closes: u64,
}

impl CircuitBreaker {
    /// Creates a closed breaker. `open_after == 0` disables it entirely.
    /// Each failed probe doubles the cooldown up to `cooldown_max_secs`;
    /// a recovery resets it to `cooldown_secs`.
    pub fn new(open_after: u32, cooldown_secs: f64, cooldown_max_secs: f64) -> Self {
        Self {
            open_after,
            cooldown_secs,
            cooldown_max_secs,
            current_cooldown_secs: cooldown_secs,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at_secs: 0.0,
            span_start_secs: 0.0,
            closed_secs: 0.0,
            open_secs: 0.0,
            half_open_secs: 0.0,
            opens: 0,
            half_opens: 0,
            closes: 0,
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    fn transition(&mut self, now_secs: f64, next: BreakerState) {
        let span = (now_secs - self.span_start_secs).max(0.0);
        match self.state {
            BreakerState::Closed => self.closed_secs += span,
            BreakerState::Open => self.open_secs += span,
            BreakerState::HalfOpen => self.half_open_secs += span,
        }
        self.span_start_secs = now_secs;
        self.state = next;
    }

    /// Records a failed upload (timeout). Opens the breaker after
    /// `open_after` consecutive failures, and re-opens it immediately on
    /// a failed probe — doubling the cooldown (up to the cap) so a long
    /// outage is probed at a geometrically decaying rate.
    pub fn on_failure(&mut self, now_secs: f64) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.open_after > 0 && self.consecutive_failures >= self.open_after {
                    self.transition(now_secs, BreakerState::Open);
                    self.opened_at_secs = now_secs;
                    self.current_cooldown_secs = self.cooldown_secs;
                    self.opens += 1;
                }
            }
            BreakerState::HalfOpen => {
                self.transition(now_secs, BreakerState::Open);
                self.opened_at_secs = now_secs;
                self.current_cooldown_secs =
                    (self.current_cooldown_secs * 2.0).min(self.cooldown_max_secs);
                self.opens += 1;
            }
            BreakerState::Open => {}
        }
    }

    /// Records a successful upload acknowledgment. Returns `true` when
    /// this success closed the breaker (a delivered probe).
    pub fn on_success(&mut self, now_secs: f64) -> bool {
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.transition(now_secs, BreakerState::Closed);
            self.current_cooldown_secs = self.cooldown_secs;
            self.closes += 1;
            true
        } else {
            false
        }
    }

    /// Advances time-driven transitions: an open breaker half-opens once
    /// its (possibly escalated) cooldown has elapsed.
    pub fn poll(&mut self, now_secs: f64) {
        if self.state == BreakerState::Open
            && now_secs - self.opened_at_secs >= self.current_cooldown_secs
        {
            self.transition(now_secs, BreakerState::HalfOpen);
            self.half_opens += 1;
        }
    }

    /// Closes the final span at the end of the run so the per-state spans
    /// sum to `end_secs`.
    pub fn finish(&mut self, end_secs: f64) {
        let state = self.state;
        self.transition(end_secs, state);
    }

    /// Seconds spent closed / open / half-open so far.
    pub fn spans(&self) -> (f64, f64, f64) {
        (self.closed_secs, self.open_secs, self.half_open_secs)
    }

    /// Open / half-open / close transition counts so far.
    pub fn transitions(&self) -> (u64, u64, u64) {
        (self.opens, self.half_opens, self.closes)
    }
}

/// One chunk awaiting acknowledgment (labels returned from the cloud).
#[derive(Debug, Clone)]
struct InflightUpload {
    id: u64,
    deadline_secs: f64,
    attempt: u32,
    probe: bool,
    frames: Vec<Frame>,
}

/// A timed-out chunk waiting for its backoff to elapse.
#[derive(Debug, Clone)]
pub struct QueuedRetransmit {
    /// Simulation time at which the retransmit may be sent.
    pub ready_at_secs: f64,
    /// The send attempt this retransmit will be (1-based).
    pub attempt: u32,
    /// The sampled frames to re-send.
    pub frames: Vec<Frame>,
}

/// The outcome of acknowledging an upload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckOutcome {
    /// Whether the upload was still tracked (false for post-timeout
    /// stragglers, whose labels are used but change no breaker state).
    pub acked: bool,
    /// Whether this acknowledgment closed the breaker (a probe landed).
    pub closed_breaker: bool,
}

/// One expired in-flight upload, as reported by [`EdgeResilience::expire`]
/// (the telemetry layer turns each into an `UploadTimedOut` event).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UploadTimeout {
    /// The send attempt that timed out (1-based).
    pub attempt: u32,
    /// Whether the expired upload was a half-open probe.
    pub probe: bool,
    /// Whether the chunk was requeued for retransmission (false for
    /// probes, exhausted attempts, and queue-capacity drops).
    pub requeued: bool,
}

/// Resilience counters surfaced in the simulation report.
///
/// `PartialEq` is derived so determinism tests can compare whole chaos
/// runs bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ResilienceReport {
    /// Uploads that reached their deadline unacknowledged.
    pub upload_timeouts: u64,
    /// Chunks re-sent after a timeout.
    pub retransmits: u64,
    /// Chunks abandoned: attempts exhausted or retransmit queue full.
    pub retries_dropped: u64,
    /// Probe chunks sent while half-open.
    pub probe_uploads: u64,
    /// Chunks sampled but discarded because the breaker was open.
    pub suppressed_uploads: u64,
    /// Uplink bytes those suppressed chunks would have cost.
    pub suppressed_bytes: u64,
    /// Breaker open transitions.
    pub breaker_opens: u64,
    /// Breaker half-open transitions.
    pub breaker_half_opens: u64,
    /// Breaker close transitions (recoveries).
    pub breaker_closes: u64,
    /// Seconds spent with the breaker closed.
    pub closed_secs: f64,
    /// Seconds spent with the breaker open.
    pub open_secs: f64,
    /// Seconds spent with the breaker half-open.
    pub half_open_secs: f64,
    /// Label batches the cloud dropped (cloud-side fault injection).
    pub cloud_label_drops: u64,
    /// Label batches the cloud returned late (cloud-side fault injection).
    pub slow_label_batches: u64,
    /// Messages the link lost to any fault, both directions.
    pub messages_lost: u64,
    /// Messages the link lost to scheduled outage windows.
    pub outage_drops: u64,
}

/// The edge resilience layer: in-flight tracker, retransmit queue, and
/// circuit breaker, plus every counter the report surfaces.
#[derive(Debug, Clone)]
pub struct EdgeResilience {
    config: ResilienceConfig,
    breaker: CircuitBreaker,
    inflight: Vec<InflightUpload>,
    queue: Vec<QueuedRetransmit>,
    next_id: u64,
    upload_timeouts: u64,
    retransmits: u64,
    retries_dropped: u64,
    probe_uploads: u64,
    suppressed_uploads: u64,
    suppressed_bytes: u64,
    cloud_label_drops: u64,
    slow_label_batches: u64,
}

impl EdgeResilience {
    /// Creates the layer.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidConfig`] if `config` fails
    /// [`ResilienceConfig::validate`].
    pub fn new(config: ResilienceConfig) -> Result<Self, InvalidConfig> {
        config.validate()?;
        Ok(Self {
            breaker: CircuitBreaker::new(
                config.breaker_open_after,
                config.breaker_cooldown_secs,
                config.breaker_cooldown_max_secs,
            ),
            config,
            inflight: Vec::new(),
            queue: Vec::new(),
            next_id: 0,
            upload_timeouts: 0,
            retransmits: 0,
            retries_dropped: 0,
            probe_uploads: 0,
            suppressed_uploads: 0,
            suppressed_bytes: 0,
            cloud_label_drops: 0,
            slow_label_batches: 0,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &ResilienceConfig {
        &self.config
    }

    /// The breaker's current state.
    pub fn state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Tracks a just-sent upload and returns its id. `attempt` is 1-based;
    /// pass `probe = true` for half-open probe chunks.
    pub fn register(
        &mut self,
        now_secs: f64,
        frames: Vec<Frame>,
        attempt: u32,
        probe: bool,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        if probe {
            self.probe_uploads += 1;
        }
        if attempt > 1 {
            self.retransmits += 1;
        }
        self.inflight.push(InflightUpload {
            id,
            deadline_secs: now_secs + self.config.upload_timeout_secs,
            attempt,
            probe,
            frames,
        });
        id
    }

    /// Acknowledges an upload (its labels arrived back on the edge).
    pub fn ack(&mut self, id: u64, now_secs: f64) -> AckOutcome {
        let Some(pos) = self.inflight.iter().position(|u| u.id == id) else {
            return AckOutcome {
                acked: false,
                closed_breaker: false,
            };
        };
        self.inflight.remove(pos);
        let closed_breaker = self.breaker.on_success(now_secs);
        AckOutcome {
            acked: true,
            closed_breaker,
        }
    }

    /// Expires every in-flight upload past its deadline: counts the
    /// timeout, informs the breaker, and requeues the chunk with backoff
    /// (probes and exhausted attempts are dropped instead). Returns one
    /// [`UploadTimeout`] per expiry, in deadline-scan order.
    pub fn expire(&mut self, now_secs: f64, rng: &mut Rng) -> Vec<UploadTimeout> {
        let mut timeouts = Vec::new();
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].deadline_secs > now_secs {
                i += 1;
                continue;
            }
            let expired = self.inflight.remove(i);
            self.upload_timeouts += 1;
            self.breaker.on_failure(now_secs);
            let mut timeout = UploadTimeout {
                attempt: expired.attempt,
                probe: expired.probe,
                requeued: false,
            };
            if expired.probe {
                timeouts.push(timeout);
                continue;
            }
            if expired.attempt >= self.config.max_attempts {
                self.retries_dropped += 1;
                timeouts.push(timeout);
                continue;
            }
            let mut delay = self.config.backoff_secs(expired.attempt);
            if self.config.backoff_jitter_secs > 0.0 {
                delay += rng.range_f64(0.0, self.config.backoff_jitter_secs);
            }
            if self.queue.len() >= self.config.retransmit_capacity {
                // Bounded queue: shed the oldest queued chunk first.
                if self.queue.is_empty() {
                    self.retries_dropped += 1;
                    timeouts.push(timeout);
                    continue;
                }
                self.queue.remove(0);
                self.retries_dropped += 1;
            }
            timeout.requeued = true;
            timeouts.push(timeout);
            self.queue.push(QueuedRetransmit {
                ready_at_secs: now_secs + delay,
                attempt: expired.attempt + 1,
                frames: expired.frames,
            });
        }
        timeouts
    }

    /// Advances the breaker's time-driven transitions (open → half-open).
    pub fn poll(&mut self, now_secs: f64) {
        self.breaker.poll(now_secs);
    }

    /// Pops the first retransmit whose backoff has elapsed, if the breaker
    /// is closed (an open breaker holds the queue).
    pub fn take_ready(&mut self, now_secs: f64) -> Option<QueuedRetransmit> {
        if self.breaker.state() != BreakerState::Closed {
            return None;
        }
        let pos = self
            .queue
            .iter()
            .position(|q| q.ready_at_secs <= now_secs)?;
        Some(self.queue.remove(pos))
    }

    /// Makes every queued retransmit immediately ready (the catch-up after
    /// a recovery closes the breaker).
    pub fn release_queue(&mut self, now_secs: f64) {
        for q in &mut self.queue {
            q.ready_at_secs = q.ready_at_secs.min(now_secs);
        }
    }

    /// Retransmit chunks currently queued (the telemetry queue-depth
    /// signal, alongside in-flight uploads).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether a probe chunk is currently awaiting acknowledgment.
    pub fn probe_in_flight(&self) -> bool {
        self.inflight.iter().any(|u| u.probe)
    }

    /// Counts a chunk sampled-but-discarded while the breaker was open,
    /// and the uplink bytes it would have cost.
    pub fn note_suppressed(&mut self, bytes: u64) {
        self.suppressed_uploads += 1;
        self.suppressed_bytes += bytes;
    }

    /// Counts a label batch the cloud dropped.
    pub fn note_cloud_drop(&mut self) {
        self.cloud_label_drops += 1;
    }

    /// Counts a label batch the cloud returned late.
    pub fn note_slow_labels(&mut self) {
        self.slow_label_batches += 1;
    }

    /// Closes the breaker's final span so per-state seconds sum to the
    /// run duration.
    pub fn finish(&mut self, end_secs: f64) {
        self.breaker.finish(end_secs);
    }

    /// Assembles the report, merging the link's loss counters.
    pub fn report(&self, link: &Link) -> ResilienceReport {
        let (closed_secs, open_secs, half_open_secs) = self.breaker.spans();
        let (breaker_opens, breaker_half_opens, breaker_closes) = self.breaker.transitions();
        ResilienceReport {
            upload_timeouts: self.upload_timeouts,
            retransmits: self.retransmits,
            retries_dropped: self.retries_dropped,
            probe_uploads: self.probe_uploads,
            suppressed_uploads: self.suppressed_uploads,
            suppressed_bytes: self.suppressed_bytes,
            breaker_opens,
            breaker_half_opens,
            breaker_closes,
            closed_secs,
            open_secs,
            half_open_secs,
            cloud_label_drops: self.cloud_label_drops,
            slow_label_batches: self.slow_label_batches,
            messages_lost: link.dropped_messages(),
            outage_drops: link.outage_drops(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(n: usize) -> Vec<Frame> {
        use shoggoth_video::presets;
        presets::kitti(9)
            .with_total_frames(n as u64)
            .build()
            .collect()
    }

    #[test]
    fn breaker_opens_after_consecutive_failures() {
        let mut b = CircuitBreaker::new(2, 5.0, 40.0);
        b.on_failure(1.0);
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure(2.0);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.transitions(), (1, 0, 0));
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = CircuitBreaker::new(2, 5.0, 40.0);
        b.on_failure(1.0);
        assert!(!b.on_success(1.5));
        b.on_failure(2.0);
        assert_eq!(b.state(), BreakerState::Closed, "streak was reset");
    }

    #[test]
    fn breaker_half_opens_after_cooldown_and_closes_on_probe_success() {
        let mut b = CircuitBreaker::new(1, 5.0, 40.0);
        b.on_failure(10.0);
        assert_eq!(b.state(), BreakerState::Open);
        b.poll(14.9);
        assert_eq!(b.state(), BreakerState::Open);
        b.poll(15.0);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.on_success(16.0), "probe success closes the breaker");
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.transitions(), (1, 1, 1));
    }

    #[test]
    fn failed_probe_reopens_the_breaker() {
        let mut b = CircuitBreaker::new(1, 5.0, 40.0);
        b.on_failure(10.0);
        b.poll(15.0);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_failure(17.0);
        assert_eq!(b.state(), BreakerState::Open);
        b.poll(26.9);
        assert_eq!(
            b.state(),
            BreakerState::Open,
            "cooldown restarts, doubled to 10 s by the failed probe"
        );
        b.poll(27.0);
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn failed_probes_escalate_the_cooldown_until_recovery_resets_it() {
        let mut b = CircuitBreaker::new(1, 5.0, 12.0);
        b.on_failure(0.0); // open, cooldown 5
        b.poll(5.0);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_failure(6.0); // probe failed → cooldown 10
        b.poll(15.9);
        assert_eq!(b.state(), BreakerState::Open, "escalated cooldown");
        b.poll(16.0);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_failure(17.0); // probe failed → cooldown capped at 12
        b.poll(28.9);
        assert_eq!(b.state(), BreakerState::Open, "cap holds");
        b.poll(29.0);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.on_success(30.0), "recovery closes and resets");
        b.on_failure(31.0); // re-open: cooldown back to base 5
        b.poll(36.0);
        assert_eq!(b.state(), BreakerState::HalfOpen, "base cooldown again");
    }

    #[test]
    fn span_accounting_sums_to_the_run_duration() {
        let mut b = CircuitBreaker::new(1, 5.0, 40.0);
        b.on_failure(10.0); // closed 0..10
        b.poll(15.0); // open 10..15
        b.on_success(16.0); // half-open 15..16
        b.finish(30.0); // closed 16..30
        let (closed, open, half) = b.spans();
        assert!((closed - 24.0).abs() < 1e-9, "closed {closed}");
        assert!((open - 5.0).abs() < 1e-9, "open {open}");
        assert!((half - 1.0).abs() < 1e-9, "half {half}");
        assert!((closed + open + half - 30.0).abs() < 1e-9);
    }

    #[test]
    fn disabled_breaker_never_opens() {
        let mut b = CircuitBreaker::new(0, 5.0, 40.0);
        for i in 0..100 {
            b.on_failure(i as f64);
        }
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let cfg = ResilienceConfig::standard();
        assert!((cfg.backoff_secs(1) - 0.5).abs() < 1e-12);
        assert!((cfg.backoff_secs(2) - 1.0).abs() < 1e-12);
        assert!((cfg.backoff_secs(3) - 2.0).abs() < 1e-12);
        assert!((cfg.backoff_secs(10) - 8.0).abs() < 1e-12, "capped");
    }

    #[test]
    fn timeout_requeues_with_backoff_then_exhausts() {
        let mut r = EdgeResilience::new(ResilienceConfig {
            backoff_jitter_secs: 0.0,
            breaker_open_after: 0,
            ..ResilienceConfig::standard()
        })
        .expect("valid config");
        let mut rng = Rng::seed_from(1);
        r.register(0.0, frames(2), 1, false);
        r.expire(2.0, &mut rng); // attempt 1 times out → queued
        assert_eq!(r.report(&fresh_link()).upload_timeouts, 1);
        let q = r.take_ready(2.5).expect("backoff 0.5 s elapsed");
        assert_eq!(q.attempt, 2);
        r.register(2.5, q.frames, q.attempt, false);
        r.expire(4.5, &mut rng); // attempt 2 times out → queued (backoff 1 s)
        assert!(r.take_ready(5.0).is_none(), "backoff not yet elapsed");
        let q = r.take_ready(5.5).expect("backoff elapsed");
        assert_eq!(q.attempt, 3);
        r.register(5.5, q.frames, q.attempt, false);
        r.expire(7.5, &mut rng); // attempt 3 = max_attempts → dropped
        let report = r.report(&fresh_link());
        assert_eq!(report.upload_timeouts, 3);
        assert_eq!(report.retransmits, 2);
        assert_eq!(report.retries_dropped, 1);
    }

    #[test]
    fn retransmit_queue_is_bounded() {
        let mut r = EdgeResilience::new(ResilienceConfig {
            retransmit_capacity: 2,
            breaker_open_after: 0,
            ..ResilienceConfig::standard()
        })
        .expect("valid config");
        let mut rng = Rng::seed_from(2);
        for _ in 0..4 {
            r.register(0.0, frames(1), 1, false);
        }
        r.expire(10.0, &mut rng);
        let report = r.report(&fresh_link());
        assert_eq!(report.upload_timeouts, 4);
        assert_eq!(report.retries_dropped, 2, "overflow sheds oldest");
    }

    #[test]
    fn probes_are_never_retransmitted() {
        let mut r = EdgeResilience::new(ResilienceConfig::standard()).expect("valid config");
        let mut rng = Rng::seed_from(3);
        r.register(0.0, frames(1), 1, true);
        assert!(r.probe_in_flight());
        r.expire(5.0, &mut rng);
        assert!(!r.probe_in_flight());
        assert!(r.take_ready(100.0).is_none(), "probe must not requeue");
    }

    #[test]
    fn open_breaker_holds_the_queue_until_release() {
        let mut r = EdgeResilience::new(ResilienceConfig {
            breaker_open_after: 1,
            backoff_jitter_secs: 0.0,
            ..ResilienceConfig::standard()
        })
        .expect("valid config");
        let mut rng = Rng::seed_from(4);
        r.register(0.0, frames(1), 1, false);
        r.expire(2.0, &mut rng); // timeout opens the breaker and queues
        assert_eq!(r.state(), BreakerState::Open);
        assert!(r.take_ready(100.0).is_none(), "open breaker holds queue");
    }

    #[test]
    fn late_ack_is_ignored_after_timeout() {
        let mut r = EdgeResilience::new(ResilienceConfig::standard()).expect("valid config");
        let mut rng = Rng::seed_from(5);
        let id = r.register(0.0, frames(1), 1, false);
        r.expire(3.0, &mut rng);
        let outcome = r.ack(id, 3.5);
        assert!(!outcome.acked, "expired upload is no longer tracked");
    }

    #[test]
    fn config_rejections() {
        let base = ResilienceConfig::standard;
        let cases = [
            ResilienceConfig {
                upload_timeout_secs: f64::NAN,
                ..base()
            },
            ResilienceConfig {
                upload_timeout_secs: 0.0,
                ..base()
            },
            ResilienceConfig {
                max_attempts: 0,
                ..base()
            },
            ResilienceConfig {
                backoff_base_secs: -1.0,
                ..base()
            },
            ResilienceConfig {
                backoff_max_secs: 0.1,
                ..base()
            },
            ResilienceConfig {
                backoff_jitter_secs: f64::NAN,
                ..base()
            },
            ResilienceConfig {
                breaker_cooldown_secs: 0.0,
                ..base()
            },
            ResilienceConfig {
                breaker_cooldown_max_secs: 1.0,
                ..base()
            },
        ];
        for bad in cases {
            assert!(bad.validate().is_err(), "{bad:?} should be rejected");
        }
        assert!(base().validate().is_ok());
        assert!(ResilienceConfig::disabled().validate().is_ok());
    }

    fn fresh_link() -> Link {
        Link::new(shoggoth_net::LinkConfig::cellular()).expect("valid default link")
    }
}
