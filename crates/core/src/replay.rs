//! Replay memory management — the paper's Algorithm 1, verbatim.
//!
//! The memory stores **activation volumes** at the replay layer (not raw
//! inputs), plus their labels. After each adaptive training run `i`, a
//! random `h = M_size / i` images from the fresh batch replace an equally
//! random subset of the memory; before the memory fills, everything is
//! memorized. This gives every historical batch an equal steady-state
//! probability of residing in memory — the property that prevents
//! forgetting.

use shoggoth_util::Rng;

/// One memorized sample: the activation volume captured at the replay
/// layer and its (pseudo-)label.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayItem {
    /// Activations at the replay layer.
    pub activation: Vec<f32>,
    /// Class label (foreground class or background index).
    pub label: usize,
    /// Training-run index at which the item was stored (for diagnostics
    /// and the uniformity tests).
    pub stored_at_run: usize,
}

/// The replay memory `M` of Algorithm 1.
///
/// # Examples
///
/// ```
/// use shoggoth::replay::{ReplayItem, ReplayMemory};
/// use shoggoth_util::Rng;
///
/// let mut memory = ReplayMemory::new(100);
/// let mut rng = Rng::seed_from(0);
/// let batch: Vec<ReplayItem> = (0..40)
///     .map(|i| ReplayItem { activation: vec![i as f32], label: 0, stored_at_run: 0 })
///     .collect();
/// memory.integrate(batch, &mut rng);
/// assert_eq!(memory.len(), 40);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayMemory {
    capacity: usize,
    items: Vec<ReplayItem>,
    /// The adaptive-training counter `i` of Algorithm 1 (1-based after the
    /// first integration).
    runs: usize,
}

impl ReplayMemory {
    /// Creates an empty memory with the given capacity (`M_size`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay memory capacity must be positive");
        Self {
            capacity,
            items: Vec::new(),
            runs: 0,
        }
    }

    /// Capacity `M_size`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the memory is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the memory is at capacity (`IsFull(M)`).
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Number of completed integrations (the counter `i`).
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// The stored items.
    pub fn items(&self) -> &[ReplayItem] {
        &self.items
    }

    /// Integrates a fresh training batch `B` after a training run —
    /// Algorithm 1 lines 6–12.
    ///
    /// When full: `h = M_size / i` random batch items replace `h` random
    /// memory items. When not full: all available images are memorized
    /// (a random subset if the batch overflows the remaining space).
    ///
    /// The batch is taken by value so selected items (and their activation
    /// buffers) are *moved* into the memory — integration never copies an
    /// activation volume.
    pub fn integrate(&mut self, mut batch: Vec<ReplayItem>, rng: &mut Rng) {
        self.runs += 1;
        if batch.is_empty() {
            return;
        }
        if self.is_full() {
            let h = (self.capacity / self.runs).min(batch.len());
            if h == 0 {
                return;
            }
            let add_idx = rng.sample_indices(batch.len(), h);
            let replace_idx = rng.sample_indices(self.items.len(), h);
            for (&src, &dst) in add_idx.iter().zip(&replace_idx) {
                // `sample_indices` returns distinct indices, so each source
                // slot is moved out of at most once.
                let mut item = std::mem::replace(
                    &mut batch[src],
                    ReplayItem {
                        activation: Vec::new(),
                        label: 0,
                        stored_at_run: 0,
                    },
                );
                item.stored_at_run = self.runs;
                self.items[dst] = item;
            }
        } else {
            let space = self.capacity - self.items.len();
            let take = batch.len().min(space);
            if take == batch.len() {
                for mut item in batch {
                    item.stored_at_run = self.runs;
                    self.items.push(item);
                }
            } else {
                for &src in &rng.sample_indices(batch.len(), take) {
                    let mut item = std::mem::replace(
                        &mut batch[src],
                        ReplayItem {
                            activation: Vec::new(),
                            label: 0,
                            stored_at_run: 0,
                        },
                    );
                    item.stored_at_run = self.runs;
                    self.items.push(item);
                }
            }
        }
    }

    /// Samples `k` items uniformly (without replacement) for a mini-batch.
    /// Returns fewer than `k` when the memory holds fewer.
    pub fn sample(&self, k: usize, rng: &mut Rng) -> Vec<&ReplayItem> {
        rng.sample_indices(self.items.len(), k)
            .into_iter()
            .map(|i| &self.items[i])
            .collect()
    }

    /// Clears the memory and the run counter.
    pub fn reset(&mut self) {
        self.items.clear();
        self.runs = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(n: usize, run_tag: usize) -> Vec<ReplayItem> {
        (0..n)
            .map(|i| ReplayItem {
                activation: vec![i as f32],
                label: run_tag,
                stored_at_run: 0,
            })
            .collect()
    }

    #[test]
    fn fills_before_replacing() {
        let mut m = ReplayMemory::new(50);
        let mut rng = Rng::seed_from(1);
        m.integrate(batch(30, 0), &mut rng);
        assert_eq!(m.len(), 30);
        assert!(!m.is_full());
        m.integrate(batch(30, 1), &mut rng);
        // Only 20 slots remained.
        assert_eq!(m.len(), 50);
        assert!(m.is_full());
    }

    #[test]
    fn replacement_keeps_size_constant() {
        let mut m = ReplayMemory::new(40);
        let mut rng = Rng::seed_from(2);
        for run in 0..10 {
            m.integrate(batch(40, run), &mut rng);
            assert!(m.len() <= 40);
        }
        assert_eq!(m.len(), 40);
    }

    #[test]
    fn h_shrinks_with_run_count() {
        // After many runs, h = M_size/i becomes small, so late batches
        // displace only a few items — old batches stay represented.
        let mut m = ReplayMemory::new(100);
        let mut rng = Rng::seed_from(3);
        for run in 0..50 {
            m.integrate(batch(100, run), &mut rng);
        }
        // Expected survivors from the first five batches ≈ 13 of 100 under
        // Algorithm 1's h = M_size/i decay; a plain FIFO would leave zero.
        let from_first_runs = m.items().iter().filter(|item| item.label < 5).count();
        assert!(
            from_first_runs >= 5,
            "early batches evicted too aggressively: {from_first_runs} left"
        );
    }

    #[test]
    fn steady_state_mixes_many_batches() {
        let mut m = ReplayMemory::new(100);
        let mut rng = Rng::seed_from(4);
        for run in 0..30 {
            m.integrate(batch(100, run), &mut rng);
        }
        let distinct: std::collections::BTreeSet<usize> =
            m.items().iter().map(|i| i.label).collect();
        assert!(
            distinct.len() >= 8,
            "memory should mix many batches, got {distinct:?}"
        );
    }

    #[test]
    fn empty_batch_only_ticks_counter() {
        let mut m = ReplayMemory::new(10);
        let mut rng = Rng::seed_from(5);
        m.integrate(Vec::new(), &mut rng);
        assert_eq!(m.runs(), 1);
        assert!(m.is_empty());
    }

    #[test]
    fn overflowing_first_batch_is_subsampled() {
        let mut m = ReplayMemory::new(10);
        let mut rng = Rng::seed_from(6);
        m.integrate(batch(25, 0), &mut rng);
        assert_eq!(m.len(), 10);
    }

    #[test]
    fn sample_returns_distinct_items() {
        let mut m = ReplayMemory::new(20);
        let mut rng = Rng::seed_from(7);
        m.integrate(batch(20, 0), &mut rng);
        let s = m.sample(8, &mut rng);
        assert_eq!(s.len(), 8);
        let s = m.sample(100, &mut rng);
        assert_eq!(s.len(), 20, "cannot sample more than stored");
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = ReplayMemory::new(10);
        let mut rng = Rng::seed_from(8);
        m.integrate(batch(10, 0), &mut rng);
        m.reset();
        assert!(m.is_empty());
        assert_eq!(m.runs(), 0);
    }

    #[test]
    #[should_panic(expected = "replay memory capacity must be positive")]
    fn zero_capacity_rejected() {
        ReplayMemory::new(0);
    }
}
