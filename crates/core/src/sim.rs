//! The deterministic edge-cloud simulation engine.
//!
//! [`Simulation::run`] plays a synthetic video stream frame by frame at
//! 30 fps through a chosen [`Strategy`], exercising the real components:
//! the student genuinely infers and trains, the teacher genuinely labels,
//! the link genuinely bills every byte, and the controller genuinely moves
//! the sampling rate. The resulting [`SimReport`] carries every quantity
//! the paper's tables and figures report.

use crate::cloud::{CloudConfig, CloudServer, LabelFate};
use crate::error::SimError;
use crate::resilience::{BreakerState, EdgeResilience, ResilienceConfig, ResilienceReport};
use crate::strategy::Strategy;
use crate::trainer::{AdaptiveTrainer, FreezePolicy, ReplayPlacement, TrainerConfig};
use serde::Serialize;
use shoggoth_compute::training::{training_time, TrainingPlan};
use shoggoth_compute::{jetson_tx2, v100, Contention, DeviceProfile};
use shoggoth_metrics::map::{average_iou, frame_map_at_05, map_at_05, FrameEval};
use shoggoth_metrics::FpsTracker;
use shoggoth_models::{
    Detector, LabeledSample, StudentConfig, StudentDetector, TeacherConfig, TeacherDetector,
};
use shoggoth_net::{Codec, FrameGroupStats, Link, LinkConfig, Message, SendOutcome};
use shoggoth_telemetry::{BreakerPhase, Event, NoopRecorder, Record, Recorder, TelemetrySummary};
use shoggoth_util::Rng;
use shoggoth_video::{Frame, StreamConfig};

/// Full configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The video stream to play.
    pub stream: StreamConfig,
    /// The strategy under test.
    pub strategy: Strategy,
    /// Edge adaptive-training parameters.
    pub trainer: TrainerConfig,
    /// Cloud labeling / controller parameters.
    pub cloud: CloudConfig,
    /// Edge ↔ cloud link.
    pub link: LinkConfig,
    /// Edge failure management: upload timeouts, retransmission, and the
    /// uplink circuit breaker. [`ResilienceConfig::disabled`] reproduces
    /// the fire-and-forget behavior of earlier revisions.
    pub resilience: ResilienceConfig,
    /// Codec used for frame uploads.
    pub codec: Codec,
    /// GPU contention model on the edge device.
    pub contention: Contention,
    /// Edge device profile (wall-clock model).
    pub edge_device: DeviceProfile,
    /// Cloud device profile (AMS training wall-clock).
    pub cloud_device: DeviceProfile,
    /// Sampled frames per upload chunk. The edge buffers this many sampled
    /// frames, H.264-encodes the buffer (1–3 s in the paper) and ships it;
    /// the cloud labels each chunk on arrival and updates the sampling
    /// rate, while the edge pools labeled samples until a full training
    /// batch ([`TrainerConfig::batch_frames`]) has accumulated.
    pub upload_chunk_frames: usize,
    /// Confidence threshold used for the edge's estimated-accuracy
    /// signal α (a prediction counts as "accurate" when its posterior
    /// clears this). Deliberately stricter than the 0.5 labeling
    /// threshold: the micro-student's argmax posterior over a handful of
    /// classes is rarely below 0.5, so a 0.5 cut would saturate α at 1.
    pub alpha_conf_threshold: f32,
    /// Modeled size of one AMS model update on the downlink. Our
    /// stand-in student is a micro-MLP, but AMS ships the *real*
    /// YOLOv4-ResNet18 student (compressed deltas on the order of a
    /// megabyte), so the byte accounting uses this paper-scale figure.
    pub ams_update_bytes: u64,
    /// Student initialization / pre-training seed.
    pub student_seed: u64,
    /// Teacher initialization / pre-training seed.
    pub teacher_seed: u64,
    /// Simulation-event seed.
    pub sim_seed: u64,
    /// Use the small `quick()` model configurations (for tests).
    pub quick_models: bool,
}

impl SimConfig {
    /// Paper-scaled defaults around a stream.
    pub fn new(stream: StreamConfig) -> Self {
        Self {
            stream,
            strategy: Strategy::Shoggoth,
            trainer: TrainerConfig::paper_scaled(),
            cloud: CloudConfig::default(),
            link: LinkConfig::cellular(),
            resilience: ResilienceConfig::standard(),
            codec: Codec::h264_like(),
            contention: Contention::default(),
            edge_device: jetson_tx2(),
            cloud_device: v100(),
            upload_chunk_frames: 10,
            alpha_conf_threshold: 0.8,
            ams_update_bytes: 1_200_000,
            student_seed: 1,
            teacher_seed: 2,
            sim_seed: 3,
            quick_models: false,
        }
    }

    /// Small models and short sessions, for tests and examples.
    pub fn quick(stream: StreamConfig) -> Self {
        Self {
            trainer: TrainerConfig::quick(),
            upload_chunk_frames: 4,
            quick_models: true,
            ..Self::new(stream)
        }
    }
}

/// Everything one simulation run measured.
///
/// `PartialEq` is implemented manually so determinism tests can assert
/// that two runs (e.g. serial vs. parallel fleet schedules, or
/// telemetry-on vs. telemetry-off) are bit-identical: every measured
/// field participates, while the purely observational [`telemetry`]
/// attachment is excluded.
///
/// [`telemetry`]: SimReport::telemetry
#[derive(Debug, Clone, Serialize)]
pub struct SimReport {
    /// Strategy name.
    pub strategy: String,
    /// Stream preset name.
    pub stream_name: String,
    /// Frames played.
    pub frames: u64,
    /// Stream duration in seconds.
    pub duration_secs: f64,
    /// Pooled mAP@0.5 over the whole stream (Tables I, II).
    pub map50: f64,
    /// Average IoU of matched detections (Table III).
    pub average_iou: f64,
    /// Per-frame mAP@0.5 (Figure 5's CDF input).
    pub per_frame_map: Vec<f64>,
    /// Average uplink rate in Kbps (Tables I, III).
    pub uplink_kbps: f64,
    /// Average downlink rate in Kbps (Table I).
    pub downlink_kbps: f64,
    /// Total uplink bytes.
    pub uplink_bytes: u64,
    /// Total downlink bytes.
    pub downlink_bytes: u64,
    /// Average achieved inference FPS (Figure 4 left).
    pub avg_fps: f64,
    /// Lowest instantaneous FPS (the training dip).
    pub min_fps: f64,
    /// FPS time series in 1 s buckets (Figure 4 right).
    pub fps_series: Vec<(f64, f64)>,
    /// Completed adaptive-training sessions.
    pub training_sessions: usize,
    /// Mean modeled wall-clock per session in seconds.
    pub avg_session_secs: f64,
    /// Time-averaged sampling rate in fps.
    pub avg_sampling_rate: f64,
    /// Sampling rate at the end of the run.
    pub final_sampling_rate: f64,
    /// Frames the cloud teacher ran inference on (labeling for adaptive
    /// strategies; every frame for Cloud-Only). Drives the fleet
    /// scalability analysis: cloud GPU time per device.
    pub teacher_frames: u64,
    /// Total modeled cloud GPU seconds spent training (non-zero only for
    /// AMS, whose distillation runs on the server).
    pub cloud_training_secs: f64,
    /// Resilience counters: timeouts, retransmits, breaker transitions
    /// and per-state spans, suppressed uploads, cloud label faults.
    pub resilience: ResilienceReport,
    /// Aggregated telemetry, present when the run used an aggregating
    /// recorder (see [`Simulation::run_traced`]). Excluded from equality:
    /// observation must not change what a run measured.
    pub telemetry: Option<TelemetrySummary>,
}

impl PartialEq for SimReport {
    fn eq(&self, other: &Self) -> bool {
        // Destructured so a new measured field cannot silently escape the
        // determinism contract; `telemetry` is the one deliberate omission.
        let Self {
            strategy,
            stream_name,
            frames,
            duration_secs,
            map50,
            average_iou,
            per_frame_map,
            uplink_kbps,
            downlink_kbps,
            uplink_bytes,
            downlink_bytes,
            avg_fps,
            min_fps,
            fps_series,
            training_sessions,
            avg_session_secs,
            avg_sampling_rate,
            final_sampling_rate,
            teacher_frames,
            cloud_training_secs,
            resilience,
            telemetry: _,
        } = self;
        *strategy == other.strategy
            && *stream_name == other.stream_name
            && *frames == other.frames
            && *duration_secs == other.duration_secs
            && *map50 == other.map50
            && *average_iou == other.average_iou
            && *per_frame_map == other.per_frame_map
            && *uplink_kbps == other.uplink_kbps
            && *downlink_kbps == other.downlink_kbps
            && *uplink_bytes == other.uplink_bytes
            && *downlink_bytes == other.downlink_bytes
            && *avg_fps == other.avg_fps
            && *min_fps == other.min_fps
            && *fps_series == other.fps_series
            && *training_sessions == other.training_sessions
            && *avg_session_secs == other.avg_session_secs
            && *avg_sampling_rate == other.avg_sampling_rate
            && *final_sampling_rate == other.final_sampling_rate
            && *teacher_frames == other.teacher_frames
            && *cloud_training_secs == other.cloud_training_secs
            && *resilience == other.resilience
    }
}

impl std::fmt::Display for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} on {}: {} frames over {:.1} s",
            self.strategy, self.stream_name, self.frames, self.duration_secs
        )?;
        writeln!(
            f,
            "  accuracy   mAP@0.5 {:.3}   avg IoU {:.3}",
            self.map50, self.average_iou
        )?;
        writeln!(
            f,
            "  inference  {:.1} fps avg, {:.1} fps min",
            self.avg_fps, self.min_fps
        )?;
        writeln!(
            f,
            "  network    up {:.1} Kbps ({} B)   down {:.1} Kbps ({} B)",
            self.uplink_kbps, self.uplink_bytes, self.downlink_kbps, self.downlink_bytes
        )?;
        writeln!(
            f,
            "  sampling   {:.2} fps avg, {:.2} fps final",
            self.avg_sampling_rate, self.final_sampling_rate
        )?;
        writeln!(
            f,
            "  training   {} sessions, {:.2} s avg (cloud GPU {:.1} s)",
            self.training_sessions, self.avg_session_secs, self.cloud_training_secs
        )?;
        write!(
            f,
            "  resilience {} timeouts, {} retransmits, {} breaker opens",
            self.resilience.upload_timeouts,
            self.resilience.retransmits,
            self.resilience.breaker_opens
        )?;
        if let Some(telemetry) = &self.telemetry {
            write!(
                f,
                "\n  telemetry  {} events ({} evicted), latency p-mean {:.1} ms, \
                 queue depth max {:.0}",
                telemetry.events_recorded,
                telemetry.events_dropped,
                telemetry.frame_latency_ms.mean,
                telemetry.queue_depth.max
            )?;
        }
        Ok(())
    }
}

/// The simulation engine.
#[derive(Debug)]
pub struct Simulation;

impl Simulation {
    /// Pre-trains the models a configuration calls for. Exposed so
    /// experiment harnesses can build them once and share across strategy
    /// runs (the models are cloned per run).
    pub fn build_models(config: &SimConfig) -> (StudentDetector, TeacherDetector) {
        let world = config.stream.library.world();
        let (dim, classes) = (world.feature_dim(), world.num_classes());
        let (student_cfg, teacher_cfg) = if config.quick_models {
            (
                StudentConfig::new(dim, classes, config.student_seed).quick(),
                TeacherConfig::new(dim, classes, config.teacher_seed).quick(),
            )
        } else {
            (
                StudentConfig::new(dim, classes, config.student_seed),
                TeacherConfig::new(dim, classes, config.teacher_seed),
            )
        };
        let student = StudentDetector::pretrained_with(student_cfg, &config.stream.library, 0);
        let teacher = TeacherDetector::pretrained_with(teacher_cfg, &config.stream.library);
        (student, teacher)
    }

    /// Builds models and runs the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the configuration is inconsistent or the
    /// training stack fails mid-run (see [`crate::error`]).
    pub fn run(config: &SimConfig) -> Result<SimReport, SimError> {
        let (student, teacher) = Self::build_models(config);
        Self::run_with_models(config, student, teacher)
    }

    /// Runs the simulation with externally pre-trained models.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the configuration is inconsistent or the
    /// training stack fails mid-run (see [`crate::error`]).
    pub fn run_with_models(
        config: &SimConfig,
        student: StudentDetector,
        teacher: TeacherDetector,
    ) -> Result<SimReport, SimError> {
        Self::run_traced(config, student, teacher, &mut NoopRecorder)
    }

    /// Runs the simulation while streaming stamped telemetry events into
    /// `recorder`. Recording is observation-only: the returned report is
    /// bit-identical (under `==`, which ignores the [`SimReport::telemetry`]
    /// attachment) to an untraced run of the same configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the configuration is inconsistent or the
    /// training stack fails mid-run (see [`crate::error`]).
    pub fn run_traced<R: Recorder>(
        config: &SimConfig,
        student: StudentDetector,
        teacher: TeacherDetector,
        recorder: &mut R,
    ) -> Result<SimReport, SimError> {
        Engine::new(config, student, teacher, recorder)?.run()
    }
}

/// Labels on their way back to the edge (uplink + cloud + downlink
/// latency already summed into the delivery time).
struct PendingLabels {
    deliver_at_secs: f64,
    upload_id: u64,
    frames: usize,
    samples: Vec<LabeledSample>,
}

/// Mutable state of one run, generic over its telemetry sink so the
/// no-op recorder compiles away entirely.
struct Engine<'a, R: Recorder> {
    config: &'a SimConfig,
    recorder: &'a mut R,
    /// Sim-time stamp components of the frame being played (what every
    /// emitted event is stamped with).
    now_secs: f64,
    cur_frame: u64,
    student: StudentDetector,
    cloud: CloudServer,
    trainer: AdaptiveTrainer,
    /// AMS's cloud-side shadow student and its trainer.
    shadow: Option<(StudentDetector, AdaptiveTrainer)>,
    link: Link,
    resilience: EdgeResilience,
    pending_labels: Vec<PendingLabels>,
    rng: Rng,
    num_classes: usize,

    sampling_rate: f64,
    next_sample_time: f64,
    /// Sampled frames awaiting upload (one codec chunk).
    chunk: Vec<Frame>,
    /// Labeled samples pooled toward the next training batch.
    pool: Vec<LabeledSample>,
    /// Frames contributing to the pool.
    pool_frames: usize,
    training_until: f64,
    busy_secs_window: f64,
    last_rate_update: f64,
    alpha_hits: u64,
    alpha_total: u64,

    frame_evals: Vec<FrameEval>,
    per_frame_map: Vec<f64>,
    fps: FpsTracker,
    rate_sum: f64,
    sessions: usize,
    session_secs_sum: f64,
    teacher_frames: u64,
    cloud_training_secs: f64,
}

impl<'a, R: Recorder> Engine<'a, R> {
    fn new(
        config: &'a SimConfig,
        student: StudentDetector,
        teacher: TeacherDetector,
        recorder: &'a mut R,
    ) -> Result<Self, SimError> {
        let num_classes = config.stream.library.world().num_classes();
        let cloud = CloudServer::new(teacher, num_classes, config.cloud)?;
        let initial_rate = config
            .strategy
            .fixed_rate()
            .unwrap_or(config.cloud.controller.initial_rate);
        let shadow = if config.strategy == Strategy::Ams {
            // AMS (Khani et al.) fine-tunes the *entire* student in the
            // cloud — no latent replay, full backpropagation — which is
            // exactly the paper's Table II "Input" configuration. The
            // cloud's V100 can afford it; the cost shows up as model-sized
            // downlink updates and slightly more forgetting.
            let ams_trainer = TrainerConfig {
                placement: ReplayPlacement::Input,
                freeze: FreezePolicy::FullyTrainable,
                // AMS keeps only a recent-frame window, not a reservoir
                // replay memory — a capacity of one disables replay.
                replay_capacity: 1,
                ..config.trainer.clone()
            };
            Some((student.clone(), AdaptiveTrainer::new(ams_trainer)))
        } else {
            None
        };
        Ok(Self {
            trainer: AdaptiveTrainer::new(config.trainer.clone()),
            link: Link::new(config.link.clone())?,
            resilience: EdgeResilience::new(config.resilience)?,
            pending_labels: Vec::new(),
            rng: Rng::seed_from(config.sim_seed ^ 0x53_49_4d), // "SIM"
            sampling_rate: initial_rate,
            next_sample_time: 0.0,
            chunk: Vec::new(),
            pool: Vec::new(),
            pool_frames: 0,
            training_until: f64::NEG_INFINITY,
            busy_secs_window: 0.0,
            last_rate_update: 0.0,
            alpha_hits: 0,
            alpha_total: 0,
            frame_evals: Vec::new(),
            per_frame_map: Vec::new(),
            fps: FpsTracker::new(),
            rate_sum: 0.0,
            sessions: 0,
            session_secs_sum: 0.0,
            teacher_frames: 0,
            cloud_training_secs: 0.0,
            config,
            recorder,
            now_secs: 0.0,
            cur_frame: 0,
            student,
            cloud,
            shadow,
            num_classes,
        })
    }

    /// Stamps and records one event at the current frame's sim time.
    fn rec(&mut self, event: Event) {
        self.recorder
            .record(Record::new(self.now_secs, self.cur_frame, event));
    }

    /// The telemetry mirror of a breaker state.
    fn phase(state: BreakerState) -> BreakerPhase {
        match state {
            BreakerState::Closed => BreakerPhase::Closed,
            BreakerState::Open => BreakerPhase::Open,
            BreakerState::HalfOpen => BreakerPhase::HalfOpen,
        }
    }

    /// Emits a `BreakerTransition` if the breaker left `before` during the
    /// maintenance step that just ran.
    fn trace_breaker(&mut self, before: BreakerState) {
        let after = self.resilience.state();
        if after != before {
            self.rec(Event::BreakerTransition {
                from: Self::phase(before),
                to: Self::phase(after),
            });
        }
    }

    fn run(mut self) -> Result<SimReport, SimError> {
        let strategy = self.config.strategy;
        let stream = self.config.stream.build();
        let fps_cap = self.config.edge_device.idle_inference_fps;
        let mut frames_played = 0u64;

        for frame in stream {
            let t = frame.timestamp;
            frames_played += 1;
            self.now_secs = t;
            self.cur_frame = frame.index;

            // Achieved inference rate under training contention.
            let training_active = strategy.trains_on_edge() && t < self.training_until;
            let fps_now = self
                .config
                .contention
                .inference_fps(fps_cap, training_active);
            self.fps.record(t, fps_now);
            self.rate_sum += self.effective_rate();

            // System inference output for this frame.
            let detections = match strategy {
                Strategy::CloudOnly => self.cloud_only_frame(&frame),
                _ => self.student.detect(&frame),
            };

            // Estimated-accuracy bookkeeping (the α metric).
            let theta = self.config.alpha_conf_threshold;
            for d in &detections {
                self.alpha_total += 1;
                if d.confidence >= theta {
                    self.alpha_hits += 1;
                }
            }

            // Resilience maintenance: matured label deliveries, upload
            // timeouts, the breaker clock, and retransmits whose backoff
            // elapsed (the in-order sequence is the determinism contract).
            if strategy.uses_sampling() {
                let before = self.resilience.state();
                self.deliver_labels(t);
                self.trace_breaker(before);
                let before = self.resilience.state();
                let timeouts = self.resilience.expire(t, &mut self.rng);
                for timeout in timeouts {
                    self.rec(Event::UploadTimedOut {
                        attempt: timeout.attempt,
                        probe: timeout.probe,
                        requeued: timeout.requeued,
                    });
                }
                self.trace_breaker(before);
                let before = self.resilience.state();
                self.resilience.poll(t);
                self.trace_breaker(before);
                while let Some(q) = self.resilience.take_ready(t) {
                    self.transmit_chunk(t, q.frames, q.attempt, false);
                }
            }

            // A half-open breaker probes as soon as it may: one
            // single-frame chunk tests the link, and no further probe
            // launches until this one times out or is acknowledged.
            if strategy.uses_sampling()
                && self.resilience.state() == BreakerState::HalfOpen
                && !self.resilience.probe_in_flight()
            {
                self.transmit_chunk(t, vec![frame.clone()], 1, true);
            }

            // Frame sampling toward the upload chunk. An open breaker
            // suspends the uplink: frames are still sampled (at the
            // controller's outage floor) but full chunks are counted and
            // discarded instead of transmitted; the probe machinery above
            // owns the uplink while half-open.
            if strategy.uses_sampling() && t >= self.next_sample_time {
                self.next_sample_time = t + 1.0 / self.effective_rate().max(1e-6);
                match self.resilience.state() {
                    BreakerState::Closed => {
                        self.chunk.push(frame.clone());
                        self.rec(Event::FrameSampled {
                            chunk_len: self.chunk.len() as u32,
                            breaker: BreakerPhase::Closed,
                        });
                        if self.chunk.len() >= self.config.upload_chunk_frames {
                            self.upload_chunk(t);
                        }
                    }
                    BreakerState::Open => {
                        self.chunk.push(frame.clone());
                        self.rec(Event::FrameSampled {
                            chunk_len: self.chunk.len() as u32,
                            breaker: BreakerPhase::Open,
                        });
                        if self.chunk.len() >= self.config.upload_chunk_frames {
                            self.suppress_chunk();
                        }
                    }
                    BreakerState::HalfOpen => self.rec(Event::SampleSkipped),
                }
            }

            // Adapt once a training batch has pooled. Adaptation freezes
            // while the breaker is not closed: labels cannot be fresh
            // during an outage, and training through one would burn the
            // edge GPU for nothing.
            if strategy.uses_sampling()
                && self.resilience.state() == BreakerState::Closed
                && self.pool_frames >= self.config.trainer.batch_frames
            {
                self.adapt(t)?;
            }

            // Evaluation.
            let frame_map = frame_map_at_05(
                &FrameEval {
                    detections: detections.clone(),
                    ground_truth: frame.ground_truth.clone(),
                },
                self.num_classes,
            );
            self.per_frame_map.push(frame_map);
            let detection_count = detections.len();
            self.frame_evals.push(FrameEval {
                detections,
                ground_truth: frame.ground_truth,
            });

            // The per-frame status sample: the telemetry timeline's
            // backbone, emitted once per played frame after evaluation.
            self.rec(Event::FrameStatus {
                map: frame_map,
                fps: fps_now,
                sampling_rate: self.effective_rate(),
                detections: detection_count as u32,
                uplink_bytes: self.link.uplink_bytes(),
                queue_depth: self.resilience.queue_len() as u32,
                breaker: Self::phase(self.resilience.state()),
            });
        }

        let duration = frames_played as f64 / self.config.stream.fps as f64;
        let mut bandwidth = shoggoth_metrics::BandwidthMeter::new();
        bandwidth.record_uplink(self.link.uplink_bytes());
        bandwidth.record_downlink(self.link.downlink_bytes());
        bandwidth.finish(duration);
        self.resilience.finish(duration);
        let resilience = self.resilience.report(&self.link);

        Ok(SimReport {
            resilience,
            telemetry: self.recorder.summary(),
            strategy: strategy.name(),
            stream_name: self.config.stream.name.clone(),
            frames: frames_played,
            duration_secs: duration,
            map50: map_at_05(&self.frame_evals, self.num_classes),
            average_iou: average_iou(&self.frame_evals),
            per_frame_map: self.per_frame_map,
            uplink_kbps: bandwidth.uplink_kbps(),
            downlink_kbps: bandwidth.downlink_kbps(),
            uplink_bytes: self.link.uplink_bytes(),
            downlink_bytes: self.link.downlink_bytes(),
            avg_fps: self.fps.average(),
            min_fps: self.fps.min(),
            fps_series: self.fps.series(1.0),
            training_sessions: self.sessions,
            avg_session_secs: if self.sessions == 0 {
                0.0
            } else {
                self.session_secs_sum / self.sessions as f64
            },
            avg_sampling_rate: if frames_played == 0 {
                0.0
            } else {
                self.rate_sum / frames_played as f64
            },
            final_sampling_rate: self.sampling_rate,
            teacher_frames: self.teacher_frames,
            cloud_training_secs: self.cloud_training_secs,
        })
    }

    /// Cloud-Only: upload the live frame, infer with the golden model,
    /// ship mask-bearing results back.
    fn cloud_only_frame(&mut self, frame: &Frame) -> Vec<shoggoth_models::Detection> {
        let codec = &self.config.codec;
        let gop_position = (frame.index % codec.gop.max(1) as u64) as usize;
        let encoded = if gop_position == 0 {
            codec.encode_single(frame.raw_bytes)
        } else {
            let sim = codec.similarity(1.0 / self.config.stream.fps as f64, frame.motion_magnitude);
            let ratio = codec.i_frame_ratio + (codec.p_frame_ratio - codec.i_frame_ratio) * sim;
            ((frame.raw_bytes as f64 / ratio).ceil() as u64).max(1)
        };
        self.link.send_uplink(
            frame.timestamp,
            Message::FrameBatch {
                frames: 1,
                encoded_bytes: encoded,
            },
            &mut self.rng,
        );
        self.teacher_frames += 1;
        let detections = self.cloud.infer(frame);
        self.link.send_downlink(
            frame.timestamp,
            Message::MaskResults {
                count: detections.len(),
                frame_encoded_bytes: encoded,
            },
            &mut self.rng,
        );
        detections
    }

    /// The sampling rate actually in force: the controller's rate while
    /// the breaker is closed, the outage floor while it is open or
    /// half-open (no point sampling fast into a dead link).
    fn effective_rate(&self) -> f64 {
        match self.resilience.state() {
            BreakerState::Closed => self.sampling_rate,
            BreakerState::Open | BreakerState::HalfOpen => self
                .config
                .cloud
                .controller
                .outage_floor()
                .min(self.sampling_rate),
        }
    }

    /// Delivers every matured label batch to the edge: pools the samples,
    /// acknowledges the upload, and — when a delivered probe closes the
    /// breaker — resumes normal sampling and releases queued retransmits.
    fn deliver_labels(&mut self, t: f64) {
        let mut i = 0;
        while i < self.pending_labels.len() {
            if self.pending_labels[i].deliver_at_secs > t {
                i += 1;
                continue;
            }
            let pending = self.pending_labels.remove(i);
            let outcome = self.resilience.ack(pending.upload_id, t);
            // Labels are useful even from a post-timeout straggler.
            self.pool_frames += pending.frames;
            let sample_count = pending.samples.len();
            self.pool.extend(pending.samples);
            self.rec(Event::LabelBatchArrived {
                samples: sample_count as u32,
                frames: pending.frames as u32,
                straggler: !outcome.acked,
                closed_breaker: outcome.closed_breaker,
            });
            if outcome.closed_breaker {
                // Recovery: catch up immediately instead of waiting out
                // the widened sampling interval.
                self.next_sample_time = t;
                self.resilience.release_queue(t);
            }
        }
    }

    /// Encodes and transmits one chunk of sampled frames, registering it
    /// with the in-flight tracker. On delivery the cloud labels the chunk
    /// and (cloud faults permitting) the labels travel back as a
    /// [`PendingLabels`] entry; acknowledgment happens when they arrive.
    fn transmit_chunk(&mut self, t: f64, frames: Vec<Frame>, attempt: u32, probe: bool) {
        if frames.is_empty() {
            return;
        }
        let gap = 1.0 / self.sampling_rate.max(1e-6);
        let stats: Vec<FrameGroupStats> = frames
            .iter()
            .map(|f| FrameGroupStats::new(f.raw_bytes, f.motion_magnitude))
            .collect();
        let encoded = self.config.codec.encode_group(&stats, gap);
        let message = Message::FrameBatch {
            frames: frames.len(),
            encoded_bytes: encoded,
        };
        let wire_bytes = message.bytes();
        let outcome = self.link.send_uplink_outcome(t, message, &mut self.rng);
        self.rec(Event::ChunkUploaded {
            frames: frames.len() as u32,
            bytes: wire_bytes,
            attempt,
            probe,
            lost_to_outage: matches!(outcome, SendOutcome::LostToOutage),
            latency_secs: match &outcome {
                SendOutcome::Delivered(up) => Some(up.latency_secs),
                SendOutcome::LostToOutage | SendOutcome::LostToLoss => None,
            },
        });
        let mut pending = None;
        if let Some(up) = outcome.transfer() {
            self.teacher_frames += frames.len() as u64;
            let refs: Vec<&Frame> = frames.iter().collect();
            let labels = self.cloud.label_batch(&refs);
            match self.config.cloud.faults.label_fate(&mut self.rng) {
                LabelFate::Dropped => {
                    self.resilience.note_cloud_drop();
                    self.rec(Event::CloudLabelsDropped);
                }
                LabelFate::Delivered { extra_latency_secs } => {
                    if extra_latency_secs > 0.0 {
                        self.resilience.note_slow_labels();
                        self.rec(Event::CloudLabelsSlow {
                            extra_secs: extra_latency_secs,
                        });
                    }
                    let down = self.link.send_downlink(
                        t,
                        Message::Labels {
                            samples: labels.total_samples,
                        },
                        &mut self.rng,
                    );
                    if let Some(down) = down {
                        pending = Some((
                            t + up.latency_secs + extra_latency_secs + down.latency_secs,
                            labels.per_frame.concat(),
                            frames.len(),
                        ));
                    }
                }
            }
        }
        let upload_id = self.resilience.register(t, frames, attempt, probe);
        if let Some((deliver_at_secs, samples, chunk_frames)) = pending {
            self.pending_labels.push(PendingLabels {
                deliver_at_secs,
                upload_id,
                frames: chunk_frames,
                samples,
            });
        }
    }

    /// Counts a chunk discarded because the breaker was open, crediting
    /// the uplink bytes it would have cost (frame batch + telemetry).
    fn suppress_chunk(&mut self) {
        let gap = 1.0 / self.effective_rate().max(1e-6);
        let stats: Vec<FrameGroupStats> = self
            .chunk
            .iter()
            .map(|f| FrameGroupStats::new(f.raw_bytes, f.motion_magnitude))
            .collect();
        let encoded = self.config.codec.encode_group(&stats, gap);
        let would_be_bytes = Message::FrameBatch {
            frames: self.chunk.len(),
            encoded_bytes: encoded,
        }
        .bytes()
            + Message::Telemetry.bytes();
        self.resilience.note_suppressed(would_be_bytes);
        self.rec(Event::UploadSuppressed {
            frames: self.chunk.len() as u32,
            bytes: would_be_bytes,
        });
        self.chunk.clear();
    }

    /// The chunk-upload event: encode + ship the sampled chunk (the cloud
    /// labels it on delivery; the labels pool when they arrive back), and
    /// update the sampling rate.
    fn upload_chunk(&mut self, t: f64) {
        let strategy = self.config.strategy;
        let frames = std::mem::take(&mut self.chunk);
        self.transmit_chunk(t, frames, 1, false);

        // Telemetry and rate control — once per chunk, so the controller
        // reacts within seconds of a scene change.
        self.link.send_uplink(t, Message::Telemetry, &mut self.rng);
        if strategy.adaptive_rate() {
            let alpha = if self.alpha_total == 0 {
                self.config.cloud.controller.alpha_target
            } else {
                self.alpha_hits as f64 / self.alpha_total as f64
            };
            let elapsed = (t - self.last_rate_update).max(1e-6);
            let lambda = (0.35 + self.busy_secs_window / elapsed).clamp(0.0, 1.0);
            let decision = self.cloud.update_rate_detailed(alpha, lambda);
            self.sampling_rate = decision.rate;
            self.rec(Event::RateDecision {
                phi_bar: decision.phi_bar,
                alpha: decision.alpha,
                lambda: decision.lambda,
                lambda_bar: decision.lambda_bar,
                r_phi: decision.r_phi,
                r_alpha: decision.r_alpha,
                r_lambda: decision.r_lambda,
                rate: decision.rate,
            });
            self.last_rate_update = t;
            self.busy_secs_window = 0.0;
            self.alpha_hits = 0;
            self.alpha_total = 0;
        }
    }

    /// A full training batch has pooled: adapt the student (edge-side or
    /// cloud-side per strategy).
    fn adapt(&mut self, t: f64) -> Result<(), SimError> {
        let fresh = std::mem::take(&mut self.pool);
        self.pool_frames = 0;
        match self.config.strategy {
            Strategy::Ams => self.ams_adapt(&fresh, t),
            _ => self.edge_adapt(&fresh, t),
        }
    }

    /// Edge-side adaptive training (Shoggoth / Prompt / fixed rates).
    fn edge_adapt(&mut self, fresh: &[LabeledSample], t: f64) -> Result<(), SimError> {
        let report = self
            .trainer
            .train_session(&mut self.student, fresh, &mut self.rng)?;
        let secs = self.session_wallclock(&self.config.edge_device);
        self.training_until = t + secs;
        self.busy_secs_window += secs;
        self.sessions += 1;
        self.session_secs_sum += secs;
        self.rec(Event::AdaptationStep {
            fresh_samples: report.fresh_samples as u32,
            replay_samples: report.replay_samples_used as u32,
            mini_batches: report.mini_batches as u32,
            mean_loss: report.mean_loss,
            first_batch_loss: report.first_batch_loss,
            last_batch_loss: report.last_batch_loss,
            session_secs: secs,
            cloud_side: false,
        });
        Ok(())
    }

    /// AMS: the cloud fine-tunes a shadow student and streams the full
    /// model back; edge inference never contends with training.
    fn ams_adapt(&mut self, fresh: &[LabeledSample], t: f64) -> Result<(), SimError> {
        let Some((shadow, shadow_trainer)) = self.shadow.as_mut() else {
            return Err(SimError::Invariant {
                context: "AMS runs always construct a shadow student",
            });
        };
        let report = shadow_trainer.train_session(shadow, fresh, &mut self.rng)?;
        let weights = shadow.net().export_weights();
        let arrived = self
            .link
            .send_downlink(
                t,
                Message::ModelWeights {
                    bytes: self.config.ams_update_bytes,
                },
                &mut self.rng,
            )
            .is_some();
        if arrived {
            self.student
                .net_mut()
                .import_weights(&weights)
                .map_err(|source| SimError::Tensor {
                    context: "AMS model update import",
                    source,
                })?;
        }
        self.sessions += 1;
        let secs = self.ams_session_wallclock();
        self.session_secs_sum += secs;
        self.cloud_training_secs += secs;
        self.rec(Event::AdaptationStep {
            fresh_samples: report.fresh_samples as u32,
            replay_samples: report.replay_samples_used as u32,
            mini_batches: report.mini_batches as u32,
            mean_loss: report.mean_loss,
            first_batch_loss: report.first_batch_loss,
            last_batch_loss: report.last_batch_loss,
            session_secs: secs,
            cloud_side: true,
        });
        Ok(())
    }

    /// Modeled wall-clock of one AMS cloud-side session: full fine-tuning
    /// on raw frames (input-layer data, everything trainable, nothing
    /// cacheable) at the paper's 1:5 fresh:window ratio.
    fn ams_session_wallclock(&self) -> f64 {
        let stack = shoggoth_compute::yolov4_resnet18();
        let cfg = &self.config.trainer;
        let mut plan =
            TrainingPlan::input_replay(&stack).with_batch(cfg.batch_frames, cfg.batch_frames * 5);
        plan.trainable_from = 0;
        plan.epochs = cfg.epochs;
        training_time(&stack, &plan, &self.config.cloud_device).total_secs()
    }

    /// Modeled wall-clock of one training session on a device.
    fn session_wallclock(&self, device: &DeviceProfile) -> f64 {
        let stack = shoggoth_compute::yolov4_resnet18();
        let cfg = &self.config.trainer;
        let mut plan = match cfg.placement {
            ReplayPlacement::Penultimate => TrainingPlan::paper_defaults(&stack),
            ReplayPlacement::Input => TrainingPlan::input_replay(&stack),
            ReplayPlacement::Layer(_) => TrainingPlan::conv5_4(&stack),
        };
        if cfg.replay_capacity <= 1 {
            plan = TrainingPlan::no_replay(&stack);
        }
        if matches!(
            cfg.freeze,
            FreezePolicy::SlowFront { .. } | FreezePolicy::FullyTrainable
        ) {
            plan.cache_front = false;
            plan.trainable_from = 0;
        }
        let replay_frames = if plan.replay_images == 0 {
            0
        } else {
            cfg.batch_frames * 5
        };
        plan = plan.with_batch(cfg.batch_frames, replay_frames);
        plan.epochs = cfg.epochs;
        training_time(&stack, &plan, device).total_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shoggoth_video::presets;

    fn quick_config(strategy: Strategy, frames: u64) -> SimConfig {
        let mut config = SimConfig::quick(presets::kitti(21).with_total_frames(frames));
        config.strategy = strategy;
        config
    }

    fn run_ok(config: &SimConfig) -> SimReport {
        Simulation::run(config).expect("quick config runs cleanly")
    }

    fn run_with_models_ok(
        config: &SimConfig,
        student: StudentDetector,
        teacher: TeacherDetector,
    ) -> SimReport {
        Simulation::run_with_models(config, student, teacher).expect("quick config runs cleanly")
    }

    #[test]
    fn edge_only_uses_no_network() {
        let report = run_ok(&quick_config(Strategy::EdgeOnly, 200));
        assert_eq!(report.uplink_bytes, 0);
        assert_eq!(report.downlink_bytes, 0);
        assert_eq!(report.training_sessions, 0);
        assert_eq!(report.frames, 200);
        assert!((report.avg_fps - 30.0).abs() < 1e-9);
    }

    #[test]
    fn cloud_only_is_bandwidth_hungry_and_accurate() {
        let config = quick_config(Strategy::CloudOnly, 200);
        let (student, teacher) = Simulation::build_models(&config);
        let cloud = run_with_models_ok(&config, student.clone(), teacher.clone());
        let mut edge_cfg = quick_config(Strategy::EdgeOnly, 200);
        edge_cfg.stream = config.stream.clone();
        let edge = run_with_models_ok(&edge_cfg, student, teacher);
        assert!(cloud.uplink_kbps > 50.0 * edge.uplink_kbps.max(1.0));
        assert!(cloud.downlink_kbps > cloud.uplink_kbps * 0.8);
        assert!(cloud.map50 >= edge.map50 - 0.02);
    }

    #[test]
    fn shoggoth_trains_and_bills_bandwidth() {
        let report = run_ok(&quick_config(Strategy::Shoggoth, 900));
        assert!(report.training_sessions >= 1, "no sessions in 30 s");
        assert!(report.uplink_bytes > 0);
        assert!(report.downlink_bytes > 0);
        // Downlink carries only labels: far smaller than the uplink.
        assert!(report.downlink_bytes * 5 < report.uplink_bytes);
        assert!(report.min_fps < 30.0, "training dip should appear");
    }

    #[test]
    fn ams_ships_models_downlink() {
        let config = quick_config(Strategy::Ams, 900);
        let report = run_ok(&config);
        assert!(report.training_sessions >= 1);
        // Model weights dominate the downlink.
        let shoggoth = run_ok(&quick_config(Strategy::Shoggoth, 900));
        assert!(
            report.downlink_bytes > 3 * shoggoth.downlink_bytes,
            "AMS downlink {} should dwarf Shoggoth's {}",
            report.downlink_bytes,
            shoggoth.downlink_bytes
        );
        // AMS never contends with edge inference.
        assert!((report.avg_fps - 30.0).abs() < 1e-9);
    }

    #[test]
    fn simulation_is_deterministic() {
        let config = quick_config(Strategy::Shoggoth, 400);
        let (student, teacher) = Simulation::build_models(&config);
        let a = run_with_models_ok(&config, student.clone(), teacher.clone());
        let b = run_with_models_ok(&config, student, teacher);
        assert_eq!(a.map50, b.map50);
        assert_eq!(a.uplink_bytes, b.uplink_bytes);
        assert_eq!(a.per_frame_map, b.per_frame_map);
    }

    #[test]
    fn fixed_rate_strategies_never_move_the_rate() {
        let report = run_ok(&quick_config(Strategy::FixedRate(0.4), 600));
        assert!((report.final_sampling_rate - 0.4).abs() < 1e-9);
        assert!((report.avg_sampling_rate - 0.4).abs() < 1e-9);
        let prompt = run_ok(&quick_config(Strategy::Prompt, 600));
        assert!((prompt.final_sampling_rate - 2.0).abs() < 1e-9);
    }

    #[test]
    fn higher_fixed_rates_cost_more_uplink() {
        let slow = run_ok(&quick_config(Strategy::FixedRate(0.5), 900));
        let fast = run_ok(&quick_config(Strategy::FixedRate(2.0), 900));
        assert!(
            fast.uplink_bytes > slow.uplink_bytes,
            "fast {} vs slow {}",
            fast.uplink_bytes,
            slow.uplink_bytes
        );
    }

    #[test]
    fn per_frame_map_covers_every_frame() {
        let report = run_ok(&quick_config(Strategy::EdgeOnly, 150));
        assert_eq!(report.per_frame_map.len(), 150);
        assert!(report.per_frame_map.iter().all(|m| (0.0..=1.0).contains(m)));
    }
}
