//! Adaptive training with latent replay — the paper's §III-B.
//!
//! A training session takes the freshly-labeled batch from the cloud,
//! mixes it with replay memory in a **constant original:replay proportion**
//! per mini-batch (`K·N/(N+M)` fresh, `K·M/(N+M)` replay), injects replay
//! activations at the replay layer, and backpropagates only through the
//! layers the freeze policy leaves trainable. Batch Renormalization
//! statistics in the (frozen) front keep adapting to the input statistics,
//! exactly as the paper prescribes.

use crate::error::TrainError;
use crate::replay::{ReplayItem, ReplayMemory};
use shoggoth_models::{LabeledSample, StudentDetector};
use shoggoth_tensor::{losses, Matrix, Mode, SgdConfig};
use shoggoth_util::Rng;

/// Where the replay memory attaches to the student network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayPlacement {
    /// Replay raw inputs (the paper's slow "Input" ablation).
    Input,
    /// Replay at the penultimate layer — the paper's choice ("pool").
    Penultimate,
    /// Replay at an explicit layer index (the "conv5_4"-style ablation).
    Layer(usize),
}

/// How the layers before the replay layer are treated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FreezePolicy {
    /// The paper's baseline: front weights train only on the very first
    /// mini-batch of the very first session, then their learning rate is
    /// set to 0 — while BRN statistics keep adapting (front forward passes
    /// run in train mode once per session).
    FreezeAfterFirstBatch,
    /// Front entirely frozen: weights *and* normalization statistics
    /// (front forward passes run in eval mode).
    CompletelyFrozen,
    /// Front trains at a reduced learning-rate scale every mini-batch.
    SlowFront {
        /// Learning-rate multiplier for the front layers.
        scale: f32,
    },
    /// Everything trains at full rate (no freeze).
    FullyTrainable,
}

impl FreezePolicy {
    /// Whether front weights receive gradient after warm-up.
    fn front_trains(&self) -> bool {
        matches!(
            self,
            FreezePolicy::SlowFront { .. } | FreezePolicy::FullyTrainable
        )
    }

    /// Learning-rate scale for front layers after warm-up.
    fn front_scale(&self) -> f32 {
        match self {
            FreezePolicy::SlowFront { scale } => *scale,
            FreezePolicy::FullyTrainable => 1.0,
            _ => 0.0,
        }
    }
}

/// Adaptive-training hyper-parameters.
///
/// The paper trains on 300-frame batches with 1500 replay images; the
/// simulation defaults scale the session down (60 fresh frames) so a
/// 30-minute synthetic stream contains many sessions — see DESIGN.md.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainerConfig {
    /// Sampled frames per training batch (`N`, in frames).
    pub batch_frames: usize,
    /// Replay memory capacity in samples (proposals).
    pub replay_capacity: usize,
    /// Mini-batch size `K` (the paper uses 64).
    pub mini_batch: usize,
    /// Epochs per session (the paper uses 8).
    pub epochs: usize,
    /// Learning rate of the trainable layers.
    pub learning_rate: f32,
    /// Where replay attaches.
    pub placement: ReplayPlacement,
    /// Freeze policy for the front layers.
    pub freeze: FreezePolicy,
}

impl TrainerConfig {
    /// The paper's configuration at simulation scale.
    pub fn paper_scaled() -> Self {
        Self {
            batch_frames: 60,
            replay_capacity: 3000,
            mini_batch: 64,
            epochs: 8,
            learning_rate: 0.02,
            placement: ReplayPlacement::Penultimate,
            freeze: FreezePolicy::FreezeAfterFirstBatch,
        }
    }

    /// Tiny sessions for fast tests.
    pub fn quick() -> Self {
        Self {
            batch_frames: 12,
            replay_capacity: 400,
            mini_batch: 32,
            epochs: 4,
            ..Self::paper_scaled()
        }
    }
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self::paper_scaled()
    }
}

/// Statistics of one completed training session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionReport {
    /// Fresh samples in the session.
    pub fresh_samples: usize,
    /// Replay samples drawn over all mini-batches.
    pub replay_samples_used: usize,
    /// Mini-batches executed.
    pub mini_batches: usize,
    /// Mean training loss over the session.
    pub mean_loss: f64,
    /// Loss of the session's first mini-batch (0.0 when none ran) — with
    /// [`last_batch_loss`](Self::last_batch_loss), the within-session
    /// convergence signal telemetry plots.
    pub first_batch_loss: f64,
    /// Loss of the session's final mini-batch (0.0 when none ran).
    pub last_batch_loss: f64,
}

/// The edge device's adaptive trainer: owns the replay memory and runs
/// training sessions against a [`StudentDetector`].
///
/// # Examples
///
/// ```
/// use shoggoth::trainer::{AdaptiveTrainer, TrainerConfig};
/// use shoggoth_models::{LabeledSample, StudentConfig, StudentDetector};
/// use shoggoth_util::Rng;
///
/// let mut trainer = AdaptiveTrainer::new(TrainerConfig::quick());
/// let mut student = StudentDetector::new(StudentConfig::new(8, 2, 0).quick());
/// let mut rng = Rng::seed_from(0);
/// let fresh: Vec<LabeledSample> = (0..50)
///     .map(|i| LabeledSample { features: vec![i as f32 * 0.01; 8], label: i % 3 })
///     .collect();
/// let report = trainer.train_session(&mut student, &fresh, &mut rng)?;
/// assert_eq!(report.fresh_samples, 50);
/// assert!(!trainer.memory().is_empty());
/// # Ok::<(), shoggoth::error::TrainError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveTrainer {
    config: TrainerConfig,
    memory: ReplayMemory,
    sessions: usize,
}

impl AdaptiveTrainer {
    /// Creates a trainer with an empty replay memory.
    pub fn new(config: TrainerConfig) -> Self {
        let memory = ReplayMemory::new(config.replay_capacity);
        Self {
            config,
            memory,
            sessions: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// The replay memory.
    pub fn memory(&self) -> &ReplayMemory {
        &self.memory
    }

    /// Completed sessions.
    pub fn sessions(&self) -> usize {
        self.sessions
    }

    /// Resolves the replay placement to a concrete layer index of the
    /// student network.
    pub fn resolve_replay_layer(&self, student: &StudentDetector) -> usize {
        match self.config.placement {
            ReplayPlacement::Input => 0,
            ReplayPlacement::Penultimate => student.default_replay_layer(),
            ReplayPlacement::Layer(i) => i.min(student.layer_count()),
        }
    }

    /// Runs one adaptive training session on freshly-labeled samples.
    ///
    /// Empty `fresh` batches only tick the replay-memory run counter.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Tensor`] when the tensor engine rejects an
    /// operation — a sample feature width that does not match the student
    /// network, or (with the `finite-check` feature) a poisoned tensor the
    /// session produced. The student may have taken some update steps by
    /// then; callers that need transactional behavior should train a clone.
    pub fn train_session(
        &mut self,
        student: &mut StudentDetector,
        fresh: &[LabeledSample],
        rng: &mut Rng,
    ) -> Result<SessionReport, TrainError> {
        if fresh.is_empty() {
            self.memory.integrate(Vec::new(), rng);
            self.sessions += 1;
            return Ok(SessionReport {
                fresh_samples: 0,
                replay_samples_used: 0,
                mini_batches: 0,
                mean_loss: 0.0,
                first_batch_loss: 0.0,
                last_batch_loss: 0.0,
            });
        }
        let replay_layer = self.resolve_replay_layer(student);
        let (x_fresh, labels_fresh) = LabeledSample::to_batch(fresh);
        let n = fresh.len();
        let m = self.memory.len();
        let k = self.config.mini_batch.max(2);

        // Constant original:replay proportion (§III-B training control).
        let k_fresh = if m == 0 {
            k
        } else {
            ((k * n) as f64 / (n + m) as f64).round().max(1.0) as usize
        };
        let k_replay = k.saturating_sub(k_fresh).min(m);

        let front_trains = self.config.freeze.front_trains() && replay_layer > 0;
        let warm_up_front = matches!(self.config.freeze, FreezePolicy::FreezeAfterFirstBatch)
            && self.sessions == 0
            && replay_layer > 0;

        // Frozen-front fast path: compute fresh activations once per
        // session. Train mode for the paper baseline (BRN statistics keep
        // adapting), eval mode when completely frozen.
        let cached_fresh_acts = if front_trains {
            None
        } else {
            let mode = match self.config.freeze {
                FreezePolicy::CompletelyFrozen => Mode::Eval,
                _ => Mode::Train,
            };
            Some(
                student
                    .net_mut()
                    .forward_range(0..replay_layer, &x_fresh, mode)
                    .map_err(TrainError::tensor("session-cached front forward pass"))?,
            )
        };

        let sgd = SgdConfig::new(self.config.learning_rate)
            .with_momentum(0.9)
            .with_weight_decay(1e-4);
        let layer_count = student.layer_count();
        let mut scales = vec![1.0f32; layer_count];

        let mut order: Vec<usize> = (0..n).collect();
        let mut loss_sum = 0.0f64;
        let mut first_batch_loss = 0.0f64;
        let mut last_batch_loss = 0.0f64;
        let mut mini_batches = 0usize;
        let mut replay_used = 0usize;
        let mut first_mini_batch = true;

        // Persistent scratch for the mini-batch loop: storage is reused
        // across iterations and epochs so the steady-state step allocates
        // nothing on the tensor path.
        let mut labels: Vec<usize> = Vec::with_capacity(k);
        let mut x_rows = Matrix::zeros(0, 0);
        let mut fresh_acts = Matrix::zeros(0, 0);
        let mut acts_buf = Matrix::zeros(0, 0);
        let mut grad = Matrix::zeros(0, 0);
        let mut grad_fresh = Matrix::zeros(0, 0);

        for _ in 0..self.config.epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(k_fresh) {
                // Assemble the fresh part of the mini-batch.
                labels.clear();
                labels.extend(chunk.iter().map(|&i| labels_fresh[i]));

                // Fresh activations at the replay layer.
                if let Some(cached) = &cached_fresh_acts {
                    cached.select_rows_into(chunk, &mut fresh_acts);
                } else {
                    x_fresh.select_rows_into(chunk, &mut x_rows);
                    let out = student
                        .net_mut()
                        .forward_range(0..replay_layer, &x_rows, Mode::Train)
                        .map_err(TrainError::tensor("front forward pass"))?;
                    // Hand last iteration's buffer back to the workspace the
                    // new activations came from.
                    student
                        .net_mut()
                        .recycle(std::mem::replace(&mut fresh_acts, out));
                }

                // Replay part: fresh rows first, then sampled replay
                // activations, in one contiguous batch at the replay layer.
                let replay_items = self.memory.sample(k_replay, rng);
                replay_used += replay_items.len();
                let acts: &Matrix = if replay_items.is_empty() {
                    &fresh_acts
                } else {
                    let fresh_n = fresh_acts.rows();
                    let width = fresh_acts.cols();
                    acts_buf.resize_zeroed(fresh_n + replay_items.len(), width);
                    acts_buf.as_mut_slice()[..fresh_n * width]
                        .copy_from_slice(fresh_acts.as_slice());
                    for (r, item) in replay_items.iter().enumerate() {
                        acts_buf
                            .row_mut(fresh_n + r)
                            .copy_from_slice(&item.activation);
                        labels.push(item.label);
                    }
                    &acts_buf
                };

                // Forward through the tail, loss, backward to the replay
                // layer.
                let logits = student
                    .net_mut()
                    .forward_range(replay_layer..layer_count, acts, Mode::Train)
                    .map_err(TrainError::tensor("tail forward pass"))?;
                let loss = losses::softmax_cross_entropy_into(&logits, &labels, &mut grad)
                    .map_err(TrainError::tensor("loss evaluation"))?;
                loss_sum += loss as f64;
                if mini_batches == 0 {
                    first_batch_loss = loss as f64;
                }
                last_batch_loss = loss as f64;
                student.net_mut().recycle(logits);
                // Backward through the tail; continue into the front for
                // the fresh rows only when the front is trainable (or
                // during the warm-up mini-batch). The `_discard` variants
                // skip the bottom layer's unused input-gradient matmul.
                let train_front_now = front_trains || (warm_up_front && first_mini_batch);
                if train_front_now && replay_layer > 0 {
                    let grad_at_replay = student
                        .net_mut()
                        .backward_range(replay_layer..layer_count, &grad)
                        .map_err(TrainError::tensor("tail backward pass"))?;
                    if cached_fresh_acts.is_some() {
                        // Warm-up with a frozen-front cache: run a fresh
                        // train-mode front pass so caches exist.
                        x_fresh.select_rows_into(chunk, &mut x_rows);
                        let warm = student
                            .net_mut()
                            .forward_range(0..replay_layer, &x_rows, Mode::Train)
                            .map_err(TrainError::tensor("warm-up front forward pass"))?;
                        student.net_mut().recycle(warm);
                    }
                    grad_at_replay.rows_range_into(0..chunk.len(), &mut grad_fresh);
                    student
                        .net_mut()
                        .backward_range_discard(0..replay_layer, &grad_fresh)
                        .map_err(TrainError::tensor("front backward pass"))?;
                    student.net_mut().recycle(grad_at_replay);
                } else {
                    student
                        .net_mut()
                        .backward_range_discard(replay_layer..layer_count, &grad)
                        .map_err(TrainError::tensor("tail backward pass"))?;
                }

                // Per-layer learning-rate scales.
                let front_scale = if warm_up_front && first_mini_batch {
                    1.0
                } else {
                    self.config.freeze.front_scale()
                };
                for (i, s) in scales.iter_mut().enumerate() {
                    *s = if i < replay_layer { front_scale } else { 1.0 };
                }
                student
                    .net_mut()
                    .step_scaled(&sgd, &scales)
                    .map_err(TrainError::tensor("SGD parameter step"))?;
                first_mini_batch = false;
                mini_batches += 1;
            }
        }
        if let Some(cached) = cached_fresh_acts {
            student.net_mut().recycle(cached);
        }

        // Store this batch's activations in replay memory (Algorithm 1),
        // captured with the post-session front layers. The per-item row
        // copies are the items' own storage, moved into the memory below.
        let final_acts = student
            .net_mut()
            .activation_at(replay_layer, &x_fresh)
            .map_err(TrainError::tensor("replay activation capture"))?;
        let items: Vec<ReplayItem> = (0..n)
            .map(|r| ReplayItem {
                activation: final_acts.row(r).to_vec(),
                label: labels_fresh[r],
                stored_at_run: 0,
            })
            .collect();
        student.net_mut().recycle(final_acts);
        self.memory.integrate(items, rng);
        self.sessions += 1;

        Ok(SessionReport {
            fresh_samples: n,
            replay_samples_used: replay_used,
            mini_batches,
            mean_loss: if mini_batches == 0 {
                0.0
            } else {
                loss_sum / mini_batches as f64
            },
            first_batch_loss,
            last_batch_loss,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shoggoth_models::{sample_domain_batch, StudentConfig};
    use shoggoth_video::{DomainLibrary, Illumination, Weather, WorldConfig};

    fn library() -> DomainLibrary {
        let mut lib = DomainLibrary::new(WorldConfig::new(3, 16, 30));
        lib.generate(
            "day",
            Illumination::Day,
            Weather::Sunny,
            0.0,
            vec![1.0, 1.0, 1.0],
        );
        lib.generate(
            "night",
            Illumination::Night,
            Weather::Rainy,
            0.9,
            vec![1.0, 1.0, 1.0],
        );
        lib
    }

    fn pretrained_student(lib: &DomainLibrary) -> StudentDetector {
        StudentDetector::pretrained_with(StudentConfig::new(16, 3, 40).quick(), lib, 0)
    }

    #[test]
    fn session_reports_composition() {
        let lib = library();
        let mut student = pretrained_student(&lib);
        let mut trainer = AdaptiveTrainer::new(TrainerConfig::quick());
        let mut rng = Rng::seed_from(50);
        let fresh = sample_domain_batch(lib.world(), lib.domain(1), 80, 40, &mut rng);
        let report = trainer
            .train_session(&mut student, &fresh, &mut rng)
            .expect("session trains");
        assert_eq!(report.fresh_samples, 120);
        assert!(report.mini_batches > 0);
        assert_eq!(trainer.sessions(), 1);
        assert_eq!(trainer.memory().len(), 120);
        // First session: memory was empty, so no replay could be drawn.
        assert_eq!(report.replay_samples_used, 0);
        // Second session draws replay.
        let fresh2 = sample_domain_batch(lib.world(), lib.domain(1), 80, 40, &mut rng);
        let report2 = trainer
            .train_session(&mut student, &fresh2, &mut rng)
            .expect("session trains");
        assert!(report2.replay_samples_used > 0);
    }

    #[test]
    fn adaptation_recovers_drifted_accuracy() {
        let lib = library();
        let mut student = pretrained_student(&lib);
        let mut trainer = AdaptiveTrainer::new(TrainerConfig::quick());
        let mut rng = Rng::seed_from(51);
        let eval = sample_domain_batch(lib.world(), lib.domain(1), 300, 150, &mut rng);
        let before = student.evaluate(&eval);
        for _ in 0..4 {
            let fresh = sample_domain_batch(lib.world(), lib.domain(1), 100, 50, &mut rng);
            trainer
                .train_session(&mut student, &fresh, &mut rng)
                .expect("session trains");
        }
        let after = student.evaluate(&eval);
        // The robust backbone limits the drift drop, and the night domain
        // is noise-limited, so recovery headroom is a few points.
        assert!(
            after > before + 0.02,
            "adaptive training should recover accuracy: {before} -> {after}"
        );
    }

    #[test]
    fn replay_fights_catastrophic_forgetting() {
        // The forgetting scenario the paper targets: the model adapts to a
        // new domain (night), then the scene moves on (back to day). With
        // replay, the hard-won night knowledge stays in memory and keeps
        // being rehearsed; without replay, day-only sessions overwrite it.
        let lib = library();
        let mut rng = Rng::seed_from(52);
        let night_eval = sample_domain_batch(lib.world(), lib.domain(1), 300, 150, &mut rng);

        let run = |use_replay: bool, rng: &mut Rng| {
            let mut student = pretrained_student(&lib);
            let mut config = TrainerConfig::quick();
            // Freeze normalization statistics too, so the head is the only
            // knowledge carrier and the comparison isolates replay (BRN
            // statistics always track the current domain and cannot be
            // protected by any replay scheme — the paper's aging effect).
            config.freeze = FreezePolicy::CompletelyFrozen;
            if !use_replay {
                // A memory of one sample: the fresh:replay mix rounds to
                // all-fresh, so replay is effectively disabled.
                config.replay_capacity = 1;
            }
            let mut trainer = AdaptiveTrainer::new(config);
            // Adapt to night.
            for _ in 0..4 {
                let fresh = sample_domain_batch(lib.world(), lib.domain(1), 100, 50, rng);
                trainer
                    .train_session(&mut student, &fresh, rng)
                    .expect("session trains");
            }
            // The scene returns to day for a long stretch.
            for _ in 0..8 {
                let fresh = sample_domain_batch(lib.world(), lib.domain(0), 100, 50, rng);
                trainer
                    .train_session(&mut student, &fresh, rng)
                    .expect("session trains");
            }
            student
        };
        let mut with_replay = run(true, &mut rng);
        let mut without_replay = run(false, &mut rng);
        let acc_with = with_replay.evaluate(&night_eval);
        let acc_without = without_replay.evaluate(&night_eval);
        assert!(
            acc_with > acc_without + 0.015,
            "replay should retain night-domain accuracy: with {acc_with}, without {acc_without}"
        );
    }

    #[test]
    fn frozen_front_weights_do_not_move() {
        let lib = library();
        let mut student = pretrained_student(&lib);
        let mut trainer = AdaptiveTrainer::new(TrainerConfig {
            freeze: FreezePolicy::CompletelyFrozen,
            ..TrainerConfig::quick()
        });
        let mut rng = Rng::seed_from(53);
        let before = student.net().export_weights();
        let fresh = sample_domain_batch(lib.world(), lib.domain(1), 60, 30, &mut rng);
        trainer
            .train_session(&mut student, &fresh, &mut rng)
            .expect("session trains");
        let after = student.net().export_weights();
        // The head must have trained...
        assert_ne!(before, after, "head should have trained");
        // ...but the change is confined to the head. Weight export is in
        // layer order, so everything before the head block (the quick()
        // config's head: Dense 24->16 then Dense 16->4) must be
        // bit-identical.
        let head_params = (24 * 16 + 16) + (16 * 4 + 4);
        let front_len = before.len() - head_params;
        assert_eq!(
            &before[..front_len],
            &after[..front_len],
            "front layers moved despite CompletelyFrozen"
        );
    }

    #[test]
    fn input_placement_trains_on_raw_features() {
        let lib = library();
        let mut student = pretrained_student(&lib);
        let mut trainer = AdaptiveTrainer::new(TrainerConfig {
            placement: ReplayPlacement::Input,
            ..TrainerConfig::quick()
        });
        assert_eq!(trainer.resolve_replay_layer(&student), 0);
        let mut rng = Rng::seed_from(54);
        let fresh = sample_domain_batch(lib.world(), lib.domain(1), 60, 30, &mut rng);
        let report = trainer
            .train_session(&mut student, &fresh, &mut rng)
            .expect("session trains");
        assert!(report.mini_batches > 0);
        // Memory stores raw features at input placement.
        assert_eq!(trainer.memory().items()[0].activation.len(), 16);
    }

    #[test]
    fn empty_session_is_harmless() {
        let lib = library();
        let mut student = pretrained_student(&lib);
        let mut trainer = AdaptiveTrainer::new(TrainerConfig::quick());
        let mut rng = Rng::seed_from(55);
        let report = trainer
            .train_session(&mut student, &[], &mut rng)
            .expect("empty session is fine");
        assert_eq!(report.fresh_samples, 0);
        assert_eq!(trainer.sessions(), 1);
    }

    #[test]
    fn memory_stores_penultimate_activations() {
        let lib = library();
        let mut student = pretrained_student(&lib);
        let mut trainer = AdaptiveTrainer::new(TrainerConfig::quick());
        let mut rng = Rng::seed_from(56);
        let fresh = sample_domain_batch(lib.world(), lib.domain(1), 40, 20, &mut rng);
        trainer
            .train_session(&mut student, &fresh, &mut rng)
            .expect("session trains");
        // quick() student: hidden widths [32, 24] -> penultimate width 24.
        assert_eq!(trainer.memory().items()[0].activation.len(), 24);
    }
}
