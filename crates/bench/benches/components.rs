//! Criterion micro-benchmarks of the system's hot components: replay
//! memory management, tensor training steps, the sampling-rate controller,
//! the codec model, and a full simulation slice.

// The criterion_group! macro expands to undocumented harness functions.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion};
use shoggoth::controller::{ControllerConfig, SamplingRateController};
use shoggoth::replay::{ReplayItem, ReplayMemory};
use shoggoth::sim::{SimConfig, Simulation};
use shoggoth::strategy::Strategy;
use shoggoth::trainer::{AdaptiveTrainer, TrainerConfig};
use shoggoth_models::{sample_domain_batch, StudentConfig, StudentDetector};
use shoggoth_net::{Codec, FrameGroupStats};
use shoggoth_tensor::{losses, Matrix, Mode};
use shoggoth_util::Rng;
use shoggoth_video::presets;
use std::hint::black_box;

fn bench_replay_memory(c: &mut Criterion) {
    let mut rng = Rng::seed_from(1);
    let batch: Vec<ReplayItem> = (0..600)
        .map(|i| ReplayItem {
            activation: vec![i as f32; 48],
            label: i % 5,
            stored_at_run: 0,
        })
        .collect();
    c.bench_function("replay_memory_integrate_600_into_3000", |b| {
        let mut memory = ReplayMemory::new(3000);
        b.iter(|| {
            memory.integrate(black_box(batch.clone()), &mut rng);
        });
    });
    c.bench_function("replay_memory_sample_48_of_3000", |b| {
        let mut memory = ReplayMemory::new(3000);
        for _ in 0..6 {
            memory.integrate(batch.clone(), &mut rng);
        }
        b.iter(|| black_box(memory.sample(48, &mut rng)));
    });
}

fn bench_tensor(c: &mut Criterion) {
    let mut rng = Rng::seed_from(2);
    let a = Matrix::from_fn(64, 64, |_, _| rng.next_gaussian_f32(0.0, 1.0));
    let b_mat = Matrix::from_fn(64, 64, |_, _| rng.next_gaussian_f32(0.0, 1.0));
    c.bench_function("matmul_64x64", |b| {
        b.iter(|| black_box(a.matmul(black_box(&b_mat)).expect("shapes match")));
    });

    let mut student = StudentDetector::new(StudentConfig::new(32, 4, 3));
    let x = Matrix::from_fn(64, 32, |_, _| rng.next_gaussian_f32(0.0, 1.0));
    let labels: Vec<usize> = (0..64).map(|i| i % 5).collect();
    c.bench_function("student_train_step_batch64", |b| {
        b.iter(|| {
            let logits = student
                .net_mut()
                .forward(black_box(&x), Mode::Train)
                .expect("shapes match");
            let (_, grad) =
                losses::softmax_cross_entropy(&logits, &labels).expect("labels in range");
            student.net_mut().backward(&grad).expect("cached");
        });
    });
    c.bench_function("student_inference_batch64", |b| {
        b.iter(|| {
            black_box(
                student
                    .net_mut()
                    .forward(black_box(&x), Mode::Eval)
                    .expect("shapes match"),
            )
        });
    });
}

fn bench_controller(c: &mut Criterion) {
    let mut ctl =
        SamplingRateController::new(ControllerConfig::paper_defaults()).expect("valid defaults");
    c.bench_function("controller_observe_and_update", |b| {
        b.iter(|| {
            ctl.observe_phi(black_box(0.3));
            black_box(ctl.update(black_box(0.6), black_box(0.4)))
        });
    });
}

fn bench_codec(c: &mut Criterion) {
    let codec = Codec::h264_like();
    let group = vec![FrameGroupStats::new(786_432, 0.004); 60];
    c.bench_function("codec_encode_group_60", |b| {
        b.iter(|| black_box(codec.encode_group(black_box(&group), 0.5)));
    });
}

fn bench_training_session(c: &mut Criterion) {
    let stream = presets::kitti(7).with_total_frames(60);
    let student0 =
        StudentDetector::pretrained_with(StudentConfig::new(32, 1, 5).quick(), &stream.library, 0);
    let mut rng = Rng::seed_from(6);
    let fresh = sample_domain_batch(
        stream.library.world(),
        stream.library.domain(1),
        200,
        100,
        &mut rng,
    );
    c.bench_function("adaptive_training_session_300_samples", |b| {
        b.iter(|| {
            let mut student = student0.clone();
            let mut trainer = AdaptiveTrainer::new(TrainerConfig::quick());
            trainer
                .train_session(&mut student, black_box(&fresh), &mut rng)
                .expect("bench session trains");
        });
    });
}

fn bench_simulation_slice(c: &mut Criterion) {
    let mut config = SimConfig::quick(presets::kitti(9).with_total_frames(300));
    config.strategy = Strategy::Shoggoth;
    let (student, teacher) = Simulation::build_models(&config);
    c.bench_function("simulation_300_frames_shoggoth", |b| {
        b.iter(|| {
            black_box(
                Simulation::run_with_models(black_box(&config), student.clone(), teacher.clone())
                    .expect("bench run failed"),
            )
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_replay_memory,
        bench_tensor,
        bench_controller,
        bench_codec,
        bench_training_session,
        bench_simulation_slice
);
criterion_main!(benches);
