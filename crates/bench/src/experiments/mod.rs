//! One module per table/figure of the paper's evaluation.

pub mod ablate_controller;
pub mod ablate_replay;
pub mod fig1c;
pub mod fig4;
pub mod fig5;
pub mod fleet;
pub mod table1;
pub mod table2;
pub mod table3;
