//! **Fleet scalability** (paper §IV-B, point 4 — prose claim, no table):
//! "AMS requires more computing resources for training on the cloud, so
//! Shoggoth can support more edge devices when several edge devices share
//! the same GPU server."
//!
//! For each strategy, simulates a small fleet of cameras sharing one
//! V100-class GPU and reports the cloud GPU seconds each device demands
//! (teacher inference for labeling + any cloud-side training) and the
//! number of devices one GPU can sustain.

use crate::{experiment_frames, experiment_seed, rule, write_json};
use serde::Serialize;
use shoggoth::fleet::{run_fleet, FleetConfig, FleetReport};
use shoggoth::sim::SimConfig;
use shoggoth::strategy::Strategy;
use shoggoth_video::presets;

/// Serializable result bundle.
#[derive(Debug, Serialize)]
pub struct FleetResult {
    /// Frames simulated per device.
    pub frames: u64,
    /// Experiment seed.
    pub seed: u64,
    /// Devices per fleet.
    pub devices: usize,
    /// Per-strategy fleet reports.
    pub fleets: Vec<FleetReport>,
}

/// Runs the fleet-scalability analysis.
///
/// # Panics
///
/// Aborts the experiment if a fleet run fails.
pub fn run() -> FleetResult {
    // A fleet multiplies simulation cost; use a third of the usual frames.
    let frames = (experiment_frames() / 3).max(3_000);
    let seed = experiment_seed();
    let devices = 4;

    println!("Fleet scalability — cloud GPU demand per edge device");
    println!("({devices} devices × {frames} frames on UA-DETRAC, seed {seed})\n");

    // Compute every fleet first (each run_fleet fans its devices over
    // worker threads), then print the table from the finished reports.
    let mut fleets = Vec::new();
    for strategy in [
        Strategy::Shoggoth,
        Strategy::Ams,
        Strategy::CloudOnly,
        Strategy::EdgeOnly,
    ] {
        eprintln!("[fleet] running {strategy} fleet ...");
        let mut base = SimConfig::new(presets::detrac(seed).with_total_frames(frames));
        base.strategy = strategy;
        base.student_seed = seed;
        base.teacher_seed = seed.wrapping_add(1);
        let report =
            run_fleet(&FleetConfig::new(base, devices)).expect("fleet experiment run failed");
        fleets.push(report);
    }

    rule(86);
    println!(
        "{:<12} {:>12} {:>16} {:>18} {:>20}",
        "Strategy", "mean mAP %", "GPU s (fleet)", "GPU util/device", "devices per GPU"
    );
    rule(86);
    for report in &fleets {
        let supported = if report.supported_devices_per_gpu.is_finite() {
            format!("{:.0}", report.supported_devices_per_gpu)
        } else {
            "unlimited".to_owned()
        };
        println!(
            "{:<12} {:>12.1} {:>16.1} {:>17.1}% {:>20}",
            report.strategy,
            report.mean_map50 * 100.0,
            report.cloud_gpu_secs,
            report.gpu_utilization_per_device * 100.0,
            supported,
        );
    }
    rule(86);
    println!("\n(paper: Shoggoth supports more devices per GPU than AMS because the");
    println!(" cloud only labels for Shoggoth, while AMS also trains there)");

    let result = FleetResult {
        frames,
        seed,
        devices,
        fleets,
    };
    write_json("fleet", &result);
    result
}
