//! **Figure 1(c)** (motivation): the class-distribution shift between the
//! day and night domains of the UA-DETRAC-like preset, plus the latent
//! appearance shift that makes night objects hard for the lightweight
//! model.

use crate::{experiment_seed, rule, write_json};
use serde::Serialize;
use shoggoth_video::domain::class_histogram;
use shoggoth_video::presets;

/// Serializable result bundle.
#[derive(Debug, Serialize)]
pub struct Fig1cResult {
    /// Experiment seed.
    pub seed: u64,
    /// (domain name, normalized class histogram).
    pub histograms: Vec<(String, Vec<f64>)>,
    /// (domain name, mean appearance distance of class prototypes from
    /// the source domain).
    pub appearance_shift: Vec<(String, f64)>,
}

/// Runs the Figure 1(c) analysis.
pub fn run() -> Fig1cResult {
    let seed = experiment_seed();
    let stream = presets::detrac(seed).with_total_frames(6000);
    let library = &stream.library;
    let classes = library.world().num_classes();

    // Observed class histograms: play the stream and bucket ground truth
    // per domain.
    let mut per_domain: std::collections::BTreeMap<String, Vec<usize>> =
        std::collections::BTreeMap::new();
    for frame in stream.build() {
        let entry = per_domain.entry(frame.domain_name.clone()).or_default();
        entry.extend(frame.ground_truth_classes());
    }

    println!("Figure 1(c) — class-distribution shift across domains");
    println!("(UA-DETRAC preset, seed {seed}; classes: car, bus, van, truck)\n");
    rule(66);
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10}",
        "Domain", "car", "bus", "van", "truck"
    );
    rule(66);
    let mut histograms = Vec::new();
    for (name, observed) in &per_domain {
        if name.contains("->") {
            continue; // skip transition blends
        }
        let hist = class_histogram(observed, classes);
        println!(
            "{:<18} {:>9.1}% {:>9.1}% {:>9.1}% {:>9.1}%",
            name,
            hist[0] * 100.0,
            hist[1] * 100.0,
            hist[2] * 100.0,
            hist[3] * 100.0
        );
        histograms.push((name.clone(), hist));
    }
    rule(66);

    // Appearance shift: distance of each domain's canonical class
    // appearance from the source domain's.
    let source = library.domain(0);
    let zeros = vec![0.0f32; library.world().feature_dim()];
    println!("\nLatent appearance shift from the source domain (mean over classes):");
    let mut appearance_shift = Vec::new();
    for domain in library.domains() {
        let mut total = 0.0f64;
        for class in 0..classes {
            let a = source.object_appearance(library.world(), class, &zeros);
            let b = domain.object_appearance(library.world(), class, &zeros);
            let dist: f32 = a
                .iter()
                .zip(&b)
                .map(|(x, y)| (x - y).powi(2))
                .sum::<f32>()
                .sqrt();
            total += dist as f64;
        }
        let mean = total / classes as f64;
        println!("  {:<18} {:>8.3}", domain.name, mean);
        appearance_shift.push((domain.name.clone(), mean));
    }

    let result = Fig1cResult {
        seed,
        histograms,
        appearance_shift,
    };
    write_json("fig1c", &result);
    result
}
