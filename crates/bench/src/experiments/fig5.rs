//! **Figure 5**: CDF of per-frame mAP gain versus Edge-Only, for
//! Cloud-Only, Prompt, AMS and Shoggoth.
//!
//! All strategies replay the *identical* deterministic stream, so the
//! per-frame mAP series are frame-aligned and the gain at frame `k` is
//! exactly `mAP_strategy[k] − mAP_edge_only[k]`.
//!
//! Expected shape: Cloud-Only's curve is right-most; Shoggoth dominates
//! AMS on most frames and even beats Cloud-Only on a minority of frames;
//! Prompt is the weakest adaptive strategy.

use crate::{experiment_frames, experiment_seed, rule, run_strategy, write_json, SharedModels};
use serde::Serialize;
use shoggoth::strategy::Strategy;
use shoggoth_util::stats::EmpiricalCdf;
use shoggoth_video::presets;

/// Serializable result bundle.
#[derive(Debug, Serialize)]
pub struct Fig5Result {
    /// Frames simulated.
    pub frames: u64,
    /// Experiment seed.
    pub seed: u64,
    /// Per strategy: name, CDF curve of mAP gain (x, P(gain <= x)).
    pub curves: Vec<(String, Vec<(f64, f64)>)>,
    /// Per strategy: fraction of frames with positive gain vs Edge-Only.
    pub fraction_above_zero: Vec<(String, f64)>,
    /// Fraction of frames where Shoggoth's gain exceeds AMS's gain.
    pub shoggoth_beats_ams: f64,
    /// Fraction of frames where Shoggoth's gain meets or exceeds
    /// Cloud-Only's gain.
    pub shoggoth_meets_cloud: f64,
}

/// Runs the Figure 5 experiment.
///
/// # Panics
///
/// Aborts the experiment if a simulation run fails.
pub fn run() -> Fig5Result {
    let frames = experiment_frames();
    let seed = experiment_seed();
    let stream = presets::detrac(seed).with_total_frames(frames);
    eprintln!("[fig5] pre-training models ...");
    let models = SharedModels::build(&stream, seed);

    eprintln!("[fig5] running Edge-Only baseline ...");
    let edge = run_strategy(&stream, Strategy::EdgeOnly, &models, seed);

    let others = [
        Strategy::CloudOnly,
        Strategy::Prompt,
        Strategy::Ams,
        Strategy::Shoggoth,
    ];
    let mut gains: Vec<(String, Vec<f64>)> = Vec::new();
    for strategy in others {
        eprintln!("[fig5] running {strategy} ...");
        let report = run_strategy(&stream, strategy, &models, seed);
        let gain: Vec<f64> = report
            .per_frame_map
            .iter()
            .zip(&edge.per_frame_map)
            .map(|(s, e)| s - e)
            .collect();
        gains.push((strategy.name(), gain));
    }

    println!("Figure 5 — CDF of per-frame mAP gain vs Edge-Only");
    println!("({frames} frames on UA-DETRAC, seed {seed})\n");
    rule(70);
    println!(
        "{:<12} {:>14} {:>14} {:>14} {:>12}",
        "Strategy", "P(gain>0)", "median gain", "p90 gain", "mean gain"
    );
    rule(70);

    let mut curves = Vec::new();
    let mut fraction_above_zero = Vec::new();
    for (name, gain) in &gains {
        let cdf = EmpiricalCdf::new(gain);
        let above = cdf.fraction_above(0.0);
        println!(
            "{:<12} {:>13.1}% {:>14.3} {:>14.3} {:>12.3}",
            name,
            above * 100.0,
            shoggoth_util::stats::median(gain),
            shoggoth_util::stats::percentile(gain, 90.0),
            shoggoth_util::stats::mean(gain),
        );
        curves.push((name.clone(), cdf.curve(41)));
        fraction_above_zero.push((name.clone(), above));
    }
    rule(70);

    // Pairwise dominance claims from the paper's prose.
    let find = |name: &str| {
        gains
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, g)| g.clone())
            .expect("strategy was run")
    };
    let shoggoth = find("Shoggoth");
    let ams = find("AMS");
    let cloud = find("Cloud-Only");
    let beats_ams = pairwise_ge(&shoggoth, &ams, true);
    let meets_cloud = pairwise_ge(&shoggoth, &cloud, false);
    println!(
        "\nShoggoth gain > AMS gain on {:.1}% of frames (paper: 73%)",
        beats_ams * 100.0
    );
    println!(
        "Shoggoth gain >= Cloud-Only gain on {:.1}% of frames (paper: ~20%)",
        meets_cloud * 100.0
    );

    let result = Fig5Result {
        frames,
        seed,
        curves,
        fraction_above_zero,
        shoggoth_beats_ams: beats_ams,
        shoggoth_meets_cloud: meets_cloud,
    };
    write_json("fig5", &result);
    result
}

/// Fraction of frames where `a` exceeds (`strict`) or meets (`!strict`)
/// `b`.
fn pairwise_ge(a: &[f64], b: &[f64], strict: bool) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    let count = a
        .iter()
        .zip(b)
        .filter(|(x, y)| if strict { x > y } else { x >= y })
        .count();
    count as f64 / a.len() as f64
}
