//! **Controller ablation** (design-choice bench, no paper table): sweeps
//! the sampling-rate controller's φ target and the α term to show what
//! each term of Eq. (2) contributes.
//!
//! Rows:
//! * the full controller (paper defaults),
//! * φ-only (α term disabled via `η_α = 0`),
//! * α-only (φ term disabled via `η_r = 0`),
//! * loose / tight φ targets.

use crate::{experiment_frames, experiment_seed, rule, run_strategy, write_json, SharedModels};
use serde::Serialize;
use shoggoth::controller::ControllerConfig;
use shoggoth::sim::{SimConfig, Simulation};
use shoggoth::strategy::Strategy;
use shoggoth_video::presets;

/// One ablation row.
#[derive(Debug, Serialize)]
pub struct ControllerRow {
    /// Variant label.
    pub variant: String,
    /// Measured mAP@0.5.
    pub map50: f64,
    /// Measured uplink Kbps.
    pub uplink_kbps: f64,
    /// Time-averaged sampling rate.
    pub avg_rate: f64,
    /// Training sessions completed.
    pub sessions: usize,
}

/// Serializable result bundle.
#[derive(Debug, Serialize)]
pub struct ControllerResult {
    /// Frames simulated.
    pub frames: u64,
    /// Experiment seed.
    pub seed: u64,
    /// Ablation rows.
    pub rows: Vec<ControllerRow>,
}

fn variants() -> Vec<(&'static str, ControllerConfig)> {
    let base = ControllerConfig::paper_defaults();
    vec![
        ("full (paper)", base),
        (
            "phi-only",
            ControllerConfig {
                eta_alpha: 0.0,
                ..base
            },
        ),
        ("alpha-only", ControllerConfig { eta_r: 0.0, ..base }),
        (
            "loose phi target",
            ControllerConfig {
                phi_target: base.phi_target + 0.15,
                ..base
            },
        ),
        (
            "tight phi target",
            ControllerConfig {
                phi_target: (base.phi_target - 0.15).max(0.01),
                ..base
            },
        ),
    ]
}

/// Runs the controller ablation on the UA-DETRAC preset.
///
/// # Panics
///
/// Aborts the experiment if a simulation run fails.
pub fn run() -> ControllerResult {
    let frames = experiment_frames();
    let seed = experiment_seed();
    let stream = presets::detrac(seed).with_total_frames(frames);
    eprintln!("[ablate_controller] pre-training models ...");
    let models = SharedModels::build(&stream, seed);

    println!("Controller ablation — contribution of Eq. (2)'s terms");
    println!("({frames} frames on UA-DETRAC, seed {seed})\n");
    rule(78);
    println!(
        "{:<18} {:>10} {:>14} {:>14} {:>12}",
        "Variant", "mAP (%)", "Up (Kbps)", "avg rate", "sessions"
    );
    rule(78);

    let mut rows = Vec::new();
    for (name, controller) in variants() {
        eprintln!("[ablate_controller] running {name} ...");
        let mut config = SimConfig::new(stream.clone());
        config.strategy = Strategy::Shoggoth;
        config.cloud.controller = controller;
        config.student_seed = seed;
        config.teacher_seed = seed.wrapping_add(1);
        config.sim_seed = seed.wrapping_add(2);
        let report =
            Simulation::run_with_models(&config, models.student.clone(), models.teacher.clone())
                .expect("experiment run failed");
        println!(
            "{:<18} {:>10.1} {:>14.1} {:>14.2} {:>12}",
            name,
            report.map50 * 100.0,
            report.uplink_kbps,
            report.avg_sampling_rate,
            report.training_sessions
        );
        rows.push(ControllerRow {
            variant: name.to_owned(),
            map50: report.map50,
            uplink_kbps: report.uplink_kbps,
            avg_rate: report.avg_sampling_rate,
            sessions: report.training_sessions,
        });
    }
    rule(78);

    // Also show the fixed-rate envelope for context.
    eprintln!("[ablate_controller] running fixed 0.5 fps reference ...");
    let fixed = run_strategy(&stream, Strategy::FixedRate(0.5), &models, seed);
    println!(
        "{:<18} {:>10.1} {:>14.1} {:>14.2} {:>12}",
        "fixed 0.5 (ref)",
        fixed.map50 * 100.0,
        fixed.uplink_kbps,
        fixed.avg_sampling_rate,
        fixed.training_sessions
    );

    let result = ControllerResult { frames, seed, rows };
    write_json("ablate_controller", &result);
    result
}
