//! **Table I**: Up/Down bandwidth (Kbps) and mAP@0.5 for the five
//! strategies on the three stream presets.
//!
//! Paper reference rows are printed next to the measured ones. Absolute
//! numbers differ (synthetic substrate), but the orderings and rough
//! factors should match: Cloud-Only wins mAP at enormous bandwidth;
//! Shoggoth lands within a few points of Cloud-Only with the smallest
//! downlink; AMS pays a heavy downlink for similar mAP; Edge-Only is far
//! behind.

use crate::{experiment_frames, experiment_seed, rule, run_strategies, write_json, SharedModels};
use serde::Serialize;
use shoggoth::sim::SimReport;
use shoggoth::strategy::Strategy;
use shoggoth_video::presets;

/// One strategy row of paper Table I: `(up, down, mAP %)`.
type PaperRow = (f64, f64, f64);

/// Paper Table I values: per preset, per strategy rows in the order
/// Edge-Only, Cloud-Only, Prompt, AMS, Shoggoth.
const PAPER: [(&str, [PaperRow; 5]); 3] = [
    (
        "UA-DETRAC",
        [
            (0.0, 0.0, 34.2),
            (3257.0, 3539.0, 58.9),
            (303.0, 22.0, 48.3),
            (151.0, 226.0, 51.6),
            (135.0, 10.0, 53.5),
        ],
    ),
    (
        "KITTI",
        [
            (0.0, 0.0, 56.8),
            (2184.0, 2437.0, 78.0),
            (179.0, 10.0, 71.4),
            (94.0, 203.0, 72.8),
            (91.0, 5.0, 74.7),
        ],
    ),
    (
        "Waymo Open",
        [
            (0.0, 0.0, 47.5),
            (2687.0, 2880.0, 64.7),
            (278.0, 15.0, 61.5),
            (127.0, 207.0, 59.1),
            (112.0, 8.0, 61.9),
        ],
    ),
];

/// Serializable result bundle.
#[derive(Debug, Serialize)]
pub struct Table1Result {
    /// Frames simulated per stream.
    pub frames_per_stream: u64,
    /// Experiment seed.
    pub seed: u64,
    /// One report per (stream, strategy), stream-major in Table I order.
    pub reports: Vec<SimReport>,
}

/// Runs the Table I experiment and returns all reports.
pub fn run() -> Table1Result {
    let frames = experiment_frames();
    let seed = experiment_seed();
    let strategies = Strategy::table_one();
    let mut all_reports = Vec::new();

    println!("Table I — comparison of strategies on three datasets");
    println!("({frames} frames per stream, seed {seed}; paper values in parentheses)\n");

    for (preset_idx, stream) in presets::all(seed).into_iter().enumerate() {
        let stream = stream.with_total_frames(frames);
        let (display_name, paper_rows) = PAPER[preset_idx];
        eprintln!("[table1] pre-training models for {display_name} ...");
        let models = SharedModels::build(&stream, seed);

        // Compute first (strategies fan out over worker threads), print the
        // finished rows after — output is identical to the serial order.
        eprintln!(
            "[table1] running {} strategies on {display_name} ...",
            strategies.len()
        );
        let reports = run_strategies(&stream, &strategies, &models, seed, 0);

        println!("{display_name}");
        rule(90);
        println!(
            "{:<12} {:>21} {:>21} {:>16}",
            "Strategy", "Up (Kbps)", "Down (Kbps)", "mAP@0.5 (%)"
        );
        rule(90);
        for ((strategy, report), &(p_up, p_down, p_map)) in
            strategies.iter().zip(&reports).zip(paper_rows.iter())
        {
            println!(
                "{:<12} {:>10.1} ({:>7.1}) {:>10.1} ({:>7.1}) {:>8.1} ({:>5.1})",
                strategy.name(),
                report.uplink_kbps,
                p_up,
                report.downlink_kbps,
                p_down,
                report.map50 * 100.0,
                p_map,
            );
        }
        all_reports.extend(reports);
        rule(90);
        println!();
    }

    let result = Table1Result {
        frames_per_stream: frames,
        seed,
        reports: all_reports,
    };
    write_json("table1", &result);
    result
}
