//! **Table II**: ablation of the adaptive-training design — mAP and
//! training time (forward / backward / overall seconds) for the replay
//! placement and freeze variants.
//!
//! mAP comes from genuinely running each variant through the UA-DETRAC
//! stream; training time comes from the Jetson-TX2 FLOP model at the
//! paper's session scale (300 fresh / 1500 replay images, 8 epochs).

use crate::{experiment_frames, experiment_seed, rule, write_json, SharedModels};
use serde::Serialize;
use shoggoth::sim::{SimConfig, Simulation};
use shoggoth::strategy::Strategy;
use shoggoth::trainer::{FreezePolicy, ReplayPlacement, TrainerConfig};
use shoggoth_compute::training::{training_time, TrainingPlan};
use shoggoth_compute::{jetson_tx2, yolov4_resnet18};
use shoggoth_video::presets;

/// Paper Table II reference: (method, mAP %, forward s, backward s,
/// overall s).
const PAPER: [(&str, f64, f64, f64, f64); 5] = [
    ("Ours (Baseline)", 53.5, 17.8, 0.8, 18.6),
    ("Input", 49.6, 536.2, 31.6, 567.8),
    ("Completely Freezing", 50.7, 17.8, 0.7, 18.5),
    ("Conv5_4", 52.3, 20.2, 5.8, 26.0),
    ("No Replay Memory", 45.6, 95.7, 6.2, 101.9),
];

/// One measured ablation row.
#[derive(Debug, Serialize)]
pub struct Table2Row {
    /// Variant name.
    pub method: String,
    /// Measured mAP@0.5 (fraction).
    pub map50: f64,
    /// Modeled forward seconds per paper-scale session.
    pub forward_secs: f64,
    /// Modeled backward seconds per paper-scale session.
    pub backward_secs: f64,
    /// Modeled overall seconds.
    pub overall_secs: f64,
}

/// Serializable result bundle.
#[derive(Debug, Serialize)]
pub struct Table2Result {
    /// Frames simulated.
    pub frames: u64,
    /// Experiment seed.
    pub seed: u64,
    /// Measured rows in Table II order.
    pub rows: Vec<Table2Row>,
}

/// Builds the trainer-config and wall-clock plan for each Table II variant.
fn variants() -> Vec<(&'static str, TrainerConfig, TrainingPlan)> {
    let stack = yolov4_resnet18();
    let base = TrainerConfig::paper_scaled();
    vec![
        (
            "Ours (Baseline)",
            base.clone(),
            TrainingPlan::paper_defaults(&stack),
        ),
        (
            "Input",
            TrainerConfig {
                placement: ReplayPlacement::Input,
                ..base.clone()
            },
            TrainingPlan::input_replay(&stack),
        ),
        (
            "Completely Freezing",
            TrainerConfig {
                freeze: FreezePolicy::CompletelyFrozen,
                ..base.clone()
            },
            TrainingPlan::completely_frozen(&stack),
        ),
        (
            // The conv5_4 analog on the latent student: replay before the
            // third hidden block instead of at the penultimate layer.
            "Conv5_4",
            TrainerConfig {
                placement: ReplayPlacement::Layer(7),
                ..base.clone()
            },
            TrainingPlan::conv5_4(&stack),
        ),
        (
            "No Replay Memory",
            TrainerConfig {
                replay_capacity: 1,
                ..base
            },
            TrainingPlan::no_replay(&stack),
        ),
    ]
}

/// Runs the Table II ablation.
///
/// # Panics
///
/// Aborts the experiment if a simulation run fails.
pub fn run() -> Table2Result {
    let frames = experiment_frames();
    let seed = experiment_seed();
    let stack = yolov4_resnet18();
    let device = jetson_tx2();
    let stream = presets::detrac(seed).with_total_frames(frames);
    eprintln!("[table2] pre-training models ...");
    let models = SharedModels::build(&stream, seed);

    println!("Table II — mAP and training time of adaptive-training variants");
    println!("({frames} frames on UA-DETRAC, seed {seed}; paper values in parentheses)\n");
    rule(100);
    println!(
        "{:<22} {:>16} {:>18} {:>18} {:>18}",
        "Method", "mAP (%)", "Forward (s)", "Backward (s)", "Overall (s)"
    );
    rule(100);

    let mut rows = Vec::new();
    for (i, (name, trainer_cfg, plan)) in variants().into_iter().enumerate() {
        eprintln!("[table2] running variant {name} ...");
        let mut config = SimConfig::new(stream.clone());
        config.strategy = Strategy::Shoggoth;
        config.trainer = trainer_cfg;
        config.student_seed = seed;
        config.teacher_seed = seed.wrapping_add(1);
        config.sim_seed = seed.wrapping_add(2);
        let report =
            Simulation::run_with_models(&config, models.student.clone(), models.teacher.clone())
                .expect("experiment run failed");

        let time = training_time(&stack, &plan, &device);
        let (_, p_map, p_fwd, p_bwd, p_all) = PAPER[i];
        println!(
            "{:<22} {:>7.1} ({:>5.1}) {:>9.1} ({:>6.1}) {:>9.1} ({:>6.1}) {:>9.1} ({:>6.1})",
            name,
            report.map50 * 100.0,
            p_map,
            time.forward_secs,
            p_fwd,
            time.backward_secs,
            p_bwd,
            time.total_secs(),
            p_all,
        );
        rows.push(Table2Row {
            method: name.to_owned(),
            map50: report.map50,
            forward_secs: time.forward_secs,
            backward_secs: time.backward_secs,
            overall_secs: time.total_secs(),
        });
    }
    rule(100);

    let result = Table2Result { frames, seed, rows };
    write_json("table2", &result);
    result
}

/// Convenience: run a single variant's wall-clock model (used by tests).
pub fn wallclock_of(variant: &str) -> Option<f64> {
    let stack = yolov4_resnet18();
    let device = jetson_tx2();
    variants()
        .into_iter()
        .find(|(name, _, _)| *name == variant)
        .map(|(_, _, plan)| training_time(&stack, &plan, &device).total_secs())
}
