//! **Figure 4**: average inference FPS per strategy (left), and
//! Shoggoth's FPS over time showing the training dips (right).
//!
//! Expected shape: Edge-Only / AMS / Cloud-Only hold the full 30 fps;
//! Shoggoth and Prompt lose a few fps on average because short training
//! sessions halve the rate while they run.

use crate::{experiment_frames, experiment_seed, rule, run_strategy, write_json, SharedModels};
use serde::Serialize;
use shoggoth::strategy::Strategy;
use shoggoth_video::presets;

/// Serializable result bundle.
#[derive(Debug, Serialize)]
pub struct Fig4Result {
    /// Frames simulated.
    pub frames: u64,
    /// Experiment seed.
    pub seed: u64,
    /// (strategy, average fps, minimum fps).
    pub averages: Vec<(String, f64, f64)>,
    /// Shoggoth's per-second FPS series (time s, fps).
    pub shoggoth_series: Vec<(f64, f64)>,
}

/// Runs the Figure 4 experiment.
pub fn run() -> Fig4Result {
    let frames = experiment_frames();
    let seed = experiment_seed();
    let stream = presets::detrac(seed).with_total_frames(frames);
    eprintln!("[fig4] pre-training models ...");
    let models = SharedModels::build(&stream, seed);

    println!("Figure 4 (left) — average inference FPS per strategy");
    println!("({frames} frames on UA-DETRAC, seed {seed})\n");
    rule(54);
    println!("{:<12} {:>14} {:>14}", "Strategy", "Avg FPS", "Min FPS");
    rule(54);

    let mut averages = Vec::new();
    let mut shoggoth_series = Vec::new();
    for strategy in Strategy::table_one() {
        eprintln!("[fig4] running {strategy} ...");
        let report = run_strategy(&stream, strategy, &models, seed);
        println!(
            "{:<12} {:>14.1} {:>14.1}",
            strategy.name(),
            report.avg_fps,
            report.min_fps
        );
        if strategy == Strategy::Shoggoth {
            shoggoth_series = report.fps_series.clone();
        }
        averages.push((strategy.name(), report.avg_fps, report.min_fps));
    }
    rule(54);

    println!("\nFigure 4 (right) — Shoggoth FPS over time (first dips shown)");
    println!("(paper: FPS drops from 30 to ~15 while a training session runs)\n");
    let mut shown = 0;
    let mut in_dip = false;
    for &(t, fps) in &shoggoth_series {
        let dipping = fps < 29.0;
        if dipping != in_dip {
            println!("  t = {t:7.1} s   fps -> {fps:.1}");
            in_dip = dipping;
            shown += 1;
            if shown >= 12 {
                println!("  ... ({} series points total)", shoggoth_series.len());
                break;
            }
        }
    }
    if shown == 0 {
        println!("  (no training dips occurred — stream too short for a session)");
    }

    let result = Fig4Result {
        frames,
        seed,
        averages,
        shoggoth_series,
    };
    write_json("fig4", &result);
    result
}
