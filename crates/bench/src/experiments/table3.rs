//! **Table III**: sensitivity to the frame-sampling rate — uplink
//! bandwidth and average IoU at fixed rates 0.1–2.0 fps versus adaptive
//! sampling.
//!
//! Expected shape: IoU rises with the fixed rate up to a sweet spot, then
//! falls (overfitting to a few recent frames); adaptive sampling beats
//! every fixed rate at a mid-range uplink cost.

use crate::{experiment_frames, experiment_seed, rule, run_strategy, write_json, SharedModels};
use serde::Serialize;
use shoggoth::strategy::Strategy;
use shoggoth_video::presets;

/// Paper Table III reference: (rate label, up Kbps, average IoU).
const PAPER: [(&str, f64, f64); 7] = [
    ("0.1", 19.0, 0.483),
    ("0.2", 36.0, 0.524),
    ("0.4", 61.0, 0.556),
    ("0.8", 122.0, 0.623),
    ("1.6", 249.0, 0.612),
    ("2.0", 307.0, 0.597),
    ("Adaptive", 135.0, 0.640),
];

/// One measured sensitivity row.
#[derive(Debug, Serialize)]
pub struct Table3Row {
    /// Rate label (fps or "Adaptive").
    pub rate: String,
    /// Measured uplink Kbps.
    pub uplink_kbps: f64,
    /// Measured average IoU.
    pub average_iou: f64,
    /// Measured mAP@0.5 (extra context, not in the paper's table).
    pub map50: f64,
}

/// Serializable result bundle.
#[derive(Debug, Serialize)]
pub struct Table3Result {
    /// Frames simulated.
    pub frames: u64,
    /// Experiment seed.
    pub seed: u64,
    /// Rows in Table III order.
    pub rows: Vec<Table3Row>,
}

/// Runs the Table III sensitivity sweep.
pub fn run() -> Table3Result {
    let frames = experiment_frames();
    let seed = experiment_seed();
    let stream = presets::detrac(seed).with_total_frames(frames);
    eprintln!("[table3] pre-training models ...");
    let models = SharedModels::build(&stream, seed);

    println!("Table III — sensitivity to different sampling rates");
    println!("({frames} frames on UA-DETRAC, seed {seed}; paper values in parentheses)\n");
    rule(76);
    println!(
        "{:<10} {:>22} {:>22} {:>12}",
        "Rate (fps)", "Up BW (Kbps)", "Average IoU", "mAP (%)"
    );
    rule(76);

    let strategies: Vec<(String, Strategy)> = [0.1, 0.2, 0.4, 0.8, 1.6, 2.0]
        .iter()
        .map(|&r| (format!("{r}"), Strategy::FixedRate(r)))
        .chain(std::iter::once(("Adaptive".to_owned(), Strategy::Shoggoth)))
        .collect();

    let mut rows = Vec::new();
    for (i, (label, strategy)) in strategies.into_iter().enumerate() {
        eprintln!("[table3] running rate {label} ...");
        let report = run_strategy(&stream, strategy, &models, seed);
        let (_, p_up, p_iou) = PAPER[i];
        println!(
            "{:<10} {:>11.1} ({:>6.1}) {:>12.3} ({:>5.3}) {:>10.1}",
            label,
            report.uplink_kbps,
            p_up,
            report.average_iou,
            p_iou,
            report.map50 * 100.0,
        );
        rows.push(Table3Row {
            rate: label,
            uplink_kbps: report.uplink_kbps,
            average_iou: report.average_iou,
            map50: report.map50,
        });
    }
    rule(76);

    let result = Table3Result { frames, seed, rows };
    write_json("table3", &result);
    result
}
