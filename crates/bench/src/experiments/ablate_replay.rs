//! **Replay-capacity ablation** (design-choice bench, no paper table):
//! sweeps the replay memory size around the paper's 5× ratio between
//! replay and fresh images, showing the trade-off between forgetting
//! protection (small memories) and staleness (the aging effect of very
//! large, rarely-refreshed memories).

use crate::{experiment_frames, experiment_seed, rule, write_json, SharedModels};
use serde::Serialize;
use shoggoth::sim::{SimConfig, Simulation};
use shoggoth::strategy::Strategy;
use shoggoth::trainer::TrainerConfig;
use shoggoth_video::presets;

/// One capacity row.
#[derive(Debug, Serialize)]
pub struct ReplayRow {
    /// Replay memory capacity in samples.
    pub capacity: usize,
    /// Measured mAP@0.5.
    pub map50: f64,
    /// Measured average IoU.
    pub average_iou: f64,
}

/// Serializable result bundle.
#[derive(Debug, Serialize)]
pub struct ReplayResult {
    /// Frames simulated.
    pub frames: u64,
    /// Experiment seed.
    pub seed: u64,
    /// Capacity sweep rows.
    pub rows: Vec<ReplayRow>,
}

/// Runs the replay-capacity sweep on the UA-DETRAC preset.
///
/// # Panics
///
/// Aborts the experiment if a simulation run fails.
pub fn run() -> ReplayResult {
    let frames = experiment_frames();
    let seed = experiment_seed();
    let stream = presets::detrac(seed).with_total_frames(frames);
    eprintln!("[ablate_replay] pre-training models ...");
    let models = SharedModels::build(&stream, seed);

    println!("Replay-capacity ablation (paper default ≈ 3000 samples, 5× fresh)");
    println!("({frames} frames on UA-DETRAC, seed {seed})\n");
    rule(48);
    println!("{:<12} {:>12} {:>14}", "Capacity", "mAP (%)", "avg IoU");
    rule(48);

    let mut rows = Vec::new();
    for capacity in [1usize, 300, 1000, 3000, 9000, 30000] {
        eprintln!("[ablate_replay] capacity {capacity} ...");
        let mut config = SimConfig::new(stream.clone());
        config.strategy = Strategy::Shoggoth;
        config.trainer = TrainerConfig {
            replay_capacity: capacity,
            ..TrainerConfig::paper_scaled()
        };
        config.student_seed = seed;
        config.teacher_seed = seed.wrapping_add(1);
        config.sim_seed = seed.wrapping_add(2);
        let report =
            Simulation::run_with_models(&config, models.student.clone(), models.teacher.clone())
                .expect("experiment run failed");
        println!(
            "{:<12} {:>12.1} {:>14.3}",
            capacity,
            report.map50 * 100.0,
            report.average_iou
        );
        rows.push(ReplayRow {
            capacity,
            map50: report.map50,
            average_iou: report.average_iou,
        });
    }
    rule(48);

    let result = ReplayResult { frames, seed, rows };
    write_json("ablate_replay", &result);
    result
}
