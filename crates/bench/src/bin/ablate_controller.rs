//! Regenerates the ablate_controller experiment. See
//! `shoggoth_bench::experiments::ablate_controller`.

fn main() {
    shoggoth_bench::experiments::ablate_controller::run();
}
