//! Fixed-workload throughput probe for the hot tensor path.
//!
//! Replays the pre-PR kernel recipe (allocating matmul with the
//! exact-zero skip branch, `transpose()`-then-`matmul` backward, fresh
//! matrices for every cache and gradient) next to the current
//! workspace-backed kernels, on the identical workload, and writes
//! `BENCH_tensor.json` to the current directory (`scripts/bench.sh` runs
//! it from the repo root):
//!
//! - `train_step.steps_per_sec_before` / `steps_per_sec_after` — full
//!   forward/loss/backward/update steps per second, old path vs new.
//! - `matmul[]` — ns per product for both kernels across square sizes.
//! - `simulation_frames_per_sec` — end-to-end simulated frames per second.
//! - `fleet_serial_secs` / `fleet_parallel_secs` — the same fleet run with
//!   one worker and with the auto pool.
//!
//! Probe sizes stay small (a second or two per section in release mode);
//! Criterion benches in `benches/` remain the statistically-rigorous view.

use shoggoth::fleet::{run_fleet, FleetConfig};
use shoggoth::sim::{SimConfig, Simulation};
use shoggoth::strategy::Strategy;
use shoggoth_tensor::{losses, Dense, Matrix, Mlp, Mode, Relu, SgdConfig, TensorError};
use shoggoth_util::float::is_exact_zero;
use shoggoth_util::Rng;
use shoggoth_video::presets;
use std::time::Instant;

/// The pre-PR `Matrix::matmul`: fresh output allocation and the
/// exact-zero skip branch in the inner loop.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Result<Matrix, TensorError> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            context: "naive_matmul",
            expected: (a.cols(), b.rows()),
            actual: (b.rows(), b.cols()),
        });
    }
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let v = a.get(i, k);
            if is_exact_zero(v) {
                continue;
            }
            let b_row = b.row(k);
            let out_row = out.row_mut(i);
            for (o, &x) in out_row.iter_mut().zip(b_row) {
                *o += v * x;
            }
        }
    }
    Ok(out)
}

/// The pre-PR momentum update: `v ← m·v − lr·(g + wd·p); p ← p + v`.
fn naive_update(
    params: &mut Matrix,
    grads: &Matrix,
    velocity: &mut Matrix,
    cfg: &SgdConfig,
    weight_decay: f32,
) {
    let p = params.as_mut_slice();
    let g = grads.as_slice();
    let v = velocity.as_mut_slice();
    for ((p, &g), v) in p.iter_mut().zip(g).zip(v.iter_mut()) {
        let grad = g + weight_decay * *p;
        *v = cfg.momentum * *v - cfg.learning_rate * grad;
        *p += *v;
    }
}

/// A pre-PR `Dense`: clones its input into the cache, materializes
/// transposes in backward, and allocates every intermediate.
struct NaiveDense {
    weights: Matrix,
    bias: Matrix,
    grad_weights: Matrix,
    grad_bias: Matrix,
    vel_weights: Matrix,
    vel_bias: Matrix,
    cached_input: Option<Matrix>,
}

impl NaiveDense {
    fn new(in_dim: usize, out_dim: usize, rng: &mut Rng) -> Self {
        let scale = (2.0 / in_dim as f64).sqrt();
        Self {
            weights: Matrix::from_fn(in_dim, out_dim, |_, _| rng.next_gaussian(0.0, scale) as f32),
            bias: Matrix::zeros(1, out_dim),
            grad_weights: Matrix::zeros(in_dim, out_dim),
            grad_bias: Matrix::zeros(1, out_dim),
            vel_weights: Matrix::zeros(in_dim, out_dim),
            vel_bias: Matrix::zeros(1, out_dim),
            cached_input: None,
        }
    }

    fn forward(&mut self, input: &Matrix) -> Result<Matrix, TensorError> {
        self.cached_input = Some(input.clone());
        naive_matmul(input, &self.weights)?.add_row_broadcast(&self.bias)
    }

    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix, TensorError> {
        let input = self
            .cached_input
            .take()
            .ok_or(TensorError::MissingForwardCache { layer: "dense" })?;
        self.grad_weights = naive_matmul(&input.transpose(), grad_output)?;
        self.grad_bias = grad_output.col_sum();
        naive_matmul(grad_output, &self.weights.transpose())
    }

    fn update(&mut self, cfg: &SgdConfig) {
        naive_update(
            &mut self.weights,
            &self.grad_weights,
            &mut self.vel_weights,
            cfg,
            cfg.weight_decay,
        );
        naive_update(
            &mut self.bias,
            &self.grad_bias,
            &mut self.vel_bias,
            cfg,
            0.0,
        );
    }
}

/// A pre-PR `Relu`: clones the input, builds a mask matrix, hadamards.
struct NaiveRelu {
    cached_input: Option<Matrix>,
}

impl NaiveRelu {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        self.cached_input = Some(input.clone());
        input.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix, TensorError> {
        let input = self
            .cached_input
            .take()
            .ok_or(TensorError::MissingForwardCache { layer: "relu" })?;
        let mask = input.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
        grad_output.hadamard(&mask)
    }
}

/// Workload shape shared by both training-step probes.
const BATCH: usize = 64;
const IN_DIM: usize = 64;
const HIDDEN: usize = 128;
const CLASSES: usize = 10;
const TRAIN_STEPS: usize = 400;

struct MatmulTiming {
    size: usize,
    ns_before: f64,
    ns_after: f64,
    speedup: f64,
}

struct TrainStepTiming {
    batch: usize,
    in_dim: usize,
    hidden: usize,
    classes: usize,
    steps_measured: usize,
    steps_per_sec_before: f64,
    steps_per_sec_after: f64,
    speedup: f64,
}

struct BenchReport {
    train_step: TrainStepTiming,
    matmul: Vec<MatmulTiming>,
    simulation_frames: u64,
    simulation_frames_per_sec: f64,
    fleet_serial_secs: f64,
    fleet_parallel_secs: f64,
}

impl BenchReport {
    // JSON is emitted by hand: the workspace's offline serde stand-in has
    // no real serializer, and this file must carry real numbers.
    fn to_json(&self) -> String {
        let t = &self.train_step;
        let matmul_rows: Vec<String> = self
            .matmul
            .iter()
            .map(|m| {
                format!(
                    "    {{ \"size\": {}, \"ns_before\": {:.1}, \"ns_after\": {:.1}, \"speedup\": {:.2} }}",
                    m.size, m.ns_before, m.ns_after, m.speedup
                )
            })
            .collect();
        format!(
            "{{\n  \"train_step\": {{\n    \"batch\": {}, \"in_dim\": {}, \"hidden\": {}, \"classes\": {},\n    \"steps_measured\": {},\n    \"steps_per_sec_before\": {:.1},\n    \"steps_per_sec_after\": {:.1},\n    \"speedup\": {:.2}\n  }},\n  \"matmul\": [\n{}\n  ],\n  \"simulation_frames\": {},\n  \"simulation_frames_per_sec\": {:.1},\n  \"fleet_serial_secs\": {:.3},\n  \"fleet_parallel_secs\": {:.3}\n}}",
            t.batch,
            t.in_dim,
            t.hidden,
            t.classes,
            t.steps_measured,
            t.steps_per_sec_before,
            t.steps_per_sec_after,
            t.speedup,
            matmul_rows.join(",\n"),
            self.simulation_frames,
            self.simulation_frames_per_sec,
            self.fleet_serial_secs,
            self.fleet_parallel_secs,
        )
    }
}

fn probe_matmul(rng: &mut Rng) -> Vec<MatmulTiming> {
    let mut timings = Vec::new();
    for size in [32usize, 64, 128] {
        let a = Matrix::from_fn(size, size, |_, _| rng.next_gaussian_f32(0.0, 1.0));
        let b = Matrix::from_fn(size, size, |_, _| rng.next_gaussian_f32(0.0, 1.0));
        let reps = (40_000_000 / (size * size * size)).max(10);
        let mut sink = 0.0f32;

        let t0 = Instant::now();
        for _ in 0..reps {
            if let Ok(c) = naive_matmul(&a, &b) {
                sink += c.get(0, 0);
            }
        }
        let ns_before = t0.elapsed().as_nanos() as f64 / reps as f64;

        let mut out = Matrix::zeros(size, size);
        let t0 = Instant::now();
        for _ in 0..reps {
            if a.matmul_into(&b, &mut out).is_ok() {
                sink += out.get(0, 0);
            }
        }
        let ns_after = t0.elapsed().as_nanos() as f64 / reps as f64;
        std::hint::black_box(sink);

        timings.push(MatmulTiming {
            size,
            ns_before,
            ns_after,
            speedup: ns_before / ns_after.max(1e-9),
        });
    }
    timings
}

fn probe_train_steps(rng: &mut Rng) -> Result<TrainStepTiming, TensorError> {
    let x = Matrix::from_fn(BATCH, IN_DIM, |_, _| rng.next_gaussian_f32(0.0, 1.0));
    let labels: Vec<usize> = (0..BATCH).map(|i| i % CLASSES).collect();
    let sgd = SgdConfig::new(0.01)
        .with_momentum(0.9)
        .with_weight_decay(1e-4);

    // Pre-PR path: allocating kernels, cloned caches, transposed backward.
    let mut d1 = NaiveDense::new(IN_DIM, HIDDEN, rng);
    let mut r1 = NaiveRelu { cached_input: None };
    let mut d2 = NaiveDense::new(HIDDEN, CLASSES, rng);
    let t0 = Instant::now();
    for _ in 0..TRAIN_STEPS {
        let h = d1.forward(&x)?;
        let h_act = r1.forward(&h);
        let logits = d2.forward(&h_act)?;
        let (_, grad) = losses::softmax_cross_entropy(&logits, &labels)?;
        let g_act = d2.backward(&grad)?;
        let g_h = r1.backward(&g_act)?;
        let _ = d1.backward(&g_h)?;
        d1.update(&sgd);
        d2.update(&sgd);
    }
    let steps_per_sec_before = TRAIN_STEPS as f64 / t0.elapsed().as_secs_f64();

    // Current path: fused kernels + workspace reuse + in-place loss.
    let mut net = Mlp::new(vec![
        Box::new(Dense::new(IN_DIM, HIDDEN, rng)),
        Box::new(Relu::new()),
        Box::new(Dense::new(HIDDEN, CLASSES, rng)),
    ]);
    let mut grad = Matrix::zeros(0, 0);
    let t0 = Instant::now();
    for _ in 0..TRAIN_STEPS {
        let logits = net.forward(&x, Mode::Train)?;
        losses::softmax_cross_entropy_into(&logits, &labels, &mut grad)?;
        net.recycle(logits);
        net.backward_discard(&grad)?;
        net.step(&sgd)?;
    }
    let steps_per_sec_after = TRAIN_STEPS as f64 / t0.elapsed().as_secs_f64();

    Ok(TrainStepTiming {
        batch: BATCH,
        in_dim: IN_DIM,
        hidden: HIDDEN,
        classes: CLASSES,
        steps_measured: TRAIN_STEPS,
        steps_per_sec_before,
        steps_per_sec_after,
        speedup: steps_per_sec_after / steps_per_sec_before.max(1e-9),
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = Rng::seed_from(17);

    eprintln!("[throughput] matmul kernels ...");
    let matmul = probe_matmul(&mut rng);
    eprintln!("[throughput] training steps ...");
    let train_step = probe_train_steps(&mut rng)?;

    eprintln!("[throughput] end-to-end simulation ...");
    let frames = 600u64;
    let mut sim_config = SimConfig::quick(presets::kitti(9).with_total_frames(frames));
    sim_config.strategy = Strategy::Shoggoth;
    let t0 = Instant::now();
    let report = Simulation::run(&sim_config)?;
    let simulation_frames_per_sec = report.frames as f64 / t0.elapsed().as_secs_f64();

    eprintln!("[throughput] fleet serial vs parallel ...");
    let mut base = SimConfig::quick(presets::kitti(71).with_total_frames(frames));
    base.strategy = Strategy::Shoggoth;
    let t0 = Instant::now();
    run_fleet(&FleetConfig::new(base.clone(), 2).with_threads(1))?;
    let fleet_serial_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    run_fleet(&FleetConfig::new(base, 2).with_threads(0))?;
    let fleet_parallel_secs = t0.elapsed().as_secs_f64();

    let result = BenchReport {
        train_step,
        matmul,
        simulation_frames: frames,
        simulation_frames_per_sec,
        fleet_serial_secs,
        fleet_parallel_secs,
    };
    let json = result.to_json();
    std::fs::write("BENCH_tensor.json", &json)?;
    println!("{json}");
    eprintln!("[throughput] written to BENCH_tensor.json");
    Ok(())
}
