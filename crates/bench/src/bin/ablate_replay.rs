//! Regenerates the ablate_replay experiment. See
//! `shoggoth_bench::experiments::ablate_replay`.

fn main() {
    shoggoth_bench::experiments::ablate_replay::run();
}
