//! Regenerates the paper's fig4 experiment. See
//! `shoggoth_bench::experiments::fig4`.

fn main() {
    shoggoth_bench::experiments::fig4::run();
}
