//! Regenerates the fleet experiment. See
//! `shoggoth_bench::experiments::fleet`.

fn main() {
    shoggoth_bench::experiments::fleet::run();
}
