//! Telemetry timeline artifacts: one chaos-scenario run per strategy,
//! each exported as a JSONL event trace plus a self-contained HTML/SVG
//! timeline (sampling rate, accuracy, uplink bytes, breaker-state lanes)
//! under `target/experiments/`.
//!
//! ```bash
//! cargo run --release -p shoggoth-bench --bin timeline
//! ```
//!
//! Scale via `SHOGGOTH_FRAMES` (default 2 700 = 90 s at 30 fps, enough to
//! cover the scripted outage storm) and `SHOGGOTH_SEED`.

use shoggoth::sim::{SimConfig, Simulation};
use shoggoth::strategy::Strategy;
use shoggoth::CloudFaultProfile;
use shoggoth_bench::{artifact_slug, experiment_seed, export_telemetry, rule};
use shoggoth_net::{FaultProfile, GilbertElliott, LatencyJitter, LinkConfig};
use shoggoth_telemetry::RingRecorder;
use shoggoth_video::presets;

/// Frames per run: the chaos window is 90 s, so the default is smaller
/// than the 15-minute experiment default.
fn timeline_frames() -> u64 {
    std::env::var("SHOGGOTH_FRAMES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_700)
}

/// The scripted outage storm the chaos smoke test uses: two outages,
/// a degradation episode, bursty loss, jitter, and a flaky cloud labeler.
fn chaos_config(strategy: Strategy, frames: u64, seed: u64) -> SimConfig {
    let storm = FaultProfile::none()
        .with_loss_rate(0.05)
        .with_burst(GilbertElliott::bursty())
        .with_outage(15.0, 58.0)
        .with_outage(75.0, 79.0)
        .with_degradation(60.0, 68.0, 0.5)
        .with_jitter(LatencyJitter {
            jitter_secs: 0.05,
            spike_prob: 0.1,
            spike_secs: 1.0,
        });
    let mut config = SimConfig::quick(presets::kitti(seed).with_total_frames(frames));
    config.strategy = strategy;
    config.link = LinkConfig::cellular().with_fault(storm);
    config.cloud.faults = CloudFaultProfile {
        label_drop_rate: 0.1,
        slow_label_rate: 0.2,
        slow_label_secs: 0.5,
    };
    config
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let frames = timeline_frames();
    let seed = experiment_seed().wrapping_add(28); // distinct stream from table runs
    let strategies = [
        Strategy::Shoggoth,
        Strategy::Prompt,
        Strategy::Ams,
        Strategy::FixedRate(0.5),
    ];

    println!(
        "telemetry timelines: {} strategies x {} frames through the outage storm\n",
        strategies.len(),
        frames
    );
    let models = Simulation::build_models(&chaos_config(Strategy::Shoggoth, frames, seed));

    for strategy in strategies {
        let config = chaos_config(strategy, frames, seed);
        let mut recorder = RingRecorder::default();
        let report =
            Simulation::run_traced(&config, models.0.clone(), models.1.clone(), &mut recorder)?;
        let name = format!("telemetry_{}", artifact_slug(&report.strategy));
        let title = format!(
            "{} through the outage storm ({} frames)",
            report.strategy, frames
        );
        let (jsonl, html) = export_telemetry(&name, &title, &recorder.records());
        rule(72);
        println!("{report}");
        println!("  artifacts  {} / {}", jsonl.display(), html.display());
    }
    rule(72);
    println!("\nOpen any of the .html timelines in a browser: four lanes show the");
    println!("sampling rate, per-frame accuracy, cumulative uplink, and breaker");
    println!("state, with adaptation and timeout markers on the breaker band.");
    Ok(())
}
