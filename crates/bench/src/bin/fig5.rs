//! Regenerates the paper's fig5 experiment. See
//! `shoggoth_bench::experiments::fig5`.

fn main() {
    shoggoth_bench::experiments::fig5::run();
}
