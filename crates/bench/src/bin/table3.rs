//! Regenerates the paper's table3 experiment. See
//! `shoggoth_bench::experiments::table3`.

fn main() {
    shoggoth_bench::experiments::table3::run();
}
