//! Regenerates the paper's fig1c experiment. See
//! `shoggoth_bench::experiments::fig1c`.

fn main() {
    shoggoth_bench::experiments::fig1c::run();
}
