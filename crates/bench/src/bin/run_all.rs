//! Runs every experiment in sequence: Tables I-III and Figures 1(c), 4, 5.
//!
//! Scale with `SHOGGOTH_FRAMES` (frames per stream, default 27 000) and
//! `SHOGGOTH_SEED` (default 1). Results also land as JSON under
//! `target/experiments/`.

use shoggoth_bench::experiments;

fn main() {
    println!("=== Shoggoth reproduction: full experiment suite ===\n");
    experiments::fig1c::run();
    println!("\n");
    experiments::table1::run();
    println!("\n");
    experiments::table2::run();
    println!("\n");
    experiments::table3::run();
    println!("\n");
    experiments::fig4::run();
    println!("\n");
    experiments::fig5::run();
    println!("\n");
    experiments::fleet::run();
    println!("\n");
    experiments::ablate_controller::run();
    println!("\n");
    experiments::ablate_replay::run();
    println!("\n=== done; JSON results in target/experiments/ ===");
}
