//! Runs every experiment in sequence: Tables I-III and Figures 1(c), 4, 5.
//!
//! Scale with `SHOGGOTH_FRAMES` (frames per stream, default 27 000) and
//! `SHOGGOTH_SEED` (default 1). Results also land as JSON under
//! `target/experiments/`.
//!
//! Experiments with independent simulations (Table I's strategy sweep, the
//! fleet analysis) fan out over worker threads; `SHOGGOTH_THREADS` caps
//! the pool (`SHOGGOTH_THREADS=1` forces serial). Every thread count
//! produces bit-identical tables and JSON — seeding is fixed per work item
//! and results are merged back in submission order.

use shoggoth_bench::experiments;

fn main() {
    println!("=== Shoggoth reproduction: full experiment suite ===\n");
    experiments::fig1c::run();
    println!("\n");
    experiments::table1::run();
    println!("\n");
    experiments::table2::run();
    println!("\n");
    experiments::table3::run();
    println!("\n");
    experiments::fig4::run();
    println!("\n");
    experiments::fig5::run();
    println!("\n");
    experiments::fleet::run();
    println!("\n");
    experiments::ablate_controller::run();
    println!("\n");
    experiments::ablate_replay::run();
    println!("\n=== done; JSON results in target/experiments/ ===");
}
