//! Regenerates the paper's table1 experiment. See
//! `shoggoth_bench::experiments::table1`.

fn main() {
    shoggoth_bench::experiments::table1::run();
}
