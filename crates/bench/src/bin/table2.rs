//! Regenerates the paper's table2 experiment. See
//! `shoggoth_bench::experiments::table2`.

fn main() {
    shoggoth_bench::experiments::table2::run();
}
