//! Shared harness utilities for the experiment binaries.
//!
//! Each binary (`table1`, `table2`, `table3`, `fig4`, `fig5`, `fig1c`)
//! regenerates one table or figure of the paper: it runs the simulation at
//! the configured scale, prints the paper's rows side by side with the
//! measured ones, and writes a machine-readable JSON copy under
//! `target/experiments/`.
//!
//! Scale is controlled by the `SHOGGOTH_FRAMES` environment variable
//! (frames per stream; default 27 000 = 15 minutes of 30 fps video) and
//! `SHOGGOTH_SEED` (default 1).

pub mod experiments;

use shoggoth::sim::{SimConfig, SimReport, Simulation};
use shoggoth::strategy::Strategy;
use shoggoth_models::{StudentDetector, TeacherDetector};
use shoggoth_util::parallel_map;
use shoggoth_video::StreamConfig;
use std::path::PathBuf;

/// Frames per stream for experiment runs (`SHOGGOTH_FRAMES`, default
/// 27 000 ≈ 15 minutes at 30 fps).
pub fn experiment_frames() -> u64 {
    std::env::var("SHOGGOTH_FRAMES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(27_000)
}

/// Experiment seed (`SHOGGOTH_SEED`, default 1).
pub fn experiment_seed() -> u64 {
    std::env::var("SHOGGOTH_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Directory where result JSON files land.
///
/// # Panics
///
/// Aborts if the directory cannot be created.
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir).expect("can create target/experiments");
    dir
}

/// Writes a serializable result next to the printed table.
///
/// # Panics
///
/// Aborts if the result cannot be serialized or written.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) {
    let path = out_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("results serialize");
    std::fs::write(&path, json).expect("can write result file");
    println!("\n[results written to {}]", path.display());
}

/// Writes one telemetry trace as both artifacts under
/// `target/experiments/`: `<name>.jsonl` (one stamped event per line) and
/// `<name>.html` (the self-contained SVG timeline). Returns the two paths.
///
/// # Panics
///
/// Aborts if either artifact cannot be written.
pub fn export_telemetry(
    name: &str,
    title: &str,
    records: &[shoggoth_telemetry::Record],
) -> (PathBuf, PathBuf) {
    let dir = out_dir();
    let jsonl = dir.join(format!("{name}.jsonl"));
    std::fs::write(&jsonl, shoggoth_telemetry::to_jsonl(records))
        .expect("can write telemetry JSONL");
    let html = dir.join(format!("{name}.html"));
    std::fs::write(&html, shoggoth_telemetry::render_timeline(title, records))
        .expect("can write telemetry timeline");
    (jsonl, html)
}

/// Lowercases a strategy name into a filesystem-safe artifact slug
/// (`Fixed(0.5)` → `fixed_0_5`).
pub fn artifact_slug(name: &str) -> String {
    let mut slug: String = name
        .to_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    while slug.contains("__") {
        slug = slug.replace("__", "_");
    }
    slug.trim_matches('_').to_owned()
}

/// Pre-trained models shared across the strategy runs of one stream, so
/// every strategy starts from the identical student.
pub struct SharedModels {
    /// The pre-trained edge student.
    pub student: StudentDetector,
    /// The pre-trained cloud teacher.
    pub teacher: TeacherDetector,
}

impl SharedModels {
    /// Builds the models once for a stream at full (non-quick) scale.
    pub fn build(stream: &StreamConfig, seed: u64) -> Self {
        let mut config = SimConfig::new(stream.clone());
        config.student_seed = seed;
        config.teacher_seed = seed.wrapping_add(1);
        let (student, teacher) = Simulation::build_models(&config);
        Self { student, teacher }
    }
}

/// Runs one strategy over a stream with shared models.
///
/// # Panics
///
/// Aborts if the simulation run fails.
pub fn run_strategy(
    stream: &StreamConfig,
    strategy: Strategy,
    models: &SharedModels,
    seed: u64,
) -> SimReport {
    let mut config = SimConfig::new(stream.clone());
    config.strategy = strategy;
    config.student_seed = seed;
    config.teacher_seed = seed.wrapping_add(1);
    config.sim_seed = seed.wrapping_add(2);
    Simulation::run_with_models(&config, models.student.clone(), models.teacher.clone())
        .expect("experiment run failed")
}

/// Runs several strategies over one stream with shared models, fanning the
/// independent simulations over `threads` worker threads (`0` = auto,
/// honoring `SHOGGOTH_THREADS`; `1` = serial).
///
/// Seeding happens per strategy before the fan-out and reports are merged
/// back in strategy order, so the returned vector is bit-identical for
/// every thread count.
///
/// # Panics
///
/// Aborts if any simulation run fails.
pub fn run_strategies(
    stream: &StreamConfig,
    strategies: &[Strategy],
    models: &SharedModels,
    seed: u64,
    threads: usize,
) -> Vec<SimReport> {
    let jobs: Vec<(Strategy, StudentDetector, TeacherDetector)> = strategies
        .iter()
        .map(|&strategy| (strategy, models.student.clone(), models.teacher.clone()))
        .collect();
    parallel_map(jobs, threads, |_, (strategy, student, teacher)| {
        let mut config = SimConfig::new(stream.clone());
        config.strategy = strategy;
        config.student_seed = seed;
        config.teacher_seed = seed.wrapping_add(1);
        config.sim_seed = seed.wrapping_add(2);
        Simulation::run_with_models(&config, student, teacher)
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()
    .expect("experiment run failed")
}

/// Prints a horizontal rule sized to a table width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_without_env() {
        // The env vars are unset in CI; defaults apply.
        if std::env::var("SHOGGOTH_FRAMES").is_err() {
            assert_eq!(experiment_frames(), 27_000);
        }
        if std::env::var("SHOGGOTH_SEED").is_err() {
            assert_eq!(experiment_seed(), 1);
        }
    }

    #[test]
    fn out_dir_is_creatable() {
        let dir = out_dir();
        assert!(dir.exists());
    }

    #[test]
    fn table2_wallclock_variants_keep_paper_ordering() {
        let secs = |v: &str| crate::experiments::table2::wallclock_of(v).expect("known variant");
        let ours = secs("Ours (Baseline)");
        let frozen = secs("Completely Freezing");
        let conv = secs("Conv5_4");
        let none = secs("No Replay Memory");
        let input = secs("Input");
        assert!((ours - frozen).abs() < 1e-9);
        assert!(ours < conv && conv < none && none < input);
    }

    #[test]
    fn shared_models_are_deterministic() {
        let stream = shoggoth_video::presets::kitti(2).with_total_frames(60);
        // Quick configs would be nicer but SharedModels is the full-scale
        // path; keep the stream tiny so this stays fast.
        let a = SharedModels::build(&stream, 5);
        let b = SharedModels::build(&stream, 5);
        assert_eq!(
            a.student.net().export_weights(),
            b.student.net().export_weights()
        );
    }
}
