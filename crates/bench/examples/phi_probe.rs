//! Dev probe: phi vs sampling gap per preset.
use shoggoth::controller::phi_score;
use shoggoth_models::{Detector, TeacherConfig, TeacherDetector};
use shoggoth_video::presets;

fn main() {
    for stream in [presets::detrac(1), presets::kitti(1), presets::waymo(1)] {
        let stream = stream.with_total_frames(4000);
        let lib = &stream.library;
        let w = lib.world();
        let mut teacher = TeacherDetector::pretrained_with(
            TeacherConfig::new(w.feature_dim(), w.num_classes(), 2),
            lib,
        );
        let frames: Vec<_> = stream.build().collect();
        print!("{:<12}", stream.name);
        for gap_frames in [15usize, 30, 60, 150, 300] {
            let mut phis = Vec::new();
            let mut prev: Option<Vec<_>> = None;
            for f in frames.iter().step_by(gap_frames) {
                let dets = teacher.detect(f);
                if let Some(p) = &prev {
                    phis.push(phi_score(p, &dets));
                }
                prev = Some(dets);
            }
            let mean = phis.iter().sum::<f64>() / phis.len().max(1) as f64;
            print!("  gap{gap_frames:>3}f:{mean:.2}");
        }
        println!();
    }
}
