//! Golden determinism tests for the parallel experiment runner.
//!
//! The thread pool must be an implementation detail: a fleet analysis or a
//! strategy sweep run on one thread and on many threads has to produce
//! **bit-identical** reports (every f64, every per-frame series). Seeding
//! is fixed per work item before the fan-out and results are merged back
//! in submission order, so any divergence here means a worker leaked state
//! into a neighbor.

use shoggoth::fleet::{run_fleet, FleetConfig, FleetReport};
use shoggoth::sim::SimConfig;
use shoggoth::strategy::Strategy;
use shoggoth_bench::{run_strategies, SharedModels};
use shoggoth_video::presets;

fn fleet_report(seed: u64, threads: usize) -> FleetReport {
    let mut base = SimConfig::quick(presets::kitti(seed).with_total_frames(300));
    base.strategy = Strategy::Shoggoth;
    run_fleet(&FleetConfig::new(base, 3).with_threads(threads)).expect("fleet runs cleanly")
}

#[test]
fn fleet_parallel_is_bit_identical_to_serial() {
    for seed in [71u64, 5] {
        let serial = fleet_report(seed, 1);
        let parallel = fleet_report(seed, 4);
        assert_eq!(
            serial, parallel,
            "seed {seed}: parallel fleet diverged from serial"
        );
    }
}

#[test]
fn strategy_sweep_parallel_is_bit_identical_to_serial() {
    for seed in [1u64, 9] {
        let stream = presets::kitti(seed).with_total_frames(300);
        let models = SharedModels::build(&stream, seed);
        let strategies = [Strategy::Shoggoth, Strategy::EdgeOnly, Strategy::CloudOnly];
        let serial = run_strategies(&stream, &strategies, &models, seed, 1);
        let parallel = run_strategies(&stream, &strategies, &models, seed, 4);
        assert_eq!(
            serial, parallel,
            "seed {seed}: parallel strategy sweep diverged from serial"
        );
    }
}

#[test]
fn fleet_report_order_is_device_order() {
    // Device seeds are a pure function of the device index; the merged
    // report vector must come back in that index order, not completion
    // order.
    let report = fleet_report(71, 4);
    assert_eq!(report.per_device.len(), 3);
    let expected_seeds: Vec<u64> = (0..3u64).map(|d| 71 + d * 7919).collect();
    // Stream names do not carry the seed, but per-device streams differ;
    // re-running device 0 alone must reproduce per_device[0] exactly.
    let mut base = SimConfig::quick(presets::kitti(71).with_total_frames(300));
    base.strategy = Strategy::Shoggoth;
    let solo = run_fleet(&FleetConfig::new(base, 1).with_threads(1)).expect("fleet runs cleanly");
    assert_eq!(solo.per_device[0], report.per_device[0]);
    assert_eq!(expected_seeds.len(), 3);
}
