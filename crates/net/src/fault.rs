//! Composable link-fault model: bursty loss, scheduled outages, bandwidth
//! degradation, and latency jitter.
//!
//! The seed repo injected failures with a single i.i.d. `loss_rate`, which
//! cannot express the failure modes that actually break edge-cloud
//! adaptation loops: losses arrive in *bursts* (fading, congestion),
//! connectivity disappears for whole *windows* (tunnels, handovers),
//! capacity *degrades* without vanishing, and latency *spikes*. A
//! [`FaultProfile`] composes all four, each optional, on top of the
//! baseline i.i.d. loss:
//!
//! | fault                | type                | models                          |
//! |----------------------|---------------------|---------------------------------|
//! | baseline loss        | `loss_rate`         | random independent packet loss  |
//! | bursty loss          | [`GilbertElliott`]  | fading / congestion episodes    |
//! | scheduled outage     | [`OutageWindow`]    | tunnels, handovers, blackouts   |
//! | capacity degradation | [`DegradationWindow`] | contention, rate adaptation   |
//! | latency jitter       | [`LatencyJitter`]   | queueing delay and spikes       |
//!
//! Every stochastic decision is drawn from the caller-supplied seeded
//! [`shoggoth_util::Rng`], so a chaos run is a pure function of its seed
//! and schedule. Construction-time validation rejects NaN/out-of-range
//! rates and inverted windows with a typed [`InvalidLink`] error instead
//! of silently clamping.

use serde::{Deserialize, Serialize};
use shoggoth_util::Rng;

/// A link or fault-profile configuration rejected at construction time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidLink {
    /// The configuration field that failed validation.
    pub field: &'static str,
    /// Why the value was rejected.
    pub reason: &'static str,
}

impl std::fmt::Display for InvalidLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid link configuration ({}): {}",
            self.field, self.reason
        )
    }
}

impl std::error::Error for InvalidLink {}

/// Whether `v` is a valid probability (finite, in `[0, 1]`; NaN fails).
fn unit_rate(v: f64) -> bool {
    (0.0..=1.0).contains(&v)
}

/// A two-state Gilbert–Elliott loss chain.
///
/// The link alternates between a *good* and a *bad* state; each message
/// send advances the chain by one step and then draws loss at the state's
/// rate. With `loss_bad` near one and small transition probabilities this
/// produces the long clustered loss episodes that i.i.d. loss cannot:
/// the same average loss rate concentrated into bursts that starve the
/// labeling loop for seconds at a time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliott {
    /// Per-message probability of entering the bad state from good.
    pub enter_bad: f64,
    /// Per-message probability of leaving the bad state back to good.
    pub exit_bad: f64,
    /// Loss rate while in the good state.
    pub loss_good: f64,
    /// Loss rate while in the bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// A typical bursty-cellular profile: rare 10-message-scale bursts
    /// that lose almost everything, near-lossless in between.
    pub fn bursty() -> Self {
        Self {
            enter_bad: 0.05,
            exit_bad: 0.2,
            loss_good: 0.01,
            loss_bad: 0.95,
        }
    }

    /// Validates every probability.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidLink`] if any field is NaN or outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), InvalidLink> {
        let fields = [
            ("burst.enter_bad", self.enter_bad),
            ("burst.exit_bad", self.exit_bad),
            ("burst.loss_good", self.loss_good),
            ("burst.loss_bad", self.loss_bad),
        ];
        for (field, v) in fields {
            if !unit_rate(v) {
                return Err(InvalidLink {
                    field,
                    reason: "must be a probability in [0, 1] (NaN rejected)",
                });
            }
        }
        Ok(())
    }

    /// Advances the chain one step from `bad` and returns the new state.
    pub fn step(&self, bad: bool, rng: &mut Rng) -> bool {
        if bad {
            !rng.bernoulli(self.exit_bad)
        } else {
            rng.bernoulli(self.enter_bad)
        }
    }

    /// The loss rate of the given state.
    pub fn state_loss(&self, bad: bool) -> f64 {
        if bad {
            self.loss_bad
        } else {
            self.loss_good
        }
    }
}

/// A scheduled total-connectivity outage: every message sent with
/// `start_secs <= now < end_secs` is lost, deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutageWindow {
    /// Outage start, in simulation seconds (inclusive).
    pub start_secs: f64,
    /// Outage end, in simulation seconds (exclusive).
    pub end_secs: f64,
}

impl OutageWindow {
    /// Whether the outage covers simulation time `now_secs`.
    pub fn covers(&self, now_secs: f64) -> bool {
        (self.start_secs..self.end_secs).contains(&now_secs)
    }

    /// Validates the window bounds.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidLink`] on non-finite bounds, a negative start, or
    /// an inverted/empty window (`end_secs <= start_secs`).
    pub fn validate(&self) -> Result<(), InvalidLink> {
        if !self.start_secs.is_finite() || self.start_secs < 0.0 {
            return Err(InvalidLink {
                field: "outage.start_secs",
                reason: "must be finite and non-negative",
            });
        }
        if !self.end_secs.is_finite() || self.end_secs <= self.start_secs {
            return Err(InvalidLink {
                field: "outage.end_secs",
                reason: "window must be finite and not inverted (end > start)",
            });
        }
        Ok(())
    }
}

/// A bandwidth-degradation episode: while active, both link capacities are
/// multiplied by `capacity_factor` (transfers slow down; nothing is lost).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationWindow {
    /// Episode start, in simulation seconds (inclusive).
    pub start_secs: f64,
    /// Episode end, in simulation seconds (exclusive).
    pub end_secs: f64,
    /// Capacity multiplier in `(0, 1]` while the episode is active.
    pub capacity_factor: f64,
}

impl DegradationWindow {
    /// Whether the episode covers simulation time `now_secs`.
    pub fn covers(&self, now_secs: f64) -> bool {
        (self.start_secs..self.end_secs).contains(&now_secs)
    }

    /// Validates the window bounds and factor.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidLink`] on non-finite bounds, a negative start, an
    /// inverted/empty window, or a factor outside `(0, 1]`.
    pub fn validate(&self) -> Result<(), InvalidLink> {
        if !self.start_secs.is_finite() || self.start_secs < 0.0 {
            return Err(InvalidLink {
                field: "degradation.start_secs",
                reason: "must be finite and non-negative",
            });
        }
        if !self.end_secs.is_finite() || self.end_secs <= self.start_secs {
            return Err(InvalidLink {
                field: "degradation.end_secs",
                reason: "window must be finite and not inverted (end > start)",
            });
        }
        if !self.capacity_factor.is_finite()
            || self.capacity_factor <= 0.0
            || self.capacity_factor > 1.0
        {
            return Err(InvalidLink {
                field: "degradation.capacity_factor",
                reason: "must be in (0, 1] (NaN rejected)",
            });
        }
        Ok(())
    }
}

/// Random latency perturbation on delivered messages: a uniform jitter in
/// `[0, jitter_secs)` on every transfer, plus an occasional spike of
/// `spike_secs` with probability `spike_prob`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyJitter {
    /// Maximum uniform jitter added to every delivered transfer, seconds.
    pub jitter_secs: f64,
    /// Per-message probability of a latency spike.
    pub spike_prob: f64,
    /// Extra latency of a spike, seconds.
    pub spike_secs: f64,
}

impl LatencyJitter {
    /// Validates the jitter parameters.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidLink`] on negative/non-finite durations or a
    /// `spike_prob` outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), InvalidLink> {
        if !self.jitter_secs.is_finite() || self.jitter_secs < 0.0 {
            return Err(InvalidLink {
                field: "jitter.jitter_secs",
                reason: "must be finite and non-negative",
            });
        }
        if !unit_rate(self.spike_prob) {
            return Err(InvalidLink {
                field: "jitter.spike_prob",
                reason: "must be a probability in [0, 1] (NaN rejected)",
            });
        }
        if !self.spike_secs.is_finite() || self.spike_secs < 0.0 {
            return Err(InvalidLink {
                field: "jitter.spike_secs",
                reason: "must be finite and non-negative",
            });
        }
        Ok(())
    }
}

/// A composable fault schedule for one link.
///
/// # Examples
///
/// ```
/// use shoggoth_net::fault::{FaultProfile, GilbertElliott};
///
/// let profile = FaultProfile::none()
///     .with_loss_rate(0.02)
///     .with_burst(GilbertElliott::bursty())
///     .with_outage(30.0, 45.0)
///     .with_degradation(60.0, 90.0, 0.25);
/// profile.validate()?;
/// assert!(profile.outage_active(31.0));
/// assert!(!profile.outage_active(45.0));
/// assert!((profile.capacity_factor(75.0) - 0.25).abs() < 1e-12);
/// # Ok::<(), shoggoth_net::fault::InvalidLink>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Baseline i.i.d. per-message loss probability.
    pub loss_rate: f64,
    /// Optional Gilbert–Elliott bursty-loss chain, layered on top of the
    /// baseline loss.
    pub burst: Option<GilbertElliott>,
    /// Scheduled total outages.
    pub outages: Vec<OutageWindow>,
    /// Scheduled bandwidth-degradation episodes.
    pub degradations: Vec<DegradationWindow>,
    /// Latency jitter and spikes on delivered messages.
    pub jitter: Option<LatencyJitter>,
}

impl FaultProfile {
    /// A fault-free profile (the paper's experiments).
    pub fn none() -> Self {
        Self {
            loss_rate: 0.0,
            burst: None,
            outages: Vec::new(),
            degradations: Vec::new(),
            jitter: None,
        }
    }

    /// Sets the baseline i.i.d. loss rate (validated, not clamped).
    #[must_use]
    pub fn with_loss_rate(mut self, loss_rate: f64) -> Self {
        self.loss_rate = loss_rate;
        self
    }

    /// Adds a Gilbert–Elliott bursty-loss chain.
    #[must_use]
    pub fn with_burst(mut self, burst: GilbertElliott) -> Self {
        self.burst = Some(burst);
        self
    }

    /// Adds a scheduled outage window.
    #[must_use]
    pub fn with_outage(mut self, start_secs: f64, end_secs: f64) -> Self {
        self.outages.push(OutageWindow {
            start_secs,
            end_secs,
        });
        self
    }

    /// Adds a bandwidth-degradation episode.
    #[must_use]
    pub fn with_degradation(mut self, start_secs: f64, end_secs: f64, factor: f64) -> Self {
        self.degradations.push(DegradationWindow {
            start_secs,
            end_secs,
            capacity_factor: factor,
        });
        self
    }

    /// Adds latency jitter.
    #[must_use]
    pub fn with_jitter(mut self, jitter: LatencyJitter) -> Self {
        self.jitter = Some(jitter);
        self
    }

    /// Validates every component of the profile.
    ///
    /// # Errors
    ///
    /// Returns the first [`InvalidLink`] found: NaN or out-of-range rates,
    /// inverted windows, or out-of-range degradation factors.
    pub fn validate(&self) -> Result<(), InvalidLink> {
        if !unit_rate(self.loss_rate) {
            return Err(InvalidLink {
                field: "loss_rate",
                reason: "must be a probability in [0, 1] (NaN rejected)",
            });
        }
        if let Some(burst) = &self.burst {
            burst.validate()?;
        }
        for outage in &self.outages {
            outage.validate()?;
        }
        for degradation in &self.degradations {
            degradation.validate()?;
        }
        if let Some(jitter) = &self.jitter {
            jitter.validate()?;
        }
        Ok(())
    }

    /// Whether any scheduled outage covers simulation time `now_secs`.
    pub fn outage_active(&self, now_secs: f64) -> bool {
        self.outages.iter().any(|w| w.covers(now_secs))
    }

    /// The effective capacity multiplier at `now_secs`: the smallest
    /// factor among active degradation episodes, `1.0` when none is
    /// active.
    pub fn capacity_factor(&self, now_secs: f64) -> f64 {
        self.degradations
            .iter()
            .filter(|w| w.covers(now_secs))
            .map(|w| w.capacity_factor)
            .fold(1.0, f64::min)
    }
}

impl Default for FaultProfile {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_loss_rate_rejected() {
        let err = FaultProfile::none()
            .with_loss_rate(f64::NAN)
            .validate()
            .expect_err("NaN loss rate must be rejected");
        assert_eq!(err.field, "loss_rate");
    }

    #[test]
    fn negative_and_above_one_loss_rates_rejected() {
        assert!(FaultProfile::none()
            .with_loss_rate(-0.1)
            .validate()
            .is_err());
        assert!(FaultProfile::none().with_loss_rate(1.5).validate().is_err());
        assert!(FaultProfile::none().with_loss_rate(1.0).validate().is_ok());
    }

    #[test]
    fn inverted_outage_window_rejected() {
        let err = FaultProfile::none()
            .with_outage(10.0, 5.0)
            .validate()
            .expect_err("inverted window must be rejected");
        assert_eq!(err.field, "outage.end_secs");
        // Empty windows are rejected too.
        assert!(FaultProfile::none()
            .with_outage(5.0, 5.0)
            .validate()
            .is_err());
        assert!(FaultProfile::none()
            .with_outage(5.0, 6.0)
            .validate()
            .is_ok());
    }

    #[test]
    fn negative_outage_start_rejected() {
        let err = FaultProfile::none()
            .with_outage(-1.0, 5.0)
            .validate()
            .expect_err("negative start must be rejected");
        assert_eq!(err.field, "outage.start_secs");
    }

    #[test]
    fn degradation_factor_domain_enforced() {
        assert!(FaultProfile::none()
            .with_degradation(0.0, 10.0, 0.0)
            .validate()
            .is_err());
        assert!(FaultProfile::none()
            .with_degradation(0.0, 10.0, 1.5)
            .validate()
            .is_err());
        assert!(FaultProfile::none()
            .with_degradation(0.0, 10.0, f64::NAN)
            .validate()
            .is_err());
        assert!(FaultProfile::none()
            .with_degradation(0.0, 10.0, 1.0)
            .validate()
            .is_ok());
    }

    #[test]
    fn burst_probabilities_validated() {
        let bad = GilbertElliott {
            enter_bad: 1.2,
            ..GilbertElliott::bursty()
        };
        assert!(bad.validate().is_err());
        assert!(GilbertElliott::bursty().validate().is_ok());
    }

    #[test]
    fn jitter_domain_enforced() {
        let bad = LatencyJitter {
            jitter_secs: -0.5,
            spike_prob: 0.1,
            spike_secs: 1.0,
        };
        assert!(bad.validate().is_err());
        let nan_prob = LatencyJitter {
            jitter_secs: 0.01,
            spike_prob: f64::NAN,
            spike_secs: 1.0,
        };
        assert!(nan_prob.validate().is_err());
    }

    #[test]
    fn outage_and_degradation_windows_are_half_open() {
        let profile = FaultProfile::none()
            .with_outage(10.0, 20.0)
            .with_degradation(10.0, 20.0, 0.5);
        assert!(!profile.outage_active(9.999));
        assert!(profile.outage_active(10.0));
        assert!(profile.outage_active(19.999));
        assert!(!profile.outage_active(20.0));
        assert!((profile.capacity_factor(15.0) - 0.5).abs() < 1e-12);
        assert!((profile.capacity_factor(20.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlapping_degradations_take_the_worst_factor() {
        let profile = FaultProfile::none()
            .with_degradation(0.0, 30.0, 0.5)
            .with_degradation(10.0, 20.0, 0.2);
        assert!((profile.capacity_factor(15.0) - 0.2).abs() < 1e-12);
        assert!((profile.capacity_factor(25.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gilbert_elliott_bursts_cluster_losses() {
        // With the same long-run loss rate, the GE chain should produce
        // longer loss runs than i.i.d. loss. Measure the mean loss-run
        // length over a long message sequence.
        let ge = GilbertElliott::bursty();
        let mut rng = Rng::seed_from(42);
        let mut bad = false;
        let mut losses = Vec::with_capacity(20_000);
        for _ in 0..20_000 {
            bad = ge.step(bad, &mut rng);
            losses.push(rng.bernoulli(ge.state_loss(bad)));
        }
        let mean_run = mean_loss_run(&losses);
        assert!(
            mean_run > 2.0,
            "bursty chain should cluster losses: mean run {mean_run}"
        );
    }

    #[test]
    fn gilbert_elliott_is_deterministic() {
        let ge = GilbertElliott::bursty();
        let run = |seed: u64| {
            let mut rng = Rng::seed_from(seed);
            let mut bad = false;
            (0..256)
                .map(|_| {
                    bad = ge.step(bad, &mut rng);
                    bad
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    fn mean_loss_run(losses: &[bool]) -> f64 {
        let mut runs = 0u64;
        let mut total = 0u64;
        let mut current = 0u64;
        for &lost in losses {
            if lost {
                current += 1;
            } else if current > 0 {
                runs += 1;
                total += current;
                current = 0;
            }
        }
        if current > 0 {
            runs += 1;
            total += current;
        }
        if runs == 0 {
            0.0
        } else {
            total as f64 / runs as f64
        }
    }
}
