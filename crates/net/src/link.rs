//! The edge ↔ cloud link: byte accounting, latency, and loss injection.

use crate::message::Message;
use serde::{Deserialize, Serialize};
use shoggoth_util::Rng;

/// Link capacity and reliability parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Uplink capacity in kilobits per second.
    pub uplink_kbps: f64,
    /// Downlink capacity in kilobits per second.
    pub downlink_kbps: f64,
    /// One-way base latency in seconds.
    pub base_latency_secs: f64,
    /// Probability a message is lost entirely (failure injection; `0.0`
    /// for the paper's experiments).
    pub loss_rate: f64,
}

impl LinkConfig {
    /// A 4G-class link: 20 Mbps up, 40 Mbps down, 25 ms one-way latency.
    pub fn cellular() -> Self {
        Self {
            uplink_kbps: 20_000.0,
            downlink_kbps: 40_000.0,
            base_latency_secs: 0.025,
            loss_rate: 0.0,
        }
    }

    /// Sets the loss rate (clamped to `[0, 1]`).
    pub fn with_loss_rate(mut self, loss_rate: f64) -> Self {
        self.loss_rate = loss_rate.clamp(0.0, 1.0);
        self
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self::cellular()
    }
}

/// The outcome of a successful transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transfer {
    /// Bytes that crossed the wire.
    pub bytes: u64,
    /// Transfer completion latency in seconds (serialization + base
    /// latency).
    pub latency_secs: f64,
}

/// A bidirectional edge ↔ cloud link with cumulative accounting.
///
/// # Examples
///
/// ```
/// use shoggoth_net::{Link, LinkConfig, Message};
/// use shoggoth_util::Rng;
///
/// let mut link = Link::new(LinkConfig::cellular());
/// let mut rng = Rng::seed_from(0);
/// let sent = link.send_uplink(Message::Labels { samples: 10 }, &mut rng);
/// assert!(sent.is_some());
/// assert!(link.uplink_bytes() > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    config: LinkConfig,
    uplink_bytes: u64,
    downlink_bytes: u64,
    dropped_messages: u64,
}

impl Link {
    /// Creates a link.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is not positive.
    pub fn new(config: LinkConfig) -> Self {
        assert!(
            config.uplink_kbps > 0.0 && config.downlink_kbps > 0.0,
            "link capacities must be positive"
        );
        Self {
            config,
            uplink_bytes: 0,
            downlink_bytes: 0,
            dropped_messages: 0,
        }
    }

    /// The link configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Sends a message edge → cloud. Returns `None` if the message was
    /// lost (per the configured loss rate); lost messages still consume
    /// uplink bytes (the sender transmitted them).
    pub fn send_uplink(&mut self, message: Message, rng: &mut Rng) -> Option<Transfer> {
        let bytes = message.bytes();
        self.uplink_bytes += bytes;
        if rng.bernoulli(self.config.loss_rate) {
            self.dropped_messages += 1;
            return None;
        }
        Some(Transfer {
            bytes,
            latency_secs: self.transfer_secs(bytes, self.config.uplink_kbps),
        })
    }

    /// Sends a message cloud → edge (same semantics as
    /// [`send_uplink`](Self::send_uplink)).
    pub fn send_downlink(&mut self, message: Message, rng: &mut Rng) -> Option<Transfer> {
        let bytes = message.bytes();
        self.downlink_bytes += bytes;
        if rng.bernoulli(self.config.loss_rate) {
            self.dropped_messages += 1;
            return None;
        }
        Some(Transfer {
            bytes,
            latency_secs: self.transfer_secs(bytes, self.config.downlink_kbps),
        })
    }

    fn transfer_secs(&self, bytes: u64, capacity_kbps: f64) -> f64 {
        let payload_secs = bytes as f64 * 8.0 / (capacity_kbps * 1000.0);
        self.config.base_latency_secs + payload_secs
    }

    /// Total bytes transmitted edge → cloud.
    pub fn uplink_bytes(&self) -> u64 {
        self.uplink_bytes
    }

    /// Total bytes transmitted cloud → edge.
    pub fn downlink_bytes(&self) -> u64 {
        self.downlink_bytes
    }

    /// Number of messages lost to failure injection.
    pub fn dropped_messages(&self) -> u64 {
        self.dropped_messages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_accumulates_both_directions() {
        let mut link = Link::new(LinkConfig::cellular());
        let mut rng = Rng::seed_from(1);
        link.send_uplink(Message::Telemetry, &mut rng);
        link.send_downlink(Message::Detections { count: 2 }, &mut rng);
        assert_eq!(link.uplink_bytes(), 96);
        assert_eq!(link.downlink_bytes(), 64 + 56);
    }

    #[test]
    fn latency_includes_serialization_time() {
        let mut link = Link::new(LinkConfig {
            uplink_kbps: 8.0, // 1 kB/s
            downlink_kbps: 8.0,
            base_latency_secs: 0.1,
            loss_rate: 0.0,
        });
        let mut rng = Rng::seed_from(2);
        let t = link
            .send_uplink(Message::ModelWeights { bytes: 936 }, &mut rng)
            .expect("no loss configured");
        // 936 + 64 header = 1000 bytes at 1 kB/s = 1 s, plus 0.1 s base.
        assert!((t.latency_secs - 1.1).abs() < 1e-9, "{}", t.latency_secs);
    }

    #[test]
    fn lossy_link_drops_but_still_bills_uplink() {
        let mut link = Link::new(LinkConfig::cellular().with_loss_rate(1.0));
        let mut rng = Rng::seed_from(3);
        assert!(link.send_uplink(Message::Telemetry, &mut rng).is_none());
        assert_eq!(link.dropped_messages(), 1);
        assert!(link.uplink_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "link capacities must be positive")]
    fn zero_capacity_rejected() {
        Link::new(LinkConfig {
            uplink_kbps: 0.0,
            downlink_kbps: 1.0,
            base_latency_secs: 0.0,
            loss_rate: 0.0,
        });
    }
}
