//! The edge ↔ cloud link: byte accounting, latency, and fault injection.

use crate::fault::{FaultProfile, InvalidLink};
use crate::message::Message;
use serde::{Deserialize, Serialize};
use shoggoth_util::Rng;

/// Link capacity, latency, and fault-injection parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Uplink capacity in kilobits per second.
    pub uplink_kbps: f64,
    /// Downlink capacity in kilobits per second.
    pub downlink_kbps: f64,
    /// One-way base latency in seconds.
    pub base_latency_secs: f64,
    /// Composable fault schedule ([`FaultProfile::none`] for the paper's
    /// experiments).
    pub fault: FaultProfile,
}

impl LinkConfig {
    /// A 4G-class link: 20 Mbps up, 40 Mbps down, 25 ms one-way latency.
    pub fn cellular() -> Self {
        Self {
            uplink_kbps: 20_000.0,
            downlink_kbps: 40_000.0,
            base_latency_secs: 0.025,
            fault: FaultProfile::none(),
        }
    }

    /// Sets the baseline i.i.d. loss rate. The value is validated (not
    /// clamped) when the [`Link`] is constructed.
    #[must_use]
    pub fn with_loss_rate(mut self, loss_rate: f64) -> Self {
        self.fault.loss_rate = loss_rate;
        self
    }

    /// Replaces the whole fault profile.
    #[must_use]
    pub fn with_fault(mut self, fault: FaultProfile) -> Self {
        self.fault = fault;
        self
    }

    /// Validates capacities, latency, and the fault profile.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidLink`] if either capacity is non-positive or
    /// non-finite, the base latency is negative or non-finite, or any
    /// fault-profile component is out of range.
    pub fn validate(&self) -> Result<(), InvalidLink> {
        if !self.uplink_kbps.is_finite() || self.uplink_kbps <= 0.0 {
            return Err(InvalidLink {
                field: "uplink_kbps",
                reason: "capacity must be finite and positive",
            });
        }
        if !self.downlink_kbps.is_finite() || self.downlink_kbps <= 0.0 {
            return Err(InvalidLink {
                field: "downlink_kbps",
                reason: "capacity must be finite and positive",
            });
        }
        if !self.base_latency_secs.is_finite() || self.base_latency_secs < 0.0 {
            return Err(InvalidLink {
                field: "base_latency_secs",
                reason: "latency must be finite and non-negative",
            });
        }
        self.fault.validate()
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self::cellular()
    }
}

/// The outcome of a successful transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transfer {
    /// Bytes that crossed the wire.
    pub bytes: u64,
    /// Transfer completion latency in seconds (serialization at the
    /// degraded capacity + base latency + jitter).
    pub latency_secs: f64,
}

/// The fate of one send, including *why* a lost message was lost — the
/// telemetry layer records this so a timeline can distinguish scheduled
/// outages from random loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SendOutcome {
    /// Delivered after [`Transfer::latency_secs`].
    Delivered(Transfer),
    /// Lost to a scheduled outage window (still billed).
    LostToOutage,
    /// Lost to random loss — the i.i.d. baseline or the burst chain
    /// (still billed).
    LostToLoss,
}

impl SendOutcome {
    /// The transfer, if the message was delivered.
    pub fn transfer(self) -> Option<Transfer> {
        match self {
            SendOutcome::Delivered(t) => Some(t),
            SendOutcome::LostToOutage | SendOutcome::LostToLoss => None,
        }
    }

    /// Whether the message was delivered.
    pub fn delivered(self) -> bool {
        matches!(self, SendOutcome::Delivered(_))
    }
}

/// A bidirectional edge ↔ cloud link with cumulative accounting and
/// deterministic fault injection.
///
/// Sends are stamped with the simulation time so scheduled faults
/// (outages, degradations) apply; all randomness comes from the
/// caller-supplied seeded RNG.
///
/// # Examples
///
/// ```
/// use shoggoth_net::{Link, LinkConfig, Message};
/// use shoggoth_util::Rng;
///
/// let mut link = Link::new(LinkConfig::cellular())?;
/// let mut rng = Rng::seed_from(0);
/// let sent = link.send_uplink(0.0, Message::Labels { samples: 10 }, &mut rng);
/// assert!(sent.is_some());
/// assert!(link.uplink_bytes() > 0);
/// # Ok::<(), shoggoth_net::fault::InvalidLink>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    config: LinkConfig,
    uplink_bytes: u64,
    downlink_bytes: u64,
    dropped_messages: u64,
    outage_drops: u64,
    burst_drops: u64,
    ge_bad: bool,
}

impl Link {
    /// Creates a link.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidLink`] if the configuration fails
    /// [`LinkConfig::validate`].
    pub fn new(config: LinkConfig) -> Result<Self, InvalidLink> {
        config.validate()?;
        Ok(Self {
            config,
            uplink_bytes: 0,
            downlink_bytes: 0,
            dropped_messages: 0,
            outage_drops: 0,
            burst_drops: 0,
            ge_bad: false,
        })
    }

    /// The link configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Sends a message edge → cloud at simulation time `now_secs`.
    /// Returns `None` if the message was lost; lost messages still
    /// consume uplink bytes (the sender transmitted them).
    pub fn send_uplink(
        &mut self,
        now_secs: f64,
        message: Message,
        rng: &mut Rng,
    ) -> Option<Transfer> {
        self.send_uplink_outcome(now_secs, message, rng).transfer()
    }

    /// Sends a message cloud → edge (same semantics as
    /// [`send_uplink`](Self::send_uplink)).
    pub fn send_downlink(
        &mut self,
        now_secs: f64,
        message: Message,
        rng: &mut Rng,
    ) -> Option<Transfer> {
        self.send_downlink_outcome(now_secs, message, rng)
            .transfer()
    }

    /// Sends a message edge → cloud, reporting the full [`SendOutcome`]
    /// (why a lost message was lost). Identical byte accounting and RNG
    /// draw sequence as [`send_uplink`](Self::send_uplink).
    pub fn send_uplink_outcome(
        &mut self,
        now_secs: f64,
        message: Message,
        rng: &mut Rng,
    ) -> SendOutcome {
        let bytes = message.bytes();
        self.uplink_bytes += bytes;
        self.transfer(now_secs, bytes, self.config.uplink_kbps, rng)
    }

    /// Sends a message cloud → edge, reporting the full [`SendOutcome`].
    pub fn send_downlink_outcome(
        &mut self,
        now_secs: f64,
        message: Message,
        rng: &mut Rng,
    ) -> SendOutcome {
        let bytes = message.bytes();
        self.downlink_bytes += bytes;
        self.transfer(now_secs, bytes, self.config.downlink_kbps, rng)
    }

    /// Applies the fault pipeline to one already-billed message: outage
    /// check, burst-chain step, i.i.d. loss, then latency (degraded
    /// serialization + jitter). Fault order is part of the determinism
    /// contract: the RNG draw sequence per message is fixed.
    fn transfer(
        &mut self,
        now_secs: f64,
        bytes: u64,
        capacity_kbps: f64,
        rng: &mut Rng,
    ) -> SendOutcome {
        let fault = &self.config.fault;
        if fault.outage_active(now_secs) {
            self.dropped_messages += 1;
            self.outage_drops += 1;
            return SendOutcome::LostToOutage;
        }
        let mut loss = fault.loss_rate;
        if let Some(burst) = &fault.burst {
            self.ge_bad = burst.step(self.ge_bad, rng);
            // Combined survival: the message must survive both the
            // baseline and the burst-state loss draws.
            loss = 1.0 - (1.0 - loss) * (1.0 - burst.state_loss(self.ge_bad));
        }
        if rng.bernoulli(loss) {
            self.dropped_messages += 1;
            if self.ge_bad {
                self.burst_drops += 1;
            }
            return SendOutcome::LostToLoss;
        }
        let factor = fault.capacity_factor(now_secs);
        let payload_secs = bytes as f64 * 8.0 / (capacity_kbps * factor * 1000.0);
        let mut latency_secs = self.config.base_latency_secs + payload_secs;
        if let Some(jitter) = &fault.jitter {
            if jitter.jitter_secs > 0.0 {
                latency_secs += rng.range_f64(0.0, jitter.jitter_secs);
            }
            if rng.bernoulli(jitter.spike_prob) {
                latency_secs += jitter.spike_secs;
            }
        }
        SendOutcome::Delivered(Transfer {
            bytes,
            latency_secs,
        })
    }

    /// Total bytes transmitted edge → cloud.
    pub fn uplink_bytes(&self) -> u64 {
        self.uplink_bytes
    }

    /// Total bytes transmitted cloud → edge.
    pub fn downlink_bytes(&self) -> u64 {
        self.downlink_bytes
    }

    /// Number of messages lost to any fault.
    pub fn dropped_messages(&self) -> u64 {
        self.dropped_messages
    }

    /// Messages lost to scheduled outage windows.
    pub fn outage_drops(&self) -> u64 {
        self.outage_drops
    }

    /// Messages lost while the burst chain was in its bad state.
    pub fn burst_drops(&self) -> u64 {
        self.burst_drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{GilbertElliott, LatencyJitter};

    #[test]
    fn accounting_accumulates_both_directions() {
        let mut link = Link::new(LinkConfig::cellular()).expect("valid config");
        let mut rng = Rng::seed_from(1);
        link.send_uplink(0.0, Message::Telemetry, &mut rng);
        link.send_downlink(0.0, Message::Detections { count: 2 }, &mut rng);
        assert_eq!(link.uplink_bytes(), 96);
        assert_eq!(link.downlink_bytes(), 64 + 56);
    }

    #[test]
    fn latency_includes_serialization_time() {
        let mut link = Link::new(LinkConfig {
            uplink_kbps: 8.0, // 1 kB/s
            downlink_kbps: 8.0,
            base_latency_secs: 0.1,
            fault: FaultProfile::none(),
        })
        .expect("valid config");
        let mut rng = Rng::seed_from(2);
        let t = link
            .send_uplink(0.0, Message::ModelWeights { bytes: 936 }, &mut rng)
            .expect("no loss configured");
        // 936 + 64 header = 1000 bytes at 1 kB/s = 1 s, plus 0.1 s base.
        assert!((t.latency_secs - 1.1).abs() < 1e-9, "{}", t.latency_secs);
    }

    #[test]
    fn lossy_link_drops_but_still_bills_uplink() {
        let mut link = Link::new(LinkConfig::cellular().with_loss_rate(1.0)).expect("valid config");
        let mut rng = Rng::seed_from(3);
        assert!(link
            .send_uplink(0.0, Message::Telemetry, &mut rng)
            .is_none());
        assert_eq!(link.dropped_messages(), 1);
        assert!(link.uplink_bytes() > 0);
    }

    #[test]
    fn zero_capacity_rejected() {
        let err = Link::new(LinkConfig {
            uplink_kbps: 0.0,
            downlink_kbps: 1.0,
            base_latency_secs: 0.0,
            fault: FaultProfile::none(),
        })
        .expect_err("zero capacity must be rejected");
        assert_eq!(err.field, "uplink_kbps");
    }

    #[test]
    fn nan_latency_rejected() {
        let err = Link::new(LinkConfig {
            base_latency_secs: f64::NAN,
            ..LinkConfig::cellular()
        })
        .expect_err("NaN latency must be rejected");
        assert_eq!(err.field, "base_latency_secs");
    }

    #[test]
    fn invalid_fault_profile_rejected_at_link_construction() {
        let config = LinkConfig::cellular().with_fault(FaultProfile::none().with_outage(9.0, 3.0));
        let err = Link::new(config).expect_err("inverted outage must be rejected");
        assert_eq!(err.field, "outage.end_secs");
    }

    #[test]
    fn outage_window_drops_everything_inside_and_nothing_outside() {
        let config =
            LinkConfig::cellular().with_fault(FaultProfile::none().with_outage(10.0, 20.0));
        let mut link = Link::new(config).expect("valid config");
        let mut rng = Rng::seed_from(4);
        assert!(link
            .send_uplink(9.9, Message::Telemetry, &mut rng)
            .is_some());
        assert!(link
            .send_uplink(10.0, Message::Telemetry, &mut rng)
            .is_none());
        assert!(link
            .send_uplink(19.9, Message::Telemetry, &mut rng)
            .is_none());
        assert!(link
            .send_uplink(20.0, Message::Telemetry, &mut rng)
            .is_some());
        assert_eq!(link.outage_drops(), 2);
        assert_eq!(link.dropped_messages(), 2);
        // Outage drops are still billed: the edge transmitted into the void.
        assert_eq!(link.uplink_bytes(), 4 * 96);
    }

    #[test]
    fn degradation_slows_transfers_without_losing_them() {
        let config = LinkConfig {
            uplink_kbps: 8.0,
            downlink_kbps: 8.0,
            base_latency_secs: 0.0,
            fault: FaultProfile::none().with_degradation(10.0, 20.0, 0.5),
        };
        let mut link = Link::new(config).expect("valid config");
        let mut rng = Rng::seed_from(5);
        let msg = Message::ModelWeights { bytes: 936 };
        let clean = link.send_uplink(0.0, msg, &mut rng).expect("delivered");
        let degraded = link.send_uplink(15.0, msg, &mut rng).expect("delivered");
        assert!((degraded.latency_secs - 2.0 * clean.latency_secs).abs() < 1e-9);
        assert_eq!(link.dropped_messages(), 0);
    }

    #[test]
    fn jitter_perturbs_latency_within_bounds() {
        let jitter = LatencyJitter {
            jitter_secs: 0.05,
            spike_prob: 0.0,
            spike_secs: 0.0,
        };
        let config = LinkConfig::cellular().with_fault(FaultProfile::none().with_jitter(jitter));
        let base = LinkConfig::cellular();
        let mut jittered = Link::new(config).expect("valid config");
        let mut clean = Link::new(base).expect("valid config");
        let mut rng_a = Rng::seed_from(6);
        let mut rng_b = Rng::seed_from(6);
        let msg = Message::Telemetry;
        for _ in 0..32 {
            let j = jittered
                .send_uplink(0.0, msg, &mut rng_a)
                .expect("delivered");
            let c = clean.send_uplink(0.0, msg, &mut rng_b).expect("delivered");
            let extra = j.latency_secs - c.latency_secs;
            assert!(
                (0.0..0.05).contains(&extra),
                "jitter out of bounds: {extra}"
            );
        }
    }

    #[test]
    fn bursty_link_drops_in_clusters() {
        let config = LinkConfig::cellular()
            .with_fault(FaultProfile::none().with_burst(GilbertElliott::bursty()));
        let mut link = Link::new(config).expect("valid config");
        let mut rng = Rng::seed_from(7);
        for _ in 0..2000 {
            link.send_uplink(0.0, Message::Telemetry, &mut rng);
        }
        assert!(link.dropped_messages() > 0, "bursty chain should drop some");
        assert!(
            link.burst_drops() > link.dropped_messages() / 2,
            "most drops should come from bad-state bursts: {} of {}",
            link.burst_drops(),
            link.dropped_messages()
        );
    }

    #[test]
    fn send_outcomes_classify_losses() {
        let mut rng = Rng::seed_from(8);
        let outage = LinkConfig::cellular().with_fault(FaultProfile::none().with_outage(0.0, 10.0));
        let mut link = Link::new(outage).expect("valid config");
        assert_eq!(
            link.send_uplink_outcome(1.0, Message::Telemetry, &mut rng),
            SendOutcome::LostToOutage
        );
        let mut lossy =
            Link::new(LinkConfig::cellular().with_loss_rate(1.0)).expect("valid config");
        assert_eq!(
            lossy.send_uplink_outcome(0.0, Message::Telemetry, &mut rng),
            SendOutcome::LostToLoss
        );
        let mut clean = Link::new(LinkConfig::cellular()).expect("valid config");
        let outcome = clean.send_downlink_outcome(0.0, Message::Telemetry, &mut rng);
        assert!(outcome.delivered());
        assert!(outcome.transfer().is_some());
    }

    #[test]
    fn identical_seeds_produce_identical_links() {
        let config = LinkConfig::cellular().with_fault(
            FaultProfile::none()
                .with_loss_rate(0.1)
                .with_burst(GilbertElliott::bursty())
                .with_outage(1.0, 2.0),
        );
        let run = |seed: u64| {
            let mut link = Link::new(config.clone()).expect("valid config");
            let mut rng = Rng::seed_from(seed);
            for i in 0..512 {
                link.send_uplink(i as f64 * 0.01, Message::Telemetry, &mut rng);
            }
            link
        };
        assert_eq!(run(11), run(11));
    }
}
