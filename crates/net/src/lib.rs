//! Network substrate: links, message sizing, and an H.264-like codec model.
//!
//! The paper's bandwidth numbers (Tables I and III) are byte counts over
//! time. This crate models the three things those counts depend on:
//!
//! * [`Codec`] — group-of-pictures video compression whose ratio improves
//!   with inter-frame similarity. Shoggoth buffers sampled frames and
//!   H.264-encodes the buffer before upload (§III-C); sparsely sampled
//!   frames are less similar, so they compress worse per frame than a
//!   30 fps stream.
//! * [`Message`] — the sizes of everything that crosses the link: encoded
//!   frame batches, label sets, model weights (AMS), detection results
//!   (Cloud-Only's mask-bearing outputs), and telemetry.
//! * [`Link`] — uplink/downlink accounting with latency and a composable
//!   [`FaultProfile`]: i.i.d. loss, Gilbert–Elliott bursts, scheduled
//!   outages, bandwidth degradation, and latency jitter — all driven by a
//!   seeded RNG so chaos runs are deterministic.
//!
//! # Examples
//!
//! ```
//! use shoggoth_net::{Codec, FrameGroupStats};
//!
//! let codec = Codec::h264_like();
//! // A tightly-correlated 30 fps group compresses much better than the
//! // same frames sampled two seconds apart.
//! let dense = codec.encode_group(&[FrameGroupStats::new(786_432, 0.002); 30], 1.0 / 30.0);
//! let sparse = codec.encode_group(&[FrameGroupStats::new(786_432, 0.002); 30], 2.0);
//! assert!(dense < sparse);
//! ```

pub mod codec;
pub mod fault;
pub mod link;
pub mod message;

pub use codec::{Codec, FrameGroupStats};
pub use fault::{
    DegradationWindow, FaultProfile, GilbertElliott, InvalidLink, LatencyJitter, OutageWindow,
};
pub use link::{Link, LinkConfig, SendOutcome, Transfer};
pub use message::Message;
