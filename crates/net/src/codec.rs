//! H.264-like group-of-pictures compression model.

use serde::{Deserialize, Serialize};

/// Per-frame statistics the codec model needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameGroupStats {
    /// Uncompressed frame size in bytes.
    pub raw_bytes: u64,
    /// Scene motion at this frame (normalized image units per frame, from
    /// `shoggoth_video::Frame::motion_magnitude`).
    pub motion: f32,
}

impl FrameGroupStats {
    /// Creates frame statistics.
    pub fn new(raw_bytes: u64, motion: f32) -> Self {
        Self { raw_bytes, motion }
    }
}

/// An H.264-like codec model.
///
/// A group of buffered frames is encoded as one I-frame plus P-frames. The
/// P-frame compression ratio interpolates between the I-frame ratio (no
/// inter-frame redundancy left) and the best-case P ratio, driven by an
/// exponential similarity model: frames further apart in time, or with more
/// scene motion, are less similar and compress worse. This reproduces both
/// paper behaviours: 30 fps Cloud-Only streams compress extremely well,
/// while Shoggoth's sparsely-sampled buffers pay more bytes per frame —
/// yet far fewer bytes overall because there are few frames.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Codec {
    /// Compression ratio of an intra-coded frame (JPEG-grade).
    pub i_frame_ratio: f64,
    /// Best-case compression ratio of a predicted frame (perfect temporal
    /// redundancy).
    pub p_frame_ratio: f64,
    /// Group-of-pictures length: one I-frame every `gop` frames.
    pub gop: usize,
    /// Similarity decay rate per second of inter-frame gap.
    pub temporal_decay: f64,
    /// Similarity decay rate per unit of scene motion.
    pub motion_decay: f64,
}

impl Codec {
    /// A codec tuned to H.264-like behaviour at surveillance quality:
    /// ~20× intra compression, up to ~300× with full temporal redundancy.
    pub fn h264_like() -> Self {
        Self {
            i_frame_ratio: 20.0,
            p_frame_ratio: 300.0,
            gop: 30,
            temporal_decay: 0.9,
            motion_decay: 80.0,
        }
    }

    /// Inter-frame similarity in `[0, 1]` for a gap of `gap_secs` seconds
    /// and the given motion level.
    pub fn similarity(&self, gap_secs: f64, motion: f32) -> f64 {
        (-(self.temporal_decay * gap_secs + self.motion_decay * motion as f64)).exp()
    }

    /// Encoded size in bytes of a single intra-coded frame.
    pub fn encode_single(&self, raw_bytes: u64) -> u64 {
        ((raw_bytes as f64 / self.i_frame_ratio).ceil() as u64).max(1)
    }

    /// Encoded size in bytes of a buffered frame group whose frames are
    /// `gap_secs` apart (e.g. `1 / sampling_rate` for a sample buffer, or
    /// `1 / 30` for a live stream).
    ///
    /// Returns `0` for an empty group.
    pub fn encode_group(&self, frames: &[FrameGroupStats], gap_secs: f64) -> u64 {
        let mut total = 0.0f64;
        for (i, frame) in frames.iter().enumerate() {
            let is_i_frame = self.gop == 0 || i % self.gop == 0;
            let ratio = if is_i_frame {
                self.i_frame_ratio
            } else {
                let sim = self.similarity(gap_secs, frame.motion);
                self.i_frame_ratio + (self.p_frame_ratio - self.i_frame_ratio) * sim
            };
            total += frame.raw_bytes as f64 / ratio;
        }
        total.ceil() as u64
    }
}

impl Default for Codec {
    fn default() -> Self {
        Self::h264_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(n: usize, motion: f32) -> Vec<FrameGroupStats> {
        vec![FrameGroupStats::new(786_432, motion); n]
    }

    #[test]
    fn similarity_decays_with_gap_and_motion() {
        let c = Codec::h264_like();
        assert!(c.similarity(0.0, 0.0) > 0.99);
        assert!(c.similarity(1.0, 0.0) < c.similarity(0.1, 0.0));
        assert!(c.similarity(0.1, 0.01) < c.similarity(0.1, 0.0));
    }

    #[test]
    fn dense_groups_compress_better_per_frame() {
        let c = Codec::h264_like();
        let dense = c.encode_group(&frames(30, 0.002), 1.0 / 30.0);
        let sparse = c.encode_group(&frames(30, 0.002), 2.0);
        assert!(dense < sparse, "dense {dense} vs sparse {sparse}");
    }

    #[test]
    fn high_motion_costs_bytes() {
        let c = Codec::h264_like();
        let calm = c.encode_group(&frames(30, 0.001), 0.5);
        let busy = c.encode_group(&frames(30, 0.02), 0.5);
        assert!(busy > calm);
    }

    #[test]
    fn compression_ratio_is_plausible() {
        let c = Codec::h264_like();
        // A 30 fps, low-motion group should land between the pure-I and
        // pure-best-P bounds.
        let group = frames(30, 0.002);
        let raw: u64 = group.iter().map(|f| f.raw_bytes).sum();
        let encoded = c.encode_group(&group, 1.0 / 30.0);
        let ratio = raw as f64 / encoded as f64;
        assert!(
            (20.0..300.0).contains(&ratio),
            "overall ratio {ratio} outside bounds"
        );
    }

    #[test]
    fn empty_group_is_zero_bytes() {
        assert_eq!(Codec::h264_like().encode_group(&[], 1.0), 0);
    }

    #[test]
    fn single_frame_is_intra_coded() {
        let c = Codec::h264_like();
        assert_eq!(
            c.encode_single(786_432),
            c.encode_group(&frames(1, 0.0), 1.0)
        );
    }

    #[test]
    fn gop_inserts_periodic_i_frames() {
        let c = Codec {
            gop: 10,
            ..Codec::h264_like()
        };
        let with_gop = c.encode_group(&frames(30, 0.0), 1.0 / 30.0);
        let no_gop = Codec {
            gop: 30,
            ..Codec::h264_like()
        }
        .encode_group(&frames(30, 0.0), 1.0 / 30.0);
        assert!(with_gop > no_gop, "more I-frames must cost more bytes");
    }
}
