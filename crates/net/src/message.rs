//! Sizes of everything that crosses the edge-cloud link.

use serde::{Deserialize, Serialize};

/// Bytes to encode one label: class id (2) + confidence (4) + box (4 × 4)
/// + framing overhead (6).
const LABEL_BYTES: u64 = 28;

/// Bytes to encode one plain detection result (same layout as a label).
const DETECTION_BYTES: u64 = 28;

/// Fixed per-message protocol overhead (headers, framing).
const HEADER_BYTES: u64 = 64;

/// A typed unit of edge ↔ cloud traffic with a well-defined wire size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Message {
    /// A codec-encoded batch of sampled frames (edge → cloud).
    FrameBatch {
        /// Number of frames in the batch.
        frames: usize,
        /// Encoded payload size from [`crate::Codec::encode_group`].
        encoded_bytes: u64,
    },
    /// Online-labeling results for a batch (cloud → edge): per-sample
    /// class/confidence/box records.
    Labels {
        /// Number of labeled samples (proposals).
        samples: usize,
    },
    /// A full serialized student model (cloud → edge; the AMS downlink).
    ModelWeights {
        /// Serialized parameter bytes.
        bytes: u64,
    },
    /// Plain detection records for one frame (cloud → edge).
    Detections {
        /// Number of detections.
        count: usize,
    },
    /// Mask-bearing detection results for one frame, as produced by the
    /// golden Mask-R-CNN model (cloud → edge in Cloud-Only). Instance
    /// masks are image-sized, which is why the paper's Cloud-Only
    /// *downlink* slightly exceeds its uplink.
    MaskResults {
        /// Number of detections.
        count: usize,
        /// Encoded size of the frame the masks cover.
        frame_encoded_bytes: u64,
    },
    /// Resource-usage telemetry (edge → cloud, for the λ term).
    Telemetry,
}

impl Message {
    /// Wire size of the message in bytes, including protocol overhead.
    pub fn bytes(&self) -> u64 {
        HEADER_BYTES
            + match *self {
                Message::FrameBatch { encoded_bytes, .. } => encoded_bytes,
                Message::Labels { samples } => samples as u64 * LABEL_BYTES,
                Message::ModelWeights { bytes } => bytes,
                Message::Detections { count } => count as u64 * DETECTION_BYTES,
                Message::MaskResults {
                    count,
                    frame_encoded_bytes,
                } => {
                    // Binary instance masks compress well but still scale
                    // with both the image area and the instance count.
                    count as u64 * DETECTION_BYTES
                        + (frame_encoded_bytes as f64 * (1.0 + 0.02 * count as f64)) as u64
                }
                Message::Telemetry => 32,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_scale_with_sample_count() {
        let small = Message::Labels { samples: 10 }.bytes();
        let large = Message::Labels { samples: 100 }.bytes();
        assert_eq!(large - small, 90 * 28);
    }

    #[test]
    fn labels_are_tiny_compared_to_frames() {
        let labels = Message::Labels { samples: 300 }.bytes();
        let frames = Message::FrameBatch {
            frames: 300,
            encoded_bytes: 300 * 40_000,
        }
        .bytes();
        assert!(labels * 100 < frames);
    }

    #[test]
    fn mask_results_exceed_the_frame_they_cover() {
        let frame_bytes = 40_000;
        let masks = Message::MaskResults {
            count: 8,
            frame_encoded_bytes: frame_bytes,
        }
        .bytes();
        assert!(masks > frame_bytes, "masks {masks} <= frame {frame_bytes}");
    }

    #[test]
    fn every_message_has_header_overhead() {
        assert_eq!(Message::Telemetry.bytes(), 64 + 32);
        assert_eq!(Message::Detections { count: 0 }.bytes(), 64);
    }
}
