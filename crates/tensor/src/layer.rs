//! The layer abstraction and the parameterized / activation layers.
//!
//! A [`Layer`] maps a mini-batch matrix to a mini-batch matrix, caches what
//! it needs during `forward`, and propagates gradients in `backward`.
//! Parameter updates are decoupled from backpropagation so the owning
//! network can apply the paper's per-layer learning-rate scaling (front
//! layers frozen, head fully trained).
//!
//! Layers draw their output matrices from a caller-provided
//! [`Workspace`] and keep persistent caches that are overwritten in place
//! ([`Matrix::copy_from`]), so a steady-state train step allocates nothing
//! once the caches have grown to the working batch size.

use crate::workspace::Workspace;
use crate::{kernels, Matrix, SgdConfig, TensorError};

/// Whether a forward pass is part of training or evaluation.
///
/// Normalization layers use batch statistics and update running moments in
/// [`Mode::Train`]; they use running moments in [`Mode::Eval`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Training pass: caches are recorded, batch statistics are used.
    Train,
    /// Inference pass: no caches, running statistics are used.
    Eval,
}

/// A cursor over a flat parameter buffer used by weight import.
///
/// Obtained from a `&[f32]` and consumed front-to-back by each layer's
/// [`Layer::import_params`].
#[derive(Debug)]
pub struct ParamCursor<'a> {
    data: &'a [f32],
    offset: usize,
}

impl<'a> ParamCursor<'a> {
    /// Wraps a parameter buffer.
    pub fn new(data: &'a [f32]) -> Self {
        Self { data, offset: 0 }
    }

    /// Takes the next `n` parameters.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ParamCount`] if fewer than `n` parameters
    /// remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [f32], TensorError> {
        if self.offset + n > self.data.len() {
            return Err(TensorError::ParamCount {
                expected: self.offset + n,
                actual: self.data.len(),
            });
        }
        let slice = &self.data[self.offset..self.offset + n];
        self.offset += n;
        Ok(slice)
    }

    /// Number of parameters consumed so far.
    pub fn consumed(&self) -> usize {
        self.offset
    }

    /// Number of parameters remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.offset
    }
}

/// A differentiable network layer.
///
/// Implementations cache whatever `forward` state `backward` needs; calling
/// `backward` without a preceding train-mode `forward` is an error. Output
/// matrices come from the supplied [`Workspace`]; the owning network hands
/// consumed intermediates back to it.
pub trait Layer: std::fmt::Debug + Send {
    /// Short human-readable layer name (for diagnostics).
    fn name(&self) -> &'static str;

    /// Computes the layer output for a batch (one example per row). The
    /// output matrix is taken from `ws`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the input width does not
    /// match the layer.
    fn forward(
        &mut self,
        input: &Matrix,
        mode: Mode,
        ws: &mut Workspace,
    ) -> Result<Matrix, TensorError>;

    /// Propagates `grad_output` (∂loss/∂output) to ∂loss/∂input, recording
    /// parameter gradients internally. The returned gradient matrix is
    /// taken from `ws`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MissingForwardCache`] if no train-mode forward
    /// pass preceded this call, or [`TensorError::ShapeMismatch`] if the
    /// gradient shape is wrong.
    fn backward(&mut self, grad_output: &Matrix, ws: &mut Workspace)
        -> Result<Matrix, TensorError>;

    /// [`backward`](Layer::backward) for the terminal layer of a backward
    /// pass: records parameter gradients without producing ∂loss/∂input,
    /// which the caller was going to discard. The default delegates to
    /// `backward` and recycles the result; layers with a separable
    /// input-gradient kernel (e.g. [`Dense`]) override it to skip that
    /// matmul entirely.
    ///
    /// # Errors
    ///
    /// Same contract as [`backward`](Layer::backward).
    fn backward_params_only(
        &mut self,
        grad_output: &Matrix,
        ws: &mut Workspace,
    ) -> Result<(), TensorError> {
        let grad_in = self.backward(grad_output, ws)?;
        ws.give(grad_in);
        Ok(())
    }

    /// Applies accumulated gradients with `cfg`, scaling the learning rate
    /// by `lr_scale` (the paper freezes front layers with `lr_scale = 0`).
    fn apply_update(&mut self, cfg: &SgdConfig, lr_scale: f32);

    /// Number of trainable parameters.
    fn param_count(&self) -> usize {
        0
    }

    /// Appends all parameters to `out` in a stable order.
    fn export_params(&self, out: &mut Vec<f32>) {
        let _ = out;
    }

    /// Reads parameters back in the order written by
    /// [`export_params`](Layer::export_params).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ParamCount`] if the cursor runs out of data.
    fn import_params(&mut self, cursor: &mut ParamCursor<'_>) -> Result<(), TensorError> {
        let _ = cursor;
        Ok(())
    }

    /// Output width for a given input width, used for shape validation when
    /// assembling networks.
    fn output_dim(&self, input_dim: usize) -> usize {
        input_dim
    }

    /// Deep-copies the layer behind a fresh `Box` (enables cloning whole
    /// networks, e.g. AMS's cloud-side shadow student).
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A fully-connected layer: `y = x · W + b`.
///
/// Weights are initialized with He-style scaling, appropriate for the ReLU
/// networks the detector uses. The forward pass is the bias-fused
/// [`Matrix::addmm_into`]; the backward pass uses the transpose-free
/// kernels ([`Matrix::matmul_transa_into`], [`Matrix::matmul_transb_into`])
/// writing into gradient matrices that persist across steps.
///
/// # Examples
///
/// ```
/// use shoggoth_tensor::{Dense, Layer, Matrix, Mode, Workspace};
/// use shoggoth_util::Rng;
///
/// let mut rng = Rng::seed_from(0);
/// let mut ws = Workspace::new();
/// let mut layer = Dense::new(4, 2, &mut rng);
/// let x = Matrix::zeros(3, 4);
/// let y = layer.forward(&x, Mode::Eval, &mut ws)?;
/// assert_eq!((y.rows(), y.cols()), (3, 2));
/// # Ok::<(), shoggoth_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    weights: Matrix,
    bias: Matrix,
    grad_weights: Matrix,
    grad_bias: Matrix,
    vel_weights: Matrix,
    vel_bias: Matrix,
    cached_input: Matrix,
    cache_valid: bool,
    in_dim: usize,
    out_dim: usize,
}

impl Dense {
    /// Creates a layer with He-initialized weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut shoggoth_util::Rng) -> Self {
        assert!(
            in_dim > 0 && out_dim > 0,
            "Dense dimensions must be positive"
        );
        let scale = (2.0 / in_dim as f64).sqrt();
        let weights = Matrix::from_fn(in_dim, out_dim, |_, _| rng.next_gaussian(0.0, scale) as f32);
        Self {
            grad_weights: Matrix::zeros(in_dim, out_dim),
            grad_bias: Matrix::zeros(1, out_dim),
            vel_weights: Matrix::zeros(in_dim, out_dim),
            vel_bias: Matrix::zeros(1, out_dim),
            bias: Matrix::zeros(1, out_dim),
            cached_input: Matrix::zeros(0, 0),
            cache_valid: false,
            weights,
            in_dim,
            out_dim,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Read access to the weight matrix (for tests and diagnostics).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }
}

impl Layer for Dense {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "dense"
    }

    fn forward(
        &mut self,
        input: &Matrix,
        mode: Mode,
        ws: &mut Workspace,
    ) -> Result<Matrix, TensorError> {
        if input.cols() != self.in_dim {
            return Err(TensorError::ShapeMismatch {
                context: "Dense::forward",
                expected: (input.rows(), self.in_dim),
                actual: (input.rows(), input.cols()),
            });
        }
        if mode == Mode::Train {
            self.cached_input.copy_from(input);
            self.cache_valid = true;
        }
        let mut out = ws.take(input.rows(), self.out_dim);
        input.addmm_into(&self.weights, &self.bias, &mut out)?;
        Ok(out)
    }

    fn backward(
        &mut self,
        grad_output: &Matrix,
        ws: &mut Workspace,
    ) -> Result<Matrix, TensorError> {
        if !self.cache_valid {
            return Err(TensorError::MissingForwardCache { layer: "dense" });
        }
        self.cache_valid = false;
        if grad_output.cols() != self.out_dim || grad_output.rows() != self.cached_input.rows() {
            return Err(TensorError::ShapeMismatch {
                context: "Dense::backward",
                expected: (self.cached_input.rows(), self.out_dim),
                actual: (grad_output.rows(), grad_output.cols()),
            });
        }
        self.cached_input
            .matmul_transa_into(grad_output, &mut self.grad_weights)?;
        grad_output.col_sum_into(&mut self.grad_bias);
        let mut grad_in = ws.take(grad_output.rows(), self.in_dim);
        grad_output.matmul_transb_into(&self.weights, &mut grad_in)?;
        Ok(grad_in)
    }

    fn backward_params_only(
        &mut self,
        grad_output: &Matrix,
        _ws: &mut Workspace,
    ) -> Result<(), TensorError> {
        if !self.cache_valid {
            return Err(TensorError::MissingForwardCache { layer: "dense" });
        }
        self.cache_valid = false;
        if grad_output.cols() != self.out_dim || grad_output.rows() != self.cached_input.rows() {
            return Err(TensorError::ShapeMismatch {
                context: "Dense::backward_params_only",
                expected: (self.cached_input.rows(), self.out_dim),
                actual: (grad_output.rows(), grad_output.cols()),
            });
        }
        // Identical parameter gradients to `backward`, minus the
        // `grad · Wᵀ` matmul that a terminal layer's caller discards.
        self.cached_input
            .matmul_transa_into(grad_output, &mut self.grad_weights)?;
        grad_output.col_sum_into(&mut self.grad_bias);
        Ok(())
    }

    fn apply_update(&mut self, cfg: &SgdConfig, lr_scale: f32) {
        let lr = cfg.learning_rate * lr_scale;
        if shoggoth_util::float::is_exact_zero(lr) {
            return;
        }
        kernels::sgd_momentum_step(
            self.weights.as_mut_slice(),
            self.grad_weights.as_slice(),
            self.vel_weights.as_mut_slice(),
            lr,
            cfg.momentum,
            cfg.weight_decay,
        );
        kernels::sgd_momentum_step(
            self.bias.as_mut_slice(),
            self.grad_bias.as_slice(),
            self.vel_bias.as_mut_slice(),
            lr,
            cfg.momentum,
            0.0, // bias is conventionally exempt from weight decay
        );
    }

    fn param_count(&self) -> usize {
        self.in_dim * self.out_dim + self.out_dim
    }

    fn export_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.weights.as_slice());
        out.extend_from_slice(self.bias.as_slice());
    }

    fn import_params(&mut self, cursor: &mut ParamCursor<'_>) -> Result<(), TensorError> {
        let w = cursor.take(self.in_dim * self.out_dim)?.to_vec();
        self.weights = Matrix::from_vec(self.in_dim, self.out_dim, w)?;
        let b = cursor.take(self.out_dim)?.to_vec();
        self.bias = Matrix::from_vec(1, self.out_dim, b)?;
        Ok(())
    }

    fn output_dim(&self, _input_dim: usize) -> usize {
        self.out_dim
    }
}

/// Rectified linear activation, `max(0, x)`.
#[derive(Debug, Clone)]
pub struct Relu {
    cached_input: Matrix,
    cache_valid: bool,
}

impl Relu {
    /// Creates the activation.
    pub fn new() -> Self {
        Self {
            cached_input: Matrix::zeros(0, 0),
            cache_valid: false,
        }
    }
}

impl Default for Relu {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Relu {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(
        &mut self,
        input: &Matrix,
        mode: Mode,
        ws: &mut Workspace,
    ) -> Result<Matrix, TensorError> {
        if mode == Mode::Train {
            self.cached_input.copy_from(input);
            self.cache_valid = true;
        }
        let mut out = ws.take(input.rows(), input.cols());
        for (o, &v) in out.as_mut_slice().iter_mut().zip(input.as_slice()) {
            *o = v.max(0.0);
        }
        Ok(out)
    }

    fn backward(
        &mut self,
        grad_output: &Matrix,
        ws: &mut Workspace,
    ) -> Result<Matrix, TensorError> {
        if !self.cache_valid {
            return Err(TensorError::MissingForwardCache { layer: "relu" });
        }
        self.cache_valid = false;
        if grad_output.rows() != self.cached_input.rows()
            || grad_output.cols() != self.cached_input.cols()
        {
            return Err(TensorError::ShapeMismatch {
                context: "Relu::backward",
                expected: (self.cached_input.rows(), self.cached_input.cols()),
                actual: (grad_output.rows(), grad_output.cols()),
            });
        }
        let mut grad_in = ws.take(grad_output.rows(), grad_output.cols());
        for ((o, &g), &x) in grad_in
            .as_mut_slice()
            .iter_mut()
            .zip(grad_output.as_slice())
            .zip(self.cached_input.as_slice())
        {
            // `g * mask` (not a select) keeps results bit-identical to the
            // previous hadamard-with-mask formulation.
            *o = g * if x > 0.0 { 1.0 } else { 0.0 };
        }
        Ok(grad_in)
    }

    fn apply_update(&mut self, _cfg: &SgdConfig, _lr_scale: f32) {}
}

/// Hyperbolic-tangent activation.
#[derive(Debug, Clone)]
pub struct Tanh {
    cached_output: Matrix,
    cache_valid: bool,
}

impl Tanh {
    /// Creates the activation.
    pub fn new() -> Self {
        Self {
            cached_output: Matrix::zeros(0, 0),
            cache_valid: false,
        }
    }
}

impl Default for Tanh {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Tanh {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "tanh"
    }

    fn forward(
        &mut self,
        input: &Matrix,
        mode: Mode,
        ws: &mut Workspace,
    ) -> Result<Matrix, TensorError> {
        let mut out = ws.take(input.rows(), input.cols());
        for (o, &v) in out.as_mut_slice().iter_mut().zip(input.as_slice()) {
            *o = v.tanh();
        }
        if mode == Mode::Train {
            self.cached_output.copy_from(&out);
            self.cache_valid = true;
        }
        Ok(out)
    }

    fn backward(
        &mut self,
        grad_output: &Matrix,
        ws: &mut Workspace,
    ) -> Result<Matrix, TensorError> {
        if !self.cache_valid {
            return Err(TensorError::MissingForwardCache { layer: "tanh" });
        }
        self.cache_valid = false;
        if grad_output.rows() != self.cached_output.rows()
            || grad_output.cols() != self.cached_output.cols()
        {
            return Err(TensorError::ShapeMismatch {
                context: "Tanh::backward",
                expected: (self.cached_output.rows(), self.cached_output.cols()),
                actual: (grad_output.rows(), grad_output.cols()),
            });
        }
        let mut grad_in = ws.take(grad_output.rows(), grad_output.cols());
        for ((o, &g), &y) in grad_in
            .as_mut_slice()
            .iter_mut()
            .zip(grad_output.as_slice())
            .zip(self.cached_output.as_slice())
        {
            *o = g * (1.0 - y * y);
        }
        Ok(grad_in)
    }

    fn apply_update(&mut self, _cfg: &SgdConfig, _lr_scale: f32) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use shoggoth_util::Rng;

    #[test]
    fn dense_forward_hand_checked() {
        let mut rng = Rng::seed_from(0);
        let mut ws = Workspace::new();
        let mut layer = Dense::new(2, 2, &mut rng);
        let mut cursor_data = vec![1.0, 2.0, 3.0, 4.0, 0.5, -0.5];
        let mut cursor = ParamCursor::new(&cursor_data);
        layer.import_params(&mut cursor).expect("params fit");
        cursor_data.clear();
        let x = Matrix::from_rows(&[&[1.0, 1.0]]).expect("valid");
        let y = layer.forward(&x, Mode::Eval, &mut ws).expect("shapes");
        // [1,1]·[[1,2],[3,4]] + [0.5,-0.5] = [4.5, 5.5]
        assert_eq!(y.row(0), &[4.5, 5.5]);
    }

    #[test]
    fn dense_rejects_wrong_input_width() {
        let mut rng = Rng::seed_from(0);
        let mut ws = Workspace::new();
        let mut layer = Dense::new(3, 2, &mut rng);
        let x = Matrix::zeros(1, 4);
        assert!(layer.forward(&x, Mode::Eval, &mut ws).is_err());
    }

    #[test]
    fn dense_backward_without_forward_errors() {
        let mut rng = Rng::seed_from(0);
        let mut ws = Workspace::new();
        let mut layer = Dense::new(2, 2, &mut rng);
        let g = Matrix::zeros(1, 2);
        assert!(matches!(
            layer.backward(&g, &mut ws),
            Err(TensorError::MissingForwardCache { .. })
        ));
    }

    #[test]
    fn dense_export_import_round_trip() {
        let mut rng = Rng::seed_from(1);
        let layer = Dense::new(3, 4, &mut rng);
        let mut buf = Vec::new();
        layer.export_params(&mut buf);
        assert_eq!(buf.len(), layer.param_count());
        let mut copy = Dense::new(3, 4, &mut rng);
        let mut cursor = ParamCursor::new(&buf);
        copy.import_params(&mut cursor).expect("params fit");
        assert_eq!(copy.weights(), layer.weights());
    }

    #[test]
    fn relu_clamps_and_masks_gradient() {
        let mut relu = Relu::new();
        let mut ws = Workspace::new();
        let x = Matrix::from_rows(&[&[-1.0, 2.0]]).expect("valid");
        let y = relu.forward(&x, Mode::Train, &mut ws).expect("shapes");
        assert_eq!(y.row(0), &[0.0, 2.0]);
        let g = Matrix::from_rows(&[&[5.0, 5.0]]).expect("valid");
        let gi = relu.backward(&g, &mut ws).expect("cached");
        assert_eq!(gi.row(0), &[0.0, 5.0]);
    }

    #[test]
    fn tanh_gradient_matches_identity() {
        let mut tanh = Tanh::new();
        let mut ws = Workspace::new();
        let x = Matrix::from_rows(&[&[0.0]]).expect("valid");
        tanh.forward(&x, Mode::Train, &mut ws).expect("shapes");
        let g = Matrix::from_rows(&[&[1.0]]).expect("valid");
        let gi = tanh.backward(&g, &mut ws).expect("cached");
        // d tanh(0)/dx = 1
        assert!((gi.get(0, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn param_cursor_over_read_errors() {
        let data = [1.0, 2.0];
        let mut cursor = ParamCursor::new(&data);
        assert!(cursor.take(2).is_ok());
        assert!(cursor.take(1).is_err());
        assert_eq!(cursor.consumed(), 2);
        assert_eq!(cursor.remaining(), 0);
    }

    /// Finite-difference gradient check for the dense layer through a
    /// scalar loss `L = sum(output^2) / 2`.
    #[test]
    fn dense_gradient_check() {
        let mut rng = Rng::seed_from(7);
        let mut ws = Workspace::new();
        let mut layer = Dense::new(3, 2, &mut rng);
        let x = Matrix::from_fn(4, 3, |_, _| rng.next_gaussian_f32(0.0, 1.0));

        // Analytic gradients.
        let y = layer.forward(&x, Mode::Train, &mut ws).expect("shapes");
        let grad_out = y.clone(); // dL/dy for L = sum(y^2)/2
        let grad_in = layer.backward(&grad_out, &mut ws).expect("cached");

        // Numeric gradient w.r.t. one input element.
        let eps = 1e-3f32;
        for probe in [(0usize, 0usize), (2, 1), (3, 2)] {
            let mut xp = x.clone();
            xp.set(probe.0, probe.1, x.get(probe.0, probe.1) + eps);
            let mut xm = x.clone();
            xm.set(probe.0, probe.1, x.get(probe.0, probe.1) - eps);
            let mut loss = |m: &Matrix, layer: &mut Dense| {
                let y = layer.forward(m, Mode::Eval, &mut ws).expect("shapes");
                y.as_slice().iter().map(|v| v * v).sum::<f32>() / 2.0
            };
            let numeric = (loss(&xp, &mut layer) - loss(&xm, &mut layer)) / (2.0 * eps);
            let analytic = grad_in.get(probe.0, probe.1);
            assert!(
                (numeric - analytic).abs() < 1e-2 * (1.0 + analytic.abs()),
                "probe {probe:?}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn dense_backward_matches_transposing_path() {
        // The transpose-free kernels must reproduce the textbook
        // expressions bit-for-bit.
        let mut rng = Rng::seed_from(11);
        let mut ws = Workspace::new();
        let mut layer = Dense::new(5, 3, &mut rng);
        let x = Matrix::from_fn(7, 5, |_, _| rng.next_gaussian_f32(0.0, 1.0));
        let y = layer.forward(&x, Mode::Train, &mut ws).expect("shapes");
        let g = Matrix::from_fn(7, 3, |_, _| rng.next_gaussian_f32(0.0, 1.0));
        let grad_in = layer.backward(&g, &mut ws).expect("cached");

        let ref_out = x
            .matmul(layer.weights())
            .and_then(|m| {
                // Rebuild the bias the layer used.
                let mut params = Vec::new();
                layer.export_params(&mut params);
                let bias = Matrix::from_vec(1, 3, params[15..].to_vec())?;
                m.add_row_broadcast(&bias)
            })
            .expect("shapes");
        assert_eq!(y, ref_out);
        let ref_grad_in = g.matmul(&layer.weights().transpose()).expect("shapes");
        assert_eq!(grad_in, ref_grad_in);
    }
}
