//! A minimal, self-contained neural-network training engine.
//!
//! The Shoggoth paper fine-tunes a lightweight detector *online, on the edge
//! device*, with latent replay injected at an interior layer (§III-B). No
//! mature training-capable ML crate exists offline, so this crate implements
//! exactly the machinery the reproduction needs, from scratch:
//!
//! * [`Matrix`] — dense row-major `f32` matrices (a mini-batch is a matrix).
//! * [`Dense`], [`Relu`], [`Tanh`] — layers with full backpropagation.
//! * [`BatchNorm`] and [`BatchRenorm`] — the paper replaces BN with Batch
//!   Renormalization (Ioffe 2017) for robust small-batch training.
//! * [`SgdConfig`] — mini-batch SGD with momentum, weight decay, and
//!   *per-layer learning-rate scaling* (the paper's freeze policy sets the
//!   front layers' rate to zero while BRN statistics keep adapting).
//! * [`Mlp`] — a sequential network supporting `forward_from` (inject replay
//!   activations at an interior layer) and `backward_to` (stop
//!   backpropagation at the replay layer when the front is frozen).
//!
//! Every layer's gradients are verified against finite differences in the
//! test suite.
//!
//! # The `finite-check` feature
//!
//! Long-running online learning (the paper's whole premise) can be
//! silently invalidated by one NaN gradient: the student keeps "training",
//! every subsequent mAP figure is garbage, and nothing crashes. With the
//! `finite-check` cargo feature enabled, the engine validates tensors
//! after every layer forward/backward pass, loss evaluation, and SGD
//! parameter step, and returns [`TensorError::NonFinite`] naming the
//! producing operation the moment the first NaN/Inf appears. The checks
//! cost one pass over each tensor and are compiled out entirely without
//! the feature. [`Matrix::ensure_finite`] is always available for manual
//! validation at API boundaries.
//!
//! # Examples
//!
//! Train a tiny classifier on XOR:
//!
//! ```
//! use shoggoth_tensor::{losses, Dense, Matrix, Mlp, Mode, SgdConfig, Tanh};
//! use shoggoth_util::Rng;
//!
//! let mut rng = Rng::seed_from(0);
//! let mut net = Mlp::new(vec![
//!     Box::new(Dense::new(2, 8, &mut rng)),
//!     Box::new(Tanh::new()),
//!     Box::new(Dense::new(8, 2, &mut rng)),
//! ]);
//! let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]])?;
//! let labels = [0usize, 1, 1, 0];
//! let sgd = SgdConfig::new(0.1);
//! for _ in 0..500 {
//!     let logits = net.forward(&x, Mode::Train)?;
//!     let (_, grad) = losses::softmax_cross_entropy(&logits, &labels)?;
//!     net.backward(&grad)?;
//!     net.step(&sgd)?;
//! }
//! let logits = net.forward(&x, Mode::Eval)?;
//! assert_eq!(logits.row_argmax(), vec![0, 1, 1, 0]);
//! # Ok::<(), shoggoth_tensor::TensorError>(())
//! ```

pub mod kernels;
pub mod layer;
pub mod losses;
pub mod matrix;
pub mod net;
pub mod norm;
pub mod sgd;
pub mod workspace;

pub use layer::{Dense, Layer, Mode, ParamCursor, Relu, Tanh};
pub use matrix::Matrix;
pub use net::Mlp;
pub use norm::{BatchNorm, BatchRenorm};
pub use sgd::SgdConfig;
pub use workspace::Workspace;

/// Errors produced by tensor operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TensorError {
    /// Two shapes that had to agree did not.
    ShapeMismatch {
        /// The operation that failed.
        context: &'static str,
        /// The shape (or dimension pair) that was required.
        expected: (usize, usize),
        /// The shape that was supplied.
        actual: (usize, usize),
    },
    /// A parameter buffer was too short or too long for the network.
    ParamCount {
        /// Parameters the network requires.
        expected: usize,
        /// Parameters supplied.
        actual: usize,
    },
    /// `backward` was called without a preceding `forward` in train mode.
    MissingForwardCache {
        /// The layer that had no cache.
        layer: &'static str,
    },
    /// A tensor contains NaN or ±Inf — the training state is poisoned.
    ///
    /// Produced by [`Matrix::ensure_finite`] and, when the `finite-check`
    /// feature is enabled, by the sanitizer hooks after every layer
    /// forward/backward, loss evaluation, and SGD step. The `op` names the
    /// operation that *produced* the poisoned values, so a NaN gradient is
    /// caught at its source instead of surfacing frames later as a
    /// silently degraded mAP.
    NonFinite {
        /// The operation whose output first went non-finite.
        op: &'static str,
        /// Row of the first offending element.
        row: usize,
        /// Column of the first offending element.
        col: usize,
        /// The offending value (NaN or ±Inf).
        value: f32,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "shape mismatch in {context}: expected {}x{}, got {}x{}",
                expected.0, expected.1, actual.0, actual.1
            ),
            TensorError::ParamCount { expected, actual } => {
                write!(
                    f,
                    "parameter count mismatch: expected {expected}, got {actual}"
                )
            }
            TensorError::MissingForwardCache { layer } => {
                write!(
                    f,
                    "backward called on {layer} without a cached forward pass"
                )
            }
            TensorError::NonFinite {
                op,
                row,
                col,
                value,
            } => write!(
                f,
                "poisoned tensor: {op} produced non-finite value {value} at ({row}, {col})"
            ),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let err = TensorError::ShapeMismatch {
            context: "test",
            expected: (2, 3),
            actual: (4, 5),
        };
        assert_eq!(
            err.to_string(),
            "shape mismatch in test: expected 2x3, got 4x5"
        );
        let err = TensorError::ParamCount {
            expected: 10,
            actual: 9,
        };
        assert!(err.to_string().contains("expected 10"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
