//! Mini-batch SGD configuration.

use serde::{Deserialize, Serialize};

/// Hyper-parameters for stochastic gradient descent with momentum.
///
/// The paper's adaptive training "decreases the learning rate of all layers
/// before the replay layer and allows full learning of all layers after" —
/// that per-layer scaling is applied at [`crate::Mlp::step_scaled`], not
/// here; this struct carries the global rate.
///
/// # Examples
///
/// ```
/// use shoggoth_tensor::SgdConfig;
///
/// let sgd = SgdConfig::new(0.05).with_momentum(0.9).with_weight_decay(1e-4);
/// assert_eq!(sgd.learning_rate, 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Base learning rate applied to every parameter.
    pub learning_rate: f32,
    /// Momentum coefficient in `[0, 1)`; `0.0` disables momentum.
    pub momentum: f32,
    /// L2 weight-decay coefficient.
    pub weight_decay: f32,
}

impl SgdConfig {
    /// Creates a configuration with the given learning rate and no momentum
    /// or weight decay.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate` is negative or non-finite.
    pub fn new(learning_rate: f32) -> Self {
        assert!(
            learning_rate.is_finite() && learning_rate >= 0.0,
            "learning rate must be a non-negative finite number"
        );
        Self {
            learning_rate,
            momentum: 0.0,
            weight_decay: 0.0,
        }
    }

    /// Sets the momentum coefficient.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= momentum < 1`.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        self.momentum = momentum;
        self
    }

    /// Sets the L2 weight-decay coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `weight_decay` is negative or non-finite.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        assert!(
            weight_decay.is_finite() && weight_decay >= 0.0,
            "weight decay must be a non-negative finite number"
        );
        self.weight_decay = weight_decay;
        self
    }
}

impl Default for SgdConfig {
    /// A conservative default: `lr = 0.01`, no momentum, no weight decay.
    fn default() -> Self {
        Self::new(0.01)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let sgd = SgdConfig::new(0.1)
            .with_momentum(0.9)
            .with_weight_decay(0.001);
        assert_eq!(sgd.momentum, 0.9);
        assert_eq!(sgd.weight_decay, 0.001);
    }

    #[test]
    fn default_matches_new() {
        assert_eq!(SgdConfig::default(), SgdConfig::new(0.01));
    }

    #[test]
    #[should_panic(expected = "momentum must be in [0, 1)")]
    fn rejects_momentum_of_one() {
        SgdConfig::new(0.1).with_momentum(1.0);
    }

    #[test]
    #[should_panic(expected = "learning rate must be a non-negative finite number")]
    fn rejects_negative_learning_rate() {
        SgdConfig::new(-0.1);
    }
}
