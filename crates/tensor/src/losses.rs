//! Loss functions returning `(loss, gradient)` pairs.
//!
//! The detector's classification head trains with softmax cross-entropy over
//! object classes plus a background class (pseudo-labels per the paper's
//! Eq. 1 map positive detector outputs to their class and negative samples
//! to background). The scene-change score φ (§III-C) reuses the same loss
//! notion between consecutive teacher outputs.

use crate::{Matrix, TensorError};

/// Numerically-stable row-wise softmax.
///
/// # Examples
///
/// ```
/// use shoggoth_tensor::{losses, Matrix};
///
/// let logits = Matrix::from_rows(&[&[0.0, 0.0]])?;
/// let p = losses::softmax(&logits);
/// assert!((p.get(0, 0) - 0.5).abs() < 1e-6);
/// # Ok::<(), shoggoth_tensor::TensorError>(())
/// ```
pub fn softmax(logits: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(logits.rows(), logits.cols());
    for r in 0..logits.rows() {
        let row = logits.row(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        let out_row = out.row_mut(r);
        for (o, &v) in out_row.iter_mut().zip(row) {
            let e = (v - max).exp();
            *o = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for o in out_row.iter_mut() {
            *o *= inv;
        }
    }
    out
}

/// Mean softmax cross-entropy over a batch, with gradient w.r.t. logits.
///
/// `labels[i]` is the target class index of row `i`. The returned gradient
/// is `(softmax(logits) − one_hot(labels)) / batch`, ready to feed into
/// [`crate::Mlp::backward`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `labels.len()` differs from the
/// number of rows or any label is out of range.
pub fn softmax_cross_entropy(
    logits: &Matrix,
    labels: &[usize],
) -> Result<(f32, Matrix), TensorError> {
    let mut grad = Matrix::zeros(0, 0);
    let loss = softmax_cross_entropy_into(logits, labels, &mut grad)?;
    Ok((loss, grad))
}

/// [`softmax_cross_entropy`] writing the gradient into `grad` (resized,
/// storage reused) — the allocation-free form for training loops that keep
/// a persistent gradient matrix. Loss and gradient values are bit-identical
/// to the allocating form.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `labels.len()` differs from the
/// number of rows or any label is out of range.
pub fn softmax_cross_entropy_into(
    logits: &Matrix,
    labels: &[usize],
    grad: &mut Matrix,
) -> Result<f32, TensorError> {
    if labels.len() != logits.rows() {
        return Err(TensorError::ShapeMismatch {
            context: "losses::softmax_cross_entropy",
            expected: (logits.rows(), 1),
            actual: (labels.len(), 1),
        });
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= logits.cols()) {
        return Err(TensorError::ShapeMismatch {
            context: "losses::softmax_cross_entropy (label out of range)",
            expected: (1, logits.cols()),
            actual: (1, bad + 1),
        });
    }
    // Softmax computed directly into `grad` (same per-row recipe as
    // `softmax`), then turned into the gradient in place.
    grad.resize_zeroed(logits.rows(), logits.cols());
    for r in 0..logits.rows() {
        let row = logits.row(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        let out_row = grad.row_mut(r);
        for (o, &v) in out_row.iter_mut().zip(row) {
            let e = (v - max).exp();
            *o = e;
            sum += e;
        }
        let inv = 1.0 / sum;
        for o in out_row.iter_mut() {
            *o *= inv;
        }
    }
    let n = logits.rows() as f32;
    let mut loss = 0.0;
    for (r, &label) in labels.iter().enumerate() {
        let p = grad.get(r, label).max(1e-12);
        loss -= p.ln();
        grad.set(r, label, grad.get(r, label) - 1.0);
    }
    let loss = loss / n;
    let inv_n = 1.0 / n;
    for v in grad.as_mut_slice() {
        *v *= inv_n;
    }
    #[cfg(feature = "finite-check")]
    {
        if !loss.is_finite() {
            return Err(TensorError::NonFinite {
                op: "losses::softmax_cross_entropy",
                row: 0,
                col: 0,
                value: loss,
            });
        }
        grad.ensure_finite("losses::softmax_cross_entropy")?;
    }
    Ok(loss)
}

/// Mean squared error `mean((pred − target)²)` with gradient w.r.t. `pred`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn mse(pred: &Matrix, target: &Matrix) -> Result<(f32, Matrix), TensorError> {
    let diff = pred.sub(target)?;
    let n = (pred.rows() * pred.cols()).max(1) as f32;
    let loss = diff.as_slice().iter().map(|v| v * v).sum::<f32>() / n;
    let grad = diff.scaled(2.0 / n);
    #[cfg(feature = "finite-check")]
    {
        if !loss.is_finite() {
            return Err(TensorError::NonFinite {
                op: "losses::mse",
                row: 0,
                col: 0,
                value: loss,
            });
        }
        grad.ensure_finite("losses::mse")?;
    }
    Ok((loss, grad))
}

/// Classification accuracy of logits against labels.
///
/// Returns `0.0` for an empty batch.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the number of rows.
pub fn accuracy(logits: &Matrix, labels: &[usize]) -> f64 {
    assert_eq!(labels.len(), logits.rows(), "label count must match batch");
    if labels.is_empty() {
        return 0.0;
    }
    let pred = logits.row_argmax();
    let correct = pred.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]).expect("valid");
        let p = softmax(&logits);
        for r in 0..2 {
            let sum: f32 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = Matrix::from_rows(&[&[1000.0, 1001.0]]).expect("valid");
        let p = softmax(&a);
        assert!(p.as_slice().iter().all(|v| v.is_finite()));
        assert!((p.get(0, 1) - 1.0 / (1.0 + (-1.0f32).exp())).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Matrix::from_rows(&[&[20.0, 0.0]]).expect("valid");
        let (loss, _) = softmax_cross_entropy(&logits, &[0]).expect("shapes");
        assert!(loss < 1e-6);
    }

    #[test]
    fn cross_entropy_of_uniform_is_ln_classes() {
        let logits = Matrix::zeros(1, 4);
        let (loss, _) = softmax_cross_entropy(&logits, &[2]).expect("shapes");
        assert!((loss - 4.0f32.ln()).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = Matrix::from_rows(&[&[0.3, -0.7, 1.2], &[2.0, 0.1, -1.0]]).expect("valid");
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels).expect("shapes");
        let eps = 1e-3f32;
        for probe in [(0usize, 0usize), (0, 2), (1, 1)] {
            let mut lp = logits.clone();
            lp.set(probe.0, probe.1, logits.get(probe.0, probe.1) + eps);
            let mut lm = logits.clone();
            lm.set(probe.0, probe.1, logits.get(probe.0, probe.1) - eps);
            let (loss_p, _) = softmax_cross_entropy(&lp, &labels).expect("shapes");
            let (loss_m, _) = softmax_cross_entropy(&lm, &labels).expect("shapes");
            let numeric = (loss_p - loss_m) / (2.0 * eps);
            let analytic = grad.get(probe.0, probe.1);
            assert!(
                (numeric - analytic).abs() < 1e-3,
                "probe {probe:?}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn cross_entropy_rejects_bad_labels() {
        let logits = Matrix::zeros(2, 3);
        assert!(softmax_cross_entropy(&logits, &[0]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 3]).is_err());
    }

    #[test]
    fn cross_entropy_into_matches_allocating_form() {
        let logits = Matrix::from_rows(&[&[0.3, -0.7, 1.2], &[2.0, 0.1, -1.0]]).expect("valid");
        let labels = [2usize, 0];
        let (loss_a, grad_a) = softmax_cross_entropy(&logits, &labels).expect("shapes");
        let mut grad_b = Matrix::zeros(5, 1); // wrong shape on purpose: must be resized
        let loss_b = softmax_cross_entropy_into(&logits, &labels, &mut grad_b).expect("shapes");
        assert_eq!(loss_a, loss_b);
        assert_eq!(grad_a, grad_b);
    }

    #[test]
    fn mse_hand_checked() {
        let pred = Matrix::from_rows(&[&[1.0, 2.0]]).expect("valid");
        let target = Matrix::from_rows(&[&[0.0, 0.0]]).expect("valid");
        let (loss, grad) = mse(&pred, &target).expect("shapes");
        assert_eq!(loss, 2.5);
        assert_eq!(grad.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Matrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.8], &[0.6, 0.4]]).expect("valid");
        assert_eq!(accuracy(&logits, &[0, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&Matrix::zeros(0, 2), &[]), 0.0);
    }
}
