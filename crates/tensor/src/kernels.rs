//! Flat-slice compute kernels behind the [`crate::Matrix`] hot-path ops.
//!
//! Every kernel writes into caller-provided storage and allocates nothing,
//! so the training loop can run steady-state out of a
//! [`crate::Workspace`]. Dimension checking happens at the `Matrix`
//! wrappers; the kernels trust their arguments (slices of exactly the
//! documented lengths) and keep the inner loops branch-free.
//!
//! Summation orders are part of the contract: each kernel accumulates in
//! the same order as the reference expression named in its docs, so
//! results are bit-identical to the allocating path (`matmul`,
//! `transpose` + `matmul`, `matmul` + `add_row_broadcast`). The
//! determinism tests and proptests in `tests/kernels_prop.rs` pin this
//! down to exact `f32` equality.

/// Column-block width of [`matmul_transb`]'s tiled inner loop. 64 columns
/// of `f32` are 256 bytes — a handful of cache lines per visited row, so a
/// block of `b` rows stays resident while the block is swept.
const TRANSB_BLOCK: usize = 64;

/// `out = a · b` for row-major `a` (`m × k`), `b` (`k × n`), `out`
/// (`m × n`).
///
/// i-k-j loop order: the inner loop walks one row of `b` and one row of
/// `out` contiguously. Accumulation over `k` is in increasing order,
/// matching the classic triple loop. `out` is overwritten.
pub fn matmul(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    out.fill(0.0);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// `out = a · bᵀ` for row-major `a` (`m × k`), `b` (`n × k`), `out`
/// (`m × n`) — the backward-pass kernel (`grad_input = grad_output · Wᵀ`)
/// that avoids materializing the transpose.
///
/// Both operands are traversed along contiguous rows, as a blocked dot
/// product: `b`'s rows are visited in blocks of [`TRANSB_BLOCK`] so each
/// block of `b` is reused across every row of `a` while cache-resident.
/// Inside a block, four output columns are computed at once: a lone dot
/// product is a sequential float-add chain bound by FP-add latency, while
/// four independent accumulators keep the multiplier busy. Each
/// `out[i][j]` still accumulates over `k` in increasing order — exactly
/// the order `matmul(a, transpose(b))` uses — so results are bit-identical
/// to the transposing path.
pub fn matmul_transb(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for jb in (0..n).step_by(TRANSB_BLOCK) {
        let jend = (jb + TRANSB_BLOCK).min(n);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            let mut j = jb;
            while j + 4 <= jend {
                let b0 = &b[j * k..(j + 1) * k];
                let b1 = &b[(j + 1) * k..(j + 2) * k];
                let b2 = &b[(j + 2) * k..(j + 3) * k];
                let b3 = &b[(j + 3) * k..(j + 4) * k];
                let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                for ((((&av, &v0), &v1), &v2), &v3) in a_row.iter().zip(b0).zip(b1).zip(b2).zip(b3)
                {
                    s0 += av * v0;
                    s1 += av * v1;
                    s2 += av * v2;
                    s3 += av * v3;
                }
                out_row[j] = s0;
                out_row[j + 1] = s1;
                out_row[j + 2] = s2;
                out_row[j + 3] = s3;
                j += 4;
            }
            for jj in j..jend {
                let b_row = &b[jj * k..(jj + 1) * k];
                let mut acc = 0.0f32;
                for (&av, &bv) in a_row.iter().zip(b_row) {
                    acc += av * bv;
                }
                out_row[jj] = acc;
            }
        }
    }
}

/// `out = aᵀ · b` for row-major `a` (`m × k`), `b` (`m × n`), `out`
/// (`k × n`) — the gradient-of-weights kernel
/// (`grad_W = inputᵀ · grad_output`) that avoids materializing the
/// transpose.
///
/// The outer loop walks the shared `m` dimension so both operands are read
/// along contiguous rows; each `out[c][j]` accumulates over the batch rows
/// in increasing order, matching `matmul(transpose(a), b)` bit-for-bit.
pub fn matmul_transa(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    out.fill(0.0);
    for r in 0..m {
        let a_row = &a[r * k..(r + 1) * k];
        let b_row = &b[r * n..(r + 1) * n];
        for (c, &av) in a_row.iter().enumerate() {
            let out_row = &mut out[c * n..(c + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Adds the row vector `bias` (`n` wide) to every row of `out` (`m × n`)
/// in place — the fusion tail of `addmm` (`x·W + b`).
pub fn add_bias_rows(out: &mut [f32], bias: &[f32], m: usize, n: usize) {
    for i in 0..m {
        let out_row = &mut out[i * n..(i + 1) * n];
        for (o, &bv) in out_row.iter_mut().zip(bias) {
            *o += bv;
        }
    }
}

/// Fused flat-parameter SGD-with-momentum step over one parameter block:
/// `v ← momentum·v − lr·(g + weight_decay·p); p ← p + v`.
///
/// One pass over three equal-length flat slices — no temporaries, no
/// per-matrix dispatch. All three slices must have the same length; excess
/// elements in a longer slice are ignored (the `Matrix` wrappers always
/// pass equal-shape parameter/gradient/velocity storage).
pub fn sgd_momentum_step(
    params: &mut [f32],
    grads: &[f32],
    velocity: &mut [f32],
    lr: f32,
    momentum: f32,
    weight_decay: f32,
) {
    for ((p, &g), v) in params.iter_mut().zip(grads).zip(velocity) {
        let grad = g + weight_decay * *p;
        *v = momentum * *v - lr * grad;
        *p += *v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_hand_checked() {
        // [[1,2],[3,4]] · [[5,6],[7,8]] = [[19,22],[43,50]]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut out = [0.0f32; 4];
        matmul(&a, &b, &mut out, 2, 2, 2);
        assert_eq!(out, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transb_matches_explicit_transpose() {
        // a (1×3) · bᵀ with b (2×3): out[0][j] = dot(a, b.row(j)).
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let mut out = [0.0f32; 2];
        matmul_transb(&a, &b, &mut out, 1, 3, 2);
        assert_eq!(out, [32.0, 50.0]);
    }

    #[test]
    fn transa_matches_explicit_transpose() {
        // aᵀ (2×1) · b (1×2) from a (1×2), b (1×2).
        let a = [2.0, 3.0];
        let b = [5.0, 7.0];
        let mut out = [0.0f32; 4];
        matmul_transa(&a, &b, &mut out, 1, 2, 2);
        assert_eq!(out, [10.0, 14.0, 15.0, 21.0]);
    }

    #[test]
    fn transb_blocking_covers_wide_outputs() {
        // n wider than one block exercises the jb loop.
        let m = 3;
        let k = 5;
        let n = TRANSB_BLOCK + 17;
        let a: Vec<f32> = (0..m * k).map(|i| i as f32 * 0.25 - 1.0).collect();
        let b: Vec<f32> = (0..n * k).map(|i| (i % 13) as f32 * 0.5 - 3.0).collect();
        let mut fast = vec![0.0f32; m * n];
        matmul_transb(&a, &b, &mut fast, m, k, n);
        // Reference: materialized transpose through the plain kernel.
        let mut bt = vec![0.0f32; k * n];
        for r in 0..n {
            for c in 0..k {
                bt[c * n + r] = b[r * k + c];
            }
        }
        let mut slow = vec![0.0f32; m * n];
        matmul(&a, &bt, &mut slow, m, k, n);
        assert_eq!(fast, slow);
    }

    #[test]
    fn bias_rows_broadcast() {
        let mut out = [0.0, 0.0, 1.0, 1.0];
        add_bias_rows(&mut out, &[10.0, 20.0], 2, 2);
        assert_eq!(out, [10.0, 20.0, 11.0, 21.0]);
    }

    #[test]
    fn sgd_step_hand_checked() {
        let mut p = [1.0f32, -2.0];
        let g = [0.5f32, 0.25];
        let mut v = [0.0f32, 0.1];
        sgd_momentum_step(&mut p, &g, &mut v, 0.1, 0.9, 0.0);
        // v0 = -0.05, p0 = 0.95; v1 = 0.09 - 0.025 = 0.065, p1 = -1.935
        assert_eq!(v, [-0.05, 0.065]);
        assert_eq!(p, [0.95, -1.935]);
    }

    #[test]
    fn sgd_step_applies_weight_decay() {
        let mut p = [2.0f32];
        let g = [0.0f32];
        let mut v = [0.0f32];
        sgd_momentum_step(&mut p, &g, &mut v, 0.5, 0.0, 0.1);
        // grad = 0 + 0.1·2 = 0.2; v = -0.1; p = 1.9
        assert_eq!(p, [1.9]);
    }
}
