//! Reusable scratch-matrix pool for allocation-free training.
//!
//! A [`Workspace`] owns a free list of `Vec<f32>` buffers. Layers take
//! their output matrices from the workspace ([`Workspace::take`]) and the
//! owning [`crate::Mlp`] gives intermediate activations back
//! ([`Workspace::give`]) as soon as the next layer has consumed them, so
//! a steady-state forward/backward/step cycle recycles the same handful
//! of buffers forever.
//!
//! Ownership rules (see DESIGN.md §Performance architecture):
//!
//! * the network owns the workspace; callers never construct one;
//! * matrices returned by `Mlp` forward/backward entry points carry
//!   workspace buffers — callers that loop should hand them back via
//!   [`crate::Mlp::recycle`] to keep the steady state allocation-free;
//! * dropping such a matrix is always safe; it merely costs the pool one
//!   buffer, which the next `take` re-allocates.
//!
//! [`Workspace::allocations`] counts every fresh heap allocation (new
//! buffer or capacity growth), which is what the workspace-reuse tests
//! assert goes flat after warm-up.

use crate::Matrix;

/// A pool of reusable `f32` buffers handed out as [`Matrix`] values.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// Returned buffers, available for reuse.
    free: Vec<Vec<f32>>,
    /// Fresh heap allocations performed (buffer creations plus capacity
    /// growth on reuse).
    allocations: usize,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a `rows × cols` zero-filled matrix, reusing the largest free
    /// buffer when one exists. Counts toward [`Workspace::allocations`]
    /// only when fresh heap memory is needed (no free buffer, or the
    /// largest free buffer is too small).
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let len = rows * cols;
        let mut buf = match self.pop_largest() {
            Some(buf) => buf,
            None => {
                self.allocations += 1;
                Vec::with_capacity(len)
            }
        };
        if buf.capacity() < len {
            self.allocations += 1;
        }
        buf.clear();
        buf.resize(len, 0.0);
        Matrix::from_parts(rows, cols, buf)
    }

    /// Returns a matrix's buffer to the pool for reuse.
    pub fn give(&mut self, m: Matrix) {
        self.free.push(m.into_vec());
    }

    /// Fresh heap allocations performed so far. Flat across iterations ⇔
    /// the steady state is allocation-free.
    pub fn allocations(&self) -> usize {
        self.allocations
    }

    /// Number of buffers currently available for reuse.
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }

    /// Removes and returns the free buffer with the largest capacity.
    fn pop_largest(&mut self) -> Option<Vec<f32>> {
        let best = self
            .free
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i)?;
        Some(self.free.swap_remove(best))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_take_reuses_the_buffer() {
        let mut ws = Workspace::new();
        let m = ws.take(4, 4);
        assert_eq!(ws.allocations(), 1);
        ws.give(m);
        let m = ws.take(4, 4);
        assert_eq!(ws.allocations(), 1, "same-size reuse must not allocate");
        ws.give(m);
        let m = ws.take(2, 3);
        assert_eq!(ws.allocations(), 1, "smaller reuse must not allocate");
        assert_eq!((m.rows(), m.cols()), (2, 3));
    }

    #[test]
    fn growth_counts_as_allocation() {
        let mut ws = Workspace::new();
        let m = ws.take(2, 2);
        ws.give(m);
        let _big = ws.take(8, 8);
        assert_eq!(ws.allocations(), 2, "capacity growth is an allocation");
    }

    #[test]
    fn taken_matrices_are_zeroed() {
        let mut ws = Workspace::new();
        let mut m = ws.take(2, 2);
        m.as_mut_slice().fill(7.0);
        ws.give(m);
        let m = ws.take(2, 2);
        assert!(m.as_slice().iter().all(|&v| v == 0.0)); // lint:allow(float-eq) exact zero fill
    }

    #[test]
    fn largest_buffer_is_preferred() {
        let mut ws = Workspace::new();
        let small = ws.take(1, 2);
        let large = ws.take(10, 10);
        ws.give(small);
        ws.give(large);
        // A mid-size request must grab the 100-capacity buffer, not grow
        // the 2-capacity one.
        let m = ws.take(5, 5);
        assert_eq!(ws.allocations(), 2);
        ws.give(m);
        assert_eq!(ws.free_buffers(), 2);
    }
}
