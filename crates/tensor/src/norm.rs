//! Batch Normalization and Batch Renormalization layers.
//!
//! The paper (§III-B) replaces BN with Batch Renormalization (Ioffe, 2017)
//! because adaptive training runs with fine-grained mini-batches whose
//! statistics are noisy; BRN corrects the batch statistics toward the
//! running moments with the clipped `r`/`d` factors, "controlling internal
//! covariate shift, hence making learning with fine-grained batches faster
//! and more robust."
//!
//! Both layers share the affine `γ`/`β` parameters and running-moment
//! machinery; they differ only in the train-time normalization statistics.
//! All per-call scratch (batch moments, effective scale/shift, backward σ)
//! lives in persistent vectors overwritten in place, so steady-state
//! training through these layers performs no heap allocation.

use crate::layer::{Layer, Mode, ParamCursor};
use crate::workspace::Workspace;
use crate::{kernels, Matrix, SgdConfig, TensorError};

const EPS: f32 = 1e-5;

/// Internal state shared by [`BatchNorm`] and [`BatchRenorm`].
#[derive(Debug, Clone)]
struct NormCore {
    dim: usize,
    gamma: Matrix,
    beta: Matrix,
    grad_gamma: Matrix,
    grad_beta: Matrix,
    vel_gamma: Matrix,
    vel_beta: Matrix,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    /// Momentum of the running-moment EMA update.
    stat_momentum: f32,
    /// Cache for backward: normalized activations `x̂` (persistent storage,
    /// overwritten each train-mode forward).
    cached_xhat: Matrix,
    /// Cache for backward: centered inputs `x - μ_B`.
    cached_centered: Matrix,
    /// Cache for backward: per-feature `r / σ_B` effective scale.
    cached_scale: Vec<f32>,
    /// Whether the caches hold a live train-mode forward pass.
    cache_valid: bool,
    /// Scratch: per-feature batch mean (or running mean in eval).
    stat_mean: Vec<f32>,
    /// Scratch: per-feature biased batch variance.
    stat_var: Vec<f32>,
    /// Scratch: per-feature normalization scale.
    stat_scale: Vec<f32>,
    /// Scratch: per-feature normalization shift (BRN's `d`; zero for BN).
    stat_shift: Vec<f32>,
    /// Scratch: per-feature σ_B recomputed during backward.
    stat_sigma: Vec<f32>,
}

impl NormCore {
    fn new(dim: usize) -> Self {
        assert!(dim > 0, "normalization dimension must be positive");
        Self {
            dim,
            gamma: Matrix::filled(1, dim, 1.0),
            beta: Matrix::zeros(1, dim),
            grad_gamma: Matrix::zeros(1, dim),
            grad_beta: Matrix::zeros(1, dim),
            vel_gamma: Matrix::zeros(1, dim),
            vel_beta: Matrix::zeros(1, dim),
            running_mean: vec![0.0; dim],
            running_var: vec![1.0; dim],
            stat_momentum: 0.1,
            cached_xhat: Matrix::zeros(0, 0),
            cached_centered: Matrix::zeros(0, 0),
            cached_scale: Vec::new(),
            cache_valid: false,
            stat_mean: Vec::new(),
            stat_var: Vec::new(),
            stat_scale: Vec::new(),
            stat_shift: Vec::new(),
            stat_sigma: Vec::new(),
        }
    }

    fn check_width(&self, input: &Matrix, context: &'static str) -> Result<(), TensorError> {
        if input.cols() != self.dim {
            return Err(TensorError::ShapeMismatch {
                context,
                expected: (input.rows(), self.dim),
                actual: (input.rows(), input.cols()),
            });
        }
        Ok(())
    }

    /// Per-feature batch mean and (biased) variance, written into
    /// `stat_mean` / `stat_var`.
    fn batch_moments(&mut self, input: &Matrix) {
        let n = input.rows().max(1) as f32;
        self.stat_mean.clear();
        self.stat_mean.resize(self.dim, 0.0);
        for r in 0..input.rows() {
            for (m, &v) in self.stat_mean.iter_mut().zip(input.row(r)) {
                *m += v;
            }
        }
        for m in &mut self.stat_mean {
            *m /= n;
        }
        self.stat_var.clear();
        self.stat_var.resize(self.dim, 0.0);
        for r in 0..input.rows() {
            for ((v, &x), &m) in self
                .stat_var
                .iter_mut()
                .zip(input.row(r))
                .zip(&self.stat_mean)
            {
                let d = x - m;
                *v += d * d;
            }
        }
        for v in &mut self.stat_var {
            *v /= n;
        }
    }

    /// Loads eval-mode statistics (running moments) into the scratch stats.
    fn load_eval_stats(&mut self) {
        self.stat_mean.clear();
        self.stat_mean.extend_from_slice(&self.running_mean);
        self.stat_scale.clear();
        self.stat_scale
            .extend(self.running_var.iter().map(|&v| 1.0 / (v + EPS).sqrt()));
        self.stat_shift.clear();
        self.stat_shift.resize(self.dim, 0.0);
    }

    fn update_running(&mut self) {
        let m = self.stat_momentum;
        for i in 0..self.dim {
            self.running_mean[i] = (1.0 - m) * self.running_mean[i] + m * self.stat_mean[i];
            self.running_var[i] = (1.0 - m) * self.running_var[i] + m * self.stat_var[i];
        }
    }

    /// Normalizes with the scratch per-feature stats:
    /// `x̂ = (x − μ) * scale + shift`, then `y = γ·x̂ + β`.
    /// Caches everything `backward` needs when `cache` is set.
    fn normalize_from_stats(&mut self, input: &Matrix, cache: bool, ws: &mut Workspace) -> Matrix {
        let rows = input.rows();
        let dim = self.dim;
        let mut out = ws.take(rows, dim);
        if cache {
            self.cached_centered.resize_zeroed(rows, dim);
            self.cached_xhat.resize_zeroed(rows, dim);
            self.cached_scale.clear();
            self.cached_scale.extend_from_slice(&self.stat_scale);
            self.cache_valid = true;
        }
        for r in 0..rows {
            let in_row = input.row(r);
            let out_row = out.row_mut(r);
            for (c, (&x, o)) in in_row.iter().zip(out_row.iter_mut()).enumerate() {
                let cen = x - self.stat_mean[c];
                let xh = cen * self.stat_scale[c] + self.stat_shift[c];
                *o = self.gamma.as_slice()[c] * xh + self.beta.as_slice()[c];
            }
            if cache {
                let centered_row = self.cached_centered.row_mut(r);
                let xhat_row = self.cached_xhat.row_mut(r);
                for (c, (&x, (cen_o, xh_o))) in in_row
                    .iter()
                    .zip(centered_row.iter_mut().zip(xhat_row.iter_mut()))
                    .enumerate()
                {
                    let cen = x - self.stat_mean[c];
                    *cen_o = cen;
                    *xh_o = cen * self.stat_scale[c] + self.stat_shift[c];
                }
            }
        }
        out
    }

    /// Shared backward pass.
    ///
    /// With stop-gradient on the renorm correction factors (per Ioffe 2017),
    /// both BN and BRN reduce to the classic BN input gradient scaled by the
    /// cached effective per-feature scale `s = r/σ_B` (`r = 1` for BN):
    ///
    /// `dL/dx = s · (ĝ − mean(ĝ) − x̂_c · mean(ĝ ⊙ x̂_c))`
    ///
    /// where `ĝ = γ ⊙ dL/dy` and `x̂_c = centered/σ_B` is the *uncorrected*
    /// normalized input.
    fn backward(
        &mut self,
        grad_output: &Matrix,
        ws: &mut Workspace,
    ) -> Result<Matrix, TensorError> {
        if !self.cache_valid {
            return Err(TensorError::MissingForwardCache {
                layer: "batch-norm",
            });
        }
        self.cache_valid = false;
        if grad_output.rows() != self.cached_xhat.rows() || grad_output.cols() != self.dim {
            return Err(TensorError::ShapeMismatch {
                context: "NormCore::backward",
                expected: (self.cached_xhat.rows(), self.dim),
                actual: (grad_output.rows(), grad_output.cols()),
            });
        }
        let rows = self.cached_xhat.rows();
        let n = rows as f32;

        // Parameter gradients.
        for c in 0..self.dim {
            let mut gg = 0.0;
            let mut gb = 0.0;
            for r in 0..rows {
                gg += grad_output.get(r, c) * self.cached_xhat.get(r, c);
                gb += grad_output.get(r, c);
            }
            self.grad_gamma.set(0, c, gg);
            self.grad_beta.set(0, c, gb);
        }

        // Input gradient. The variance used at forward time is recoverable
        // from the cached effective scale only for BN (r = 1); for BRN we
        // cached `r/σ_B` directly, and the gradient formula needs the
        // *uncorrected* normalized value `centered/σ_B`. We recompute σ_B
        // from the centered cache, which is exact.
        self.stat_sigma.clear();
        self.stat_sigma.resize(self.dim, 0.0);
        for (c, s) in self.stat_sigma.iter_mut().enumerate() {
            let mut v = 0.0;
            for r in 0..rows {
                let d = self.cached_centered.get(r, c);
                v += d * d;
            }
            *s = (v / n + EPS).sqrt();
        }

        let mut grad_in = ws.take(rows, self.dim);
        for c in 0..self.dim {
            let gamma = self.gamma.get(0, c);
            // ĝ statistics over the batch.
            let mut mean_g = 0.0;
            let mut mean_gx = 0.0;
            for r in 0..rows {
                let ghat = gamma * grad_output.get(r, c);
                let xc = self.cached_centered.get(r, c) / self.stat_sigma[c];
                mean_g += ghat;
                mean_gx += ghat * xc;
            }
            mean_g /= n;
            mean_gx /= n;
            for r in 0..rows {
                let ghat = gamma * grad_output.get(r, c);
                let xc = self.cached_centered.get(r, c) / self.stat_sigma[c];
                grad_in.set(r, c, self.cached_scale[c] * (ghat - mean_g - xc * mean_gx));
            }
        }
        Ok(grad_in)
    }

    fn apply_update(&mut self, cfg: &SgdConfig, lr_scale: f32) {
        let lr = cfg.learning_rate * lr_scale;
        if shoggoth_util::float::is_exact_zero(lr) {
            return;
        }
        kernels::sgd_momentum_step(
            self.gamma.as_mut_slice(),
            self.grad_gamma.as_slice(),
            self.vel_gamma.as_mut_slice(),
            lr,
            cfg.momentum,
            0.0, // γ/β are exempt from weight decay
        );
        kernels::sgd_momentum_step(
            self.beta.as_mut_slice(),
            self.grad_beta.as_slice(),
            self.vel_beta.as_mut_slice(),
            lr,
            cfg.momentum,
            0.0,
        );
    }

    fn export_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.gamma.as_slice());
        out.extend_from_slice(self.beta.as_slice());
        out.extend_from_slice(&self.running_mean);
        out.extend_from_slice(&self.running_var);
    }

    fn import_params(&mut self, cursor: &mut ParamCursor<'_>) -> Result<(), TensorError> {
        let g = cursor.take(self.dim)?.to_vec();
        self.gamma = Matrix::from_vec(1, self.dim, g)?;
        let b = cursor.take(self.dim)?.to_vec();
        self.beta = Matrix::from_vec(1, self.dim, b)?;
        self.running_mean = cursor.take(self.dim)?.to_vec();
        self.running_var = cursor.take(self.dim)?.to_vec();
        Ok(())
    }

    fn param_count(&self) -> usize {
        // γ, β plus the running moments (shipped with the model in AMS-style
        // model streaming, so they count toward transfer size).
        4 * self.dim
    }
}

/// Classic Batch Normalization (Ioffe & Szegedy, 2015).
///
/// Train-mode forward normalizes with batch statistics and updates running
/// moments; eval-mode forward uses the running moments.
#[derive(Debug, Clone)]
pub struct BatchNorm {
    core: NormCore,
}

impl BatchNorm {
    /// Creates a BN layer over `dim` features.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        Self {
            core: NormCore::new(dim),
        }
    }

    /// The running mean (for tests/diagnostics).
    pub fn running_mean(&self) -> &[f32] {
        &self.core.running_mean
    }

    /// The running variance (for tests/diagnostics).
    pub fn running_var(&self) -> &[f32] {
        &self.core.running_var
    }
}

impl Layer for BatchNorm {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "batch-norm"
    }

    fn forward(
        &mut self,
        input: &Matrix,
        mode: Mode,
        ws: &mut Workspace,
    ) -> Result<Matrix, TensorError> {
        self.core.check_width(input, "BatchNorm::forward")?;
        match mode {
            Mode::Train => {
                self.core.batch_moments(input);
                let core = &mut self.core;
                core.stat_scale.clear();
                core.stat_scale
                    .extend(core.stat_var.iter().map(|&v| 1.0 / (v + EPS).sqrt()));
                core.stat_shift.clear();
                core.stat_shift.resize(core.dim, 0.0);
                let out = core.normalize_from_stats(input, true, ws);
                core.update_running();
                Ok(out)
            }
            Mode::Eval => {
                self.core.load_eval_stats();
                Ok(self.core.normalize_from_stats(input, false, ws))
            }
        }
    }

    fn backward(
        &mut self,
        grad_output: &Matrix,
        ws: &mut Workspace,
    ) -> Result<Matrix, TensorError> {
        self.core.backward(grad_output, ws)
    }

    fn apply_update(&mut self, cfg: &SgdConfig, lr_scale: f32) {
        self.core.apply_update(cfg, lr_scale);
    }

    fn param_count(&self) -> usize {
        self.core.param_count()
    }

    fn export_params(&self, out: &mut Vec<f32>) {
        self.core.export_params(out);
    }

    fn import_params(&mut self, cursor: &mut ParamCursor<'_>) -> Result<(), TensorError> {
        self.core.import_params(cursor)
    }
}

/// Batch Renormalization (Ioffe, 2017).
///
/// Train-mode forward corrects the batch statistics toward the running
/// moments with clipped factors `r = clip(σ_B/σ, 1/r_max, r_max)` and
/// `d = clip((μ_B − μ)/σ, −d_max, d_max)` (stop-gradient on both), making
/// small-batch training behave like large-batch training — the property the
/// paper relies on for fine-grained on-device batches.
#[derive(Debug, Clone)]
pub struct BatchRenorm {
    core: NormCore,
    r_max: f32,
    d_max: f32,
}

impl BatchRenorm {
    /// Creates a BRN layer over `dim` features with the customary clip
    /// limits `r_max = 3`, `d_max = 5`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        Self {
            core: NormCore::new(dim),
            r_max: 3.0,
            d_max: 5.0,
        }
    }

    /// Overrides the clip limits.
    ///
    /// # Panics
    ///
    /// Panics unless `r_max >= 1` and `d_max >= 0`.
    pub fn with_clip(mut self, r_max: f32, d_max: f32) -> Self {
        assert!(r_max >= 1.0, "r_max must be >= 1");
        assert!(d_max >= 0.0, "d_max must be >= 0");
        self.r_max = r_max;
        self.d_max = d_max;
        self
    }

    /// The running mean (for tests/diagnostics).
    pub fn running_mean(&self) -> &[f32] {
        &self.core.running_mean
    }
}

impl Layer for BatchRenorm {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "batch-renorm"
    }

    fn forward(
        &mut self,
        input: &Matrix,
        mode: Mode,
        ws: &mut Workspace,
    ) -> Result<Matrix, TensorError> {
        self.core.check_width(input, "BatchRenorm::forward")?;
        match mode {
            Mode::Train => {
                self.core.batch_moments(input);
                let core = &mut self.core;
                core.stat_scale.clear();
                core.stat_shift.clear();
                for c in 0..core.dim {
                    let sigma_b = (core.stat_var[c] + EPS).sqrt();
                    let sigma_run = (core.running_var[c] + EPS).sqrt();
                    let r = (sigma_b / sigma_run).clamp(1.0 / self.r_max, self.r_max);
                    let d = ((core.stat_mean[c] - core.running_mean[c]) / sigma_run)
                        .clamp(-self.d_max, self.d_max);
                    core.stat_scale.push(r / sigma_b);
                    core.stat_shift.push(d);
                }
                let out = core.normalize_from_stats(input, true, ws);
                core.update_running();
                Ok(out)
            }
            Mode::Eval => {
                self.core.load_eval_stats();
                Ok(self.core.normalize_from_stats(input, false, ws))
            }
        }
    }

    fn backward(
        &mut self,
        grad_output: &Matrix,
        ws: &mut Workspace,
    ) -> Result<Matrix, TensorError> {
        self.core.backward(grad_output, ws)
    }

    fn apply_update(&mut self, cfg: &SgdConfig, lr_scale: f32) {
        self.core.apply_update(cfg, lr_scale);
    }

    fn param_count(&self) -> usize {
        self.core.param_count()
    }

    fn export_params(&self, out: &mut Vec<f32>) {
        self.core.export_params(out);
    }

    fn import_params(&mut self, cursor: &mut ParamCursor<'_>) -> Result<(), TensorError> {
        self.core.import_params(cursor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shoggoth_util::Rng;

    fn gaussian_batch(rng: &mut Rng, rows: usize, cols: usize, mean: f32, std: f32) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| rng.next_gaussian_f32(mean, std))
    }

    #[test]
    fn batchnorm_train_output_is_standardized() {
        let mut rng = Rng::seed_from(0);
        let mut ws = Workspace::new();
        let mut bn = BatchNorm::new(4);
        let x = gaussian_batch(&mut rng, 256, 4, 5.0, 2.0);
        let y = bn.forward(&x, Mode::Train, &mut ws).expect("shapes");
        let mean = y.col_mean();
        for c in 0..4 {
            assert!(mean.get(0, c).abs() < 1e-4, "column mean not ~0");
        }
        // Per-column variance ~1.
        for c in 0..4 {
            let mut v = 0.0;
            for r in 0..y.rows() {
                v += y.get(r, c) * y.get(r, c);
            }
            v /= y.rows() as f32;
            assert!((v - 1.0).abs() < 1e-2, "column var {v}");
        }
    }

    #[test]
    fn batchnorm_running_stats_converge() {
        let mut rng = Rng::seed_from(1);
        let mut ws = Workspace::new();
        let mut bn = BatchNorm::new(2);
        for _ in 0..400 {
            let x = gaussian_batch(&mut rng, 64, 2, 3.0, 1.5);
            let out = bn.forward(&x, Mode::Train, &mut ws).expect("shapes");
            ws.give(out);
        }
        assert!((bn.running_mean()[0] - 3.0).abs() < 0.2);
        assert!((bn.running_var()[0] - 2.25).abs() < 0.4);
    }

    #[test]
    fn batchnorm_eval_uses_running_moments() {
        let mut rng = Rng::seed_from(2);
        let mut ws = Workspace::new();
        let mut bn = BatchNorm::new(1);
        for _ in 0..300 {
            let x = gaussian_batch(&mut rng, 64, 1, 10.0, 1.0);
            let out = bn.forward(&x, Mode::Train, &mut ws).expect("shapes");
            ws.give(out);
        }
        // A single far-off sample in eval mode should be normalized with the
        // learned moments, not its own (degenerate) batch statistics.
        let x = Matrix::from_rows(&[&[10.0]]).expect("valid");
        let y = bn.forward(&x, Mode::Eval, &mut ws).expect("shapes");
        assert!(y.get(0, 0).abs() < 0.3, "got {}", y.get(0, 0));
    }

    #[test]
    fn batchrenorm_matches_batchnorm_when_stats_agree() {
        // Once the running stats equal the batch stats, r = 1 and d = 0, so
        // BRN must reproduce BN exactly.
        let mut rng = Rng::seed_from(3);
        let mut ws = Workspace::new();
        let mut brn = BatchRenorm::new(2);
        let mut bn = BatchNorm::new(2);
        for _ in 0..600 {
            let x = gaussian_batch(&mut rng, 128, 2, 0.0, 1.0);
            let a = brn.forward(&x, Mode::Train, &mut ws).expect("shapes");
            ws.give(a);
            let b = bn.forward(&x, Mode::Train, &mut ws).expect("shapes");
            ws.give(b);
        }
        let x = gaussian_batch(&mut rng, 128, 2, 0.0, 1.0);
        // Eval mode uses running moments for both layers: outputs agree to
        // the extent the learned moments agree.
        let yb = bn.forward(&x, Mode::Eval, &mut ws).expect("shapes");
        let yr = brn.forward(&x, Mode::Eval, &mut ws).expect("shapes");
        let rel = yb.sub(&yr).expect("shapes").frobenius_norm() / yb.frobenius_norm();
        assert!(rel < 0.05, "BN and BRN eval outputs diverge: {rel}");
        // Train mode: BRN normalizes by the running σ (r/σ_B = 1/σ_run)
        // while BN uses the batch σ, so agreement is approximate.
        let yb = bn.forward(&x, Mode::Train, &mut ws).expect("shapes");
        let yr = brn.forward(&x, Mode::Train, &mut ws).expect("shapes");
        let rel = yb.sub(&yr).expect("shapes").frobenius_norm() / yb.frobenius_norm();
        assert!(rel < 0.15, "BN and BRN train outputs diverge: {rel}");
    }

    #[test]
    fn batchrenorm_clips_corrections_under_shift() {
        // Feed a drastically shifted batch: the d correction must be clipped
        // at d_max, keeping outputs bounded instead of exploding.
        let mut rng = Rng::seed_from(4);
        let mut ws = Workspace::new();
        let mut brn = BatchRenorm::new(1).with_clip(2.0, 1.0);
        for _ in 0..100 {
            let x = gaussian_batch(&mut rng, 64, 1, 0.0, 1.0);
            let out = brn.forward(&x, Mode::Train, &mut ws).expect("shapes");
            ws.give(out);
        }
        let shifted = gaussian_batch(&mut rng, 64, 1, 50.0, 1.0);
        let y = brn.forward(&shifted, Mode::Train, &mut ws).expect("shapes");
        // Without clipping, the shift term would be ~50; with d_max = 1 the
        // output stays near the standardized batch plus at most 1.
        let max = y.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        assert!(max < 8.0, "BRN output exploded: {max}");
    }

    #[test]
    fn batchnorm_gradient_check() {
        let mut rng = Rng::seed_from(5);
        let mut ws = Workspace::new();
        let mut bn = BatchNorm::new(3);
        let x = gaussian_batch(&mut rng, 8, 3, 1.0, 2.0);
        let y = bn.forward(&x, Mode::Train, &mut ws).expect("shapes");
        let grad_out = y.clone(); // L = sum(y^2)/2
        let grad_in = bn.backward(&grad_out, &mut ws).expect("cached");

        let eps = 1e-2f32;
        let mut loss = |m: &Matrix, bn: &mut BatchNorm| {
            // Use a fresh clone so running stats are not perturbed between
            // probes; forward in Train mode to use batch statistics.
            let y = bn.forward(m, Mode::Train, &mut ws).expect("shapes");
            y.as_slice().iter().map(|v| v * v).sum::<f32>() / 2.0
        };
        for probe in [(0usize, 0usize), (4, 1), (7, 2)] {
            let mut bn_probe = bn.clone();
            let mut xp = x.clone();
            xp.set(probe.0, probe.1, x.get(probe.0, probe.1) + eps);
            let lp = loss(&xp, &mut bn_probe);
            let mut bn_probe = bn.clone();
            let mut xm = x.clone();
            xm.set(probe.0, probe.1, x.get(probe.0, probe.1) - eps);
            let lm = loss(&xm, &mut bn_probe);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad_in.get(probe.0, probe.1);
            assert!(
                (numeric - analytic).abs() < 5e-2 * (1.0 + analytic.abs()),
                "probe {probe:?}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn norm_export_import_round_trip() {
        let mut rng = Rng::seed_from(6);
        let mut ws = Workspace::new();
        let mut bn = BatchNorm::new(3);
        for _ in 0..10 {
            let x = gaussian_batch(&mut rng, 32, 3, 2.0, 1.0);
            let out = bn.forward(&x, Mode::Train, &mut ws).expect("shapes");
            ws.give(out);
        }
        let mut buf = Vec::new();
        bn.export_params(&mut buf);
        assert_eq!(buf.len(), bn.param_count());
        let mut copy = BatchNorm::new(3);
        let mut cursor = ParamCursor::new(&buf);
        copy.import_params(&mut cursor).expect("params fit");
        assert_eq!(copy.running_mean(), bn.running_mean());
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut bn = BatchNorm::new(2);
        let mut ws = Workspace::new();
        assert!(matches!(
            bn.backward(&Matrix::zeros(1, 2), &mut ws),
            Err(TensorError::MissingForwardCache { .. })
        ));
    }

    #[test]
    fn steady_state_norm_training_does_not_allocate() {
        let mut rng = Rng::seed_from(8);
        let mut ws = Workspace::new();
        let mut brn = BatchRenorm::new(4);
        let x = gaussian_batch(&mut rng, 16, 4, 0.0, 1.0);
        // Warm up caches and workspace.
        for _ in 0..3 {
            let y = brn.forward(&x, Mode::Train, &mut ws).expect("shapes");
            let g = brn.backward(&y, &mut ws).expect("cached");
            ws.give(y);
            ws.give(g);
        }
        let baseline = ws.allocations();
        for _ in 0..10 {
            let y = brn.forward(&x, Mode::Train, &mut ws).expect("shapes");
            let g = brn.backward(&y, &mut ws).expect("cached");
            ws.give(y);
            ws.give(g);
        }
        assert_eq!(ws.allocations(), baseline, "norm hot loop allocated");
    }
}
