//! Sequential networks with latent-replay support.
//!
//! [`Mlp`] chains layers and exposes the partial-execution hooks the paper's
//! adaptive training needs:
//!
//! * [`Mlp::activation_at`] — run only the front layers to produce the
//!   activation volume stored in replay memory;
//! * [`Mlp::forward_from`] — inject a (fresh ⊕ replay) activation batch at
//!   the replay layer and run the remaining layers;
//! * [`Mlp::backward_range`] — stop backpropagation at the replay layer when
//!   the front is frozen, or continue through the front for fresh rows.

use crate::layer::{Layer, Mode, ParamCursor};
use crate::workspace::Workspace;
use crate::{Matrix, SgdConfig, TensorError};

/// A sequential feed-forward network.
///
/// # Examples
///
/// ```
/// use shoggoth_tensor::{Dense, Matrix, Mlp, Mode, Relu};
/// use shoggoth_util::Rng;
///
/// let mut rng = Rng::seed_from(0);
/// let mut net = Mlp::new(vec![
///     Box::new(Dense::new(4, 8, &mut rng)),
///     Box::new(Relu::new()),
///     Box::new(Dense::new(8, 3, &mut rng)),
/// ]);
/// let x = Matrix::zeros(2, 4);
/// let logits = net.forward(&x, Mode::Eval)?;
/// assert_eq!((logits.rows(), logits.cols()), (2, 3));
/// # Ok::<(), shoggoth_tensor::TensorError>(())
/// ```
#[derive(Debug)]
pub struct Mlp {
    layers: Vec<Box<dyn Layer>>,
    /// Scratch-buffer pool all layer outputs are drawn from. Matrices the
    /// public API returns carry pool buffers; looping callers hand them
    /// back via [`Mlp::recycle`] so the steady state is allocation-free.
    ws: Workspace,
}

impl Clone for Mlp {
    fn clone(&self) -> Self {
        Self {
            layers: self.layers.iter().map(|l| l.clone_box()).collect(),
            // A fresh (empty) workspace: clones are typically shipped
            // across threads or kept as shadow models, and buffers refill
            // on first use anyway.
            ws: Workspace::new(),
        }
    }
}

impl Mlp {
    /// Assembles a network from layers (executed front to back).
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Self {
            layers,
            ws: Workspace::new(),
        }
    }

    /// Returns a matrix previously produced by this network (forward or
    /// backward output) to the internal workspace for reuse. Optional —
    /// dropping the matrix is safe — but looping callers that recycle keep
    /// steady-state training allocation-free.
    pub fn recycle(&mut self, m: Matrix) {
        self.ws.give(m);
    }

    /// Fresh heap allocations the internal workspace has performed. Flat
    /// across training iterations ⇔ the hot loop is allocation-free (what
    /// the workspace-reuse tests assert).
    pub fn workspace_allocations(&self) -> usize {
        self.ws.allocations()
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Layer names front to back (for diagnostics).
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Full forward pass.
    ///
    /// # Errors
    ///
    /// Propagates any layer shape error.
    pub fn forward(&mut self, input: &Matrix, mode: Mode) -> Result<Matrix, TensorError> {
        self.forward_range(0..self.layers.len(), input, mode)
    }

    /// Forward pass through layers `range` only.
    ///
    /// # Errors
    ///
    /// Propagates any layer shape error.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the layer count.
    pub fn forward_range(
        &mut self,
        range: std::ops::Range<usize>,
        input: &Matrix,
        mode: Mode,
    ) -> Result<Matrix, TensorError> {
        assert!(range.end <= self.layers.len(), "layer range out of bounds");
        let Self { layers, ws } = self;
        let slice = &mut layers[range];
        // An empty range is an identity map; the copy still comes from the
        // workspace so the caller can recycle it uniformly.
        if slice.is_empty() {
            let mut out = ws.take(input.rows(), input.cols());
            out.copy_from(input);
            return Ok(out);
        }
        let mut current = slice[0].forward(input, mode, ws)?;
        #[cfg(feature = "finite-check")]
        current.ensure_finite(slice[0].name())?;
        for layer in &mut slice[1..] {
            let next = layer.forward(&current, mode, ws)?;
            #[cfg(feature = "finite-check")]
            next.ensure_finite(layer.name())?;
            // The intermediate has been consumed; its buffer goes straight
            // back to the pool.
            ws.give(std::mem::replace(&mut current, next));
        }
        Ok(current)
    }

    /// Forward pass starting at layer `start` — this is how replay
    /// activations (stored at the replay layer) re-enter the network.
    ///
    /// # Errors
    ///
    /// Propagates any layer shape error.
    pub fn forward_from(
        &mut self,
        start: usize,
        input: &Matrix,
        mode: Mode,
    ) -> Result<Matrix, TensorError> {
        self.forward_range(start..self.layers.len(), input, mode)
    }

    /// Runs layers `0..upto` in eval mode to produce the activation volume
    /// stored in replay memory (no caches recorded, running stats used).
    ///
    /// # Errors
    ///
    /// Propagates any layer shape error.
    pub fn activation_at(&mut self, upto: usize, input: &Matrix) -> Result<Matrix, TensorError> {
        self.forward_range(0..upto, input, Mode::Eval)
    }

    /// Full backward pass; returns the gradient w.r.t. the network input.
    ///
    /// # Errors
    ///
    /// Propagates layer cache/shape errors.
    pub fn backward(&mut self, grad_output: &Matrix) -> Result<Matrix, TensorError> {
        self.backward_range(0..self.layers.len(), grad_output)
    }

    /// Full backward pass for callers that only want parameter gradients:
    /// the bottom layer skips computing ∂loss/∂input (for [`crate::Dense`],
    /// one whole `grad · Wᵀ` matmul), which a training loop discards
    /// anyway. Parameter gradients are bit-identical to [`Mlp::backward`].
    ///
    /// # Errors
    ///
    /// Propagates layer cache/shape errors.
    pub fn backward_discard(&mut self, grad_output: &Matrix) -> Result<(), TensorError> {
        self.backward_range_discard(0..self.layers.len(), grad_output)
    }

    /// [`Mlp::backward_range`] without the returned input gradient: the
    /// layer at `range.start` records its parameter gradients via
    /// [`Layer::backward_params_only`] and the pass stops there.
    ///
    /// # Errors
    ///
    /// Propagates layer cache/shape errors.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the layer count.
    pub fn backward_range_discard(
        &mut self,
        range: std::ops::Range<usize>,
        grad_output: &Matrix,
    ) -> Result<(), TensorError> {
        assert!(range.end <= self.layers.len(), "layer range out of bounds");
        let Self { layers, ws } = self;
        let slice = &mut layers[range];
        let Some((bottom, rest)) = slice.split_first_mut() else {
            return Ok(());
        };
        if rest.is_empty() {
            return bottom.backward_params_only(grad_output, ws);
        }
        let last = rest.len() - 1;
        let mut current = rest[last].backward(grad_output, ws)?;
        #[cfg(feature = "finite-check")]
        current.ensure_finite(rest[last].name())?;
        for layer in rest[..last].iter_mut().rev() {
            let next = layer.backward(&current, ws)?;
            #[cfg(feature = "finite-check")]
            next.ensure_finite(layer.name())?;
            ws.give(std::mem::replace(&mut current, next));
        }
        bottom.backward_params_only(&current, ws)?;
        ws.give(current);
        Ok(())
    }

    /// Backward pass through layers `range` (processed back to front);
    /// returns the gradient w.r.t. the input of layer `range.start`.
    ///
    /// Used to stop at the replay layer: `backward_range(replay..len, g)`
    /// trains only the layers after the replay point.
    ///
    /// # Errors
    ///
    /// Propagates layer cache/shape errors.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the layer count.
    pub fn backward_range(
        &mut self,
        range: std::ops::Range<usize>,
        grad_output: &Matrix,
    ) -> Result<Matrix, TensorError> {
        assert!(range.end <= self.layers.len(), "layer range out of bounds");
        let Self { layers, ws } = self;
        let slice = &mut layers[range];
        if slice.is_empty() {
            let mut out = ws.take(grad_output.rows(), grad_output.cols());
            out.copy_from(grad_output);
            return Ok(out);
        }
        let last = slice.len() - 1;
        let mut current = slice[last].backward(grad_output, ws)?;
        #[cfg(feature = "finite-check")]
        current.ensure_finite(slice[last].name())?;
        for layer in slice[..last].iter_mut().rev() {
            let next = layer.backward(&current, ws)?;
            #[cfg(feature = "finite-check")]
            next.ensure_finite(layer.name())?;
            ws.give(std::mem::replace(&mut current, next));
        }
        Ok(current)
    }

    /// Applies accumulated gradients to every layer with a uniform learning
    /// rate.
    ///
    /// # Errors
    ///
    /// With the `finite-check` feature enabled, returns
    /// [`TensorError::NonFinite`] if any parameter went non-finite during
    /// the update (e.g. a NaN gradient poisoned the weights); infallible
    /// otherwise.
    pub fn step(&mut self, cfg: &SgdConfig) -> Result<(), TensorError> {
        for layer in &mut self.layers {
            layer.apply_update(cfg, 1.0);
        }
        self.ensure_params_finite()
    }

    /// Applies accumulated gradients with a per-layer learning-rate scale
    /// (the paper's freeze policy: `0.0` for frozen front layers).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `scales.len()` differs from
    /// the layer count.
    pub fn step_scaled(&mut self, cfg: &SgdConfig, scales: &[f32]) -> Result<(), TensorError> {
        if scales.len() != self.layers.len() {
            return Err(TensorError::ShapeMismatch {
                context: "Mlp::step_scaled",
                expected: (self.layers.len(), 1),
                actual: (scales.len(), 1),
            });
        }
        for (layer, &scale) in self.layers.iter_mut().zip(scales) {
            layer.apply_update(cfg, scale);
        }
        self.ensure_params_finite()
    }

    /// Post-step parameter validation for the `finite-check` sanitizer.
    /// Compiled to a no-op without the feature.
    #[cfg(feature = "finite-check")]
    fn ensure_params_finite(&self) -> Result<(), TensorError> {
        let mut buf = Vec::new();
        for layer in &self.layers {
            buf.clear();
            layer.export_params(&mut buf);
            if let Some(i) = buf.iter().position(|v| !v.is_finite()) {
                // Parameters are a flat buffer, so the flat index goes in
                // `col` with `row` pinned to zero.
                return Err(TensorError::NonFinite {
                    op: layer.name(),
                    row: 0,
                    col: i,
                    value: buf[i],
                });
            }
        }
        Ok(())
    }

    #[cfg(not(feature = "finite-check"))]
    #[allow(clippy::unnecessary_wraps)]
    fn ensure_params_finite(&self) -> Result<(), TensorError> {
        Ok(())
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Serialized model size in bytes (4 bytes per `f32` parameter) — the
    /// quantity AMS ships over the downlink on every update.
    pub fn byte_size(&self) -> usize {
        self.param_count() * std::mem::size_of::<f32>()
    }

    /// Exports all parameters as a flat buffer (stable layer order).
    pub fn export_weights(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            layer.export_params(&mut out);
        }
        out
    }

    /// Imports parameters previously produced by
    /// [`export_weights`](Mlp::export_weights).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ParamCount`] if the buffer length does not
    /// exactly match the network.
    pub fn import_weights(&mut self, weights: &[f32]) -> Result<(), TensorError> {
        if weights.len() != self.param_count() {
            return Err(TensorError::ParamCount {
                expected: self.param_count(),
                actual: weights.len(),
            });
        }
        let mut cursor = ParamCursor::new(weights);
        for layer in &mut self.layers {
            layer.import_params(&mut cursor)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Dense, Relu};
    use crate::losses;
    use crate::norm::BatchRenorm;
    use shoggoth_util::Rng;

    fn small_net(rng: &mut Rng) -> Mlp {
        Mlp::new(vec![
            Box::new(Dense::new(4, 16, rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(16, 8, rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(8, 3, rng)),
        ])
    }

    #[test]
    fn forward_shapes_flow_through() {
        let mut rng = Rng::seed_from(0);
        let mut net = small_net(&mut rng);
        let x = Matrix::zeros(5, 4);
        let y = net.forward(&x, Mode::Eval).expect("shapes");
        assert_eq!((y.rows(), y.cols()), (5, 3));
    }

    #[test]
    fn forward_from_matches_split_execution() {
        let mut rng = Rng::seed_from(1);
        let mut net = small_net(&mut rng);
        let x = Matrix::from_fn(3, 4, |_, _| rng.next_gaussian_f32(0.0, 1.0));
        let full = net.forward(&x, Mode::Eval).expect("shapes");
        let mid = net.activation_at(2, &x).expect("shapes");
        let resumed = net.forward_from(2, &mid, Mode::Eval).expect("shapes");
        let diff = full.sub(&resumed).expect("shapes").frobenius_norm();
        assert!(diff < 1e-5, "split execution diverged: {diff}");
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = Rng::seed_from(2);
        let mut net = small_net(&mut rng);
        let x = Matrix::from_fn(32, 4, |_, _| rng.next_gaussian_f32(0.0, 1.0));
        let labels: Vec<usize> = (0..32).map(|i| i % 3).collect();
        let sgd = SgdConfig::new(0.05).with_momentum(0.9);
        let initial = {
            let logits = net.forward(&x, Mode::Train).expect("shapes");
            let (loss, grad) = losses::softmax_cross_entropy(&logits, &labels).expect("shapes");
            net.backward(&grad).expect("cached");
            net.step(&sgd).expect("finite params");
            loss
        };
        let mut last = initial;
        for _ in 0..100 {
            let logits = net.forward(&x, Mode::Train).expect("shapes");
            let (loss, grad) = losses::softmax_cross_entropy(&logits, &labels).expect("shapes");
            net.backward(&grad).expect("cached");
            net.step(&sgd).expect("finite params");
            last = loss;
        }
        assert!(
            last < initial * 0.5,
            "loss did not drop: {initial} -> {last}"
        );
    }

    #[test]
    fn backward_discard_updates_params_bit_identically() {
        let mut rng = Rng::seed_from(11);
        let mut full = small_net(&mut rng);
        let mut discard = full.clone();
        let x = Matrix::from_fn(6, 4, |_, _| rng.next_gaussian_f32(0.0, 1.0));
        let labels: Vec<usize> = (0..6).map(|i| i % 3).collect();
        let sgd = SgdConfig::new(0.05)
            .with_momentum(0.9)
            .with_weight_decay(1e-4);
        for _ in 0..3 {
            let logits = full.forward(&x, Mode::Train).expect("shapes");
            let (_, grad) = losses::softmax_cross_entropy(&logits, &labels).expect("shapes");
            full.backward(&grad).expect("cached");
            full.step(&sgd).expect("finite params");

            let logits = discard.forward(&x, Mode::Train).expect("shapes");
            let (_, grad) = losses::softmax_cross_entropy(&logits, &labels).expect("shapes");
            discard.backward_discard(&grad).expect("cached");
            discard.step(&sgd).expect("finite params");
        }
        assert_eq!(full.export_weights(), discard.export_weights());
    }

    #[test]
    fn backward_discard_requires_forward_cache() {
        let mut rng = Rng::seed_from(12);
        let mut net = small_net(&mut rng);
        let grad = Matrix::zeros(2, 3);
        assert!(net.backward_discard(&grad).is_err());
    }

    #[test]
    fn frozen_layers_do_not_move() {
        let mut rng = Rng::seed_from(3);
        let mut net = small_net(&mut rng);
        let before = net.export_weights();
        let x = Matrix::from_fn(8, 4, |_, _| rng.next_gaussian_f32(0.0, 1.0));
        let labels = vec![0usize; 8];
        let sgd = SgdConfig::new(0.1);
        let logits = net.forward(&x, Mode::Train).expect("shapes");
        let (_, grad) = losses::softmax_cross_entropy(&logits, &labels).expect("shapes");
        net.backward(&grad).expect("cached");
        // Freeze everything: weights must be bit-identical afterwards.
        net.step_scaled(&sgd, &[0.0; 5]).expect("scales match");
        assert_eq!(net.export_weights(), before);
    }

    #[test]
    fn step_scaled_validates_length() {
        let mut rng = Rng::seed_from(4);
        let mut net = small_net(&mut rng);
        let sgd = SgdConfig::new(0.1);
        assert!(net.step_scaled(&sgd, &[1.0; 3]).is_err());
    }

    #[test]
    fn export_import_round_trip_preserves_outputs() {
        let mut rng = Rng::seed_from(5);
        let mut net = small_net(&mut rng);
        let weights = net.export_weights();
        assert_eq!(weights.len(), net.param_count());
        let mut rng2 = Rng::seed_from(99);
        let mut other = small_net(&mut rng2);
        other.import_weights(&weights).expect("sizes match");
        let x = Matrix::from_fn(4, 4, |_, _| rng.next_gaussian_f32(0.0, 1.0));
        let a = net.forward(&x, Mode::Eval).expect("shapes");
        let b = other.forward(&x, Mode::Eval).expect("shapes");
        assert_eq!(a, b);
    }

    #[test]
    fn import_rejects_wrong_length() {
        let mut rng = Rng::seed_from(6);
        let mut net = small_net(&mut rng);
        let weights = vec![0.0; net.param_count() + 1];
        assert!(matches!(
            net.import_weights(&weights),
            Err(TensorError::ParamCount { .. })
        ));
    }

    #[test]
    fn clone_is_deep() {
        let mut rng = Rng::seed_from(7);
        let mut net = small_net(&mut rng);
        let mut copy = net.clone();
        let x = Matrix::from_fn(8, 4, |_, _| rng.next_gaussian_f32(0.0, 1.0));
        let labels = vec![1usize; 8];
        let sgd = SgdConfig::new(0.5);
        let logits = net.forward(&x, Mode::Train).expect("shapes");
        let (_, grad) = losses::softmax_cross_entropy(&logits, &labels).expect("shapes");
        net.backward(&grad).expect("cached");
        net.step(&sgd).expect("finite params");
        // The clone must be unaffected by training the original.
        assert_ne!(net.export_weights(), copy.export_weights());
        let _ = copy.forward(&x, Mode::Eval).expect("clone still works");
    }

    #[test]
    fn steady_state_training_is_allocation_free() {
        // The acceptance test for the workspace design: after warm-up, a
        // full forward/loss/backward/step cycle must perform zero fresh
        // heap allocations on the tensor path.
        let mut rng = Rng::seed_from(10);
        let mut net = Mlp::new(vec![
            Box::new(Dense::new(4, 16, &mut rng)),
            Box::new(BatchRenorm::new(16)),
            Box::new(Relu::new()),
            Box::new(Dense::new(16, 3, &mut rng)),
        ]);
        let x = Matrix::from_fn(8, 4, |_, _| rng.next_gaussian_f32(0.0, 1.0));
        let labels: Vec<usize> = (0..8).map(|i| i % 3).collect();
        let sgd = SgdConfig::new(0.05).with_momentum(0.9);
        let mut grad = Matrix::zeros(0, 0);
        let train_step = |net: &mut Mlp, grad: &mut Matrix| {
            let logits = net.forward(&x, Mode::Train).expect("shapes");
            losses::softmax_cross_entropy_into(&logits, &labels, grad).expect("shapes");
            net.recycle(logits);
            let grad_in = net.backward(grad).expect("cached");
            net.recycle(grad_in);
            net.step(&sgd).expect("finite params");
        };
        for _ in 0..3 {
            train_step(&mut net, &mut grad);
        }
        let baseline = net.workspace_allocations();
        for _ in 0..20 {
            train_step(&mut net, &mut grad);
        }
        assert_eq!(
            net.workspace_allocations(),
            baseline,
            "training hot loop allocated fresh tensor buffers"
        );
    }

    #[test]
    fn recycled_buffers_are_reused_across_calls() {
        let mut rng = Rng::seed_from(11);
        let mut net = small_net(&mut rng);
        let x = Matrix::zeros(6, 4);
        let y = net.forward(&x, Mode::Eval).expect("shapes");
        net.recycle(y);
        let before = net.workspace_allocations();
        let y = net.forward(&x, Mode::Eval).expect("shapes");
        net.recycle(y);
        assert_eq!(net.workspace_allocations(), before);
    }

    #[test]
    fn byte_size_is_four_bytes_per_param() {
        let mut rng = Rng::seed_from(8);
        let net = small_net(&mut rng);
        assert_eq!(net.byte_size(), net.param_count() * 4);
    }

    #[test]
    fn brn_network_trains_with_small_batches() {
        // The paper's motivation for BRN: training with fine-grained batches
        // should still converge.
        let mut rng = Rng::seed_from(9);
        let mut net = Mlp::new(vec![
            Box::new(Dense::new(4, 16, &mut rng)),
            Box::new(BatchRenorm::new(16)),
            Box::new(Relu::new()),
            Box::new(Dense::new(16, 2, &mut rng)),
        ]);
        let sgd = SgdConfig::new(0.02).with_momentum(0.9);
        let mut final_acc = 0.0;
        for step in 0..400 {
            let x = Matrix::from_fn(8, 4, |r, _| {
                let class = r % 2;
                rng.next_gaussian_f32(if class == 0 { -1.0 } else { 1.0 }, 0.5)
            });
            let labels: Vec<usize> = (0..8).map(|r| r % 2).collect();
            let logits = net.forward(&x, Mode::Train).expect("shapes");
            let (_, grad) = losses::softmax_cross_entropy(&logits, &labels).expect("shapes");
            net.backward(&grad).expect("cached");
            net.step(&sgd).expect("finite params");
            if step >= 350 {
                let eval = net.forward(&x, Mode::Eval).expect("shapes");
                final_acc += losses::accuracy(&eval, &labels);
            }
        }
        final_acc /= 50.0;
        assert!(
            final_acc > 0.9,
            "BRN small-batch training accuracy {final_acc}"
        );
    }
}
