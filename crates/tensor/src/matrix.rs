//! Dense row-major `f32` matrices.
//!
//! [`Matrix`] is the only tensor type the reproduction needs: a mini-batch
//! is a matrix with one example per row, and every layer maps matrices to
//! matrices. Operations are deliberately simple and allocation-transparent —
//! the networks involved are small (tens of thousands of parameters), so
//! clarity wins over BLAS-grade tuning.

use crate::{kernels, TensorError};

/// A dense row-major matrix of `f32` values.
///
/// # Examples
///
/// ```
/// use shoggoth_tensor::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c, a);
/// # Ok::<(), shoggoth_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::ShapeMismatch {
                context: "Matrix::from_vec",
                expected: (rows, cols),
                actual: (data.len(), 1),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the rows have differing
    /// lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self, TensorError> {
        let ncols = rows.first().map_or(0, |r| r.len());
        if rows.is_empty() || ncols == 0 {
            return Err(TensorError::ShapeMismatch {
                context: "Matrix::from_rows",
                expected: (1, 1),
                actual: (rows.len(), ncols),
            });
        }
        let mut data = Vec::with_capacity(rows.len() * ncols);
        for row in rows {
            if row.len() != ncols {
                return Err(TensorError::ShapeMismatch {
                    context: "Matrix::from_rows",
                    expected: (rows.len(), ncols),
                    actual: (rows.len(), row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: rows.len(),
            cols: ncols,
            data,
        })
    }

    /// Assembles a matrix from pre-validated parts — the allocation-free
    /// construction used by [`crate::Workspace`]. Callers guarantee
    /// `data.len() == rows * cols`.
    pub(crate) fn from_parts(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        Self { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// The `row`-th row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> &[f32] {
        assert!(row < self.rows, "row out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable access to the `row`-th row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        assert!(row < self.rows, "row out of bounds");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// The underlying row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Matrix product `self · other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols == other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, TensorError> {
        if self.cols != other.rows {
            return Err(TensorError::ShapeMismatch {
                context: "Matrix::matmul",
                expected: (self.cols, other.rows),
                actual: (other.rows, other.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps the inner loop contiguous in both `other`
        // and `out`, which matters even at these sizes. The kernel is
        // branch-free: dense multiplies no longer pay a per-element
        // zero-skip test (a sparse-aware entry point can bring it back if
        // sparsity ever matters).
        kernels::matmul(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            self.cols,
            other.cols,
        );
        #[cfg(feature = "finite-check")]
        out.ensure_finite("Matrix::matmul")?;
        Ok(out)
    }

    /// Matrix product `self · other`, written into `out` (resized and
    /// overwritten; its storage is reused).
    ///
    /// Bit-identical to [`Matrix::matmul`] — same kernel, no allocation.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols == other.rows`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) -> Result<(), TensorError> {
        if self.cols != other.rows {
            return Err(TensorError::ShapeMismatch {
                context: "Matrix::matmul_into",
                expected: (self.cols, other.rows),
                actual: (other.rows, other.cols),
            });
        }
        out.resize_zeroed(self.rows, other.cols);
        kernels::matmul(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            self.cols,
            other.cols,
        );
        #[cfg(feature = "finite-check")]
        out.ensure_finite("Matrix::matmul_into")?;
        Ok(())
    }

    /// Transposed-B product `self · otherᵀ`, written into `out`: the
    /// backward-pass kernel (`grad_input = grad_output · Wᵀ`) that never
    /// materializes the transpose. Blocked inner loop; bit-identical to
    /// `self.matmul(&other.transpose())`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols == other.cols`.
    pub fn matmul_transb_into(&self, other: &Matrix, out: &mut Matrix) -> Result<(), TensorError> {
        if self.cols != other.cols {
            return Err(TensorError::ShapeMismatch {
                context: "Matrix::matmul_transb_into",
                expected: (self.rows, self.cols),
                actual: (other.rows, other.cols),
            });
        }
        out.resize_zeroed(self.rows, other.rows);
        kernels::matmul_transb(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            self.cols,
            other.rows,
        );
        #[cfg(feature = "finite-check")]
        out.ensure_finite("Matrix::matmul_transb_into")?;
        Ok(())
    }

    /// Transposed-A product `selfᵀ · other`, written into `out`: the
    /// gradient-of-weights kernel (`grad_W = inputᵀ · grad_output`) that
    /// never materializes the transpose. Bit-identical to
    /// `self.transpose().matmul(other)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.rows == other.rows`.
    pub fn matmul_transa_into(&self, other: &Matrix, out: &mut Matrix) -> Result<(), TensorError> {
        if self.rows != other.rows {
            return Err(TensorError::ShapeMismatch {
                context: "Matrix::matmul_transa_into",
                expected: (self.rows, self.cols),
                actual: (other.rows, other.cols),
            });
        }
        out.resize_zeroed(self.cols, other.cols);
        kernels::matmul_transa(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            self.cols,
            other.cols,
        );
        #[cfg(feature = "finite-check")]
        out.ensure_finite("Matrix::matmul_transa_into")?;
        Ok(())
    }

    /// Bias-fused affine map `out = self · weights + bias` (bias is
    /// `1 × n`, broadcast over rows) — the dense-layer forward kernel.
    /// Bit-identical to `matmul` followed by `add_row_broadcast`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless
    /// `self.cols == weights.rows` and `bias` is `1 × weights.cols`.
    pub fn addmm_into(
        &self,
        weights: &Matrix,
        bias: &Matrix,
        out: &mut Matrix,
    ) -> Result<(), TensorError> {
        if self.cols != weights.rows {
            return Err(TensorError::ShapeMismatch {
                context: "Matrix::addmm_into",
                expected: (self.cols, weights.rows),
                actual: (weights.rows, weights.cols),
            });
        }
        if bias.rows != 1 || bias.cols != weights.cols {
            return Err(TensorError::ShapeMismatch {
                context: "Matrix::addmm_into",
                expected: (1, weights.cols),
                actual: (bias.rows, bias.cols),
            });
        }
        out.resize_zeroed(self.rows, weights.cols);
        kernels::matmul(
            &self.data,
            &weights.data,
            &mut out.data,
            self.rows,
            self.cols,
            weights.cols,
        );
        kernels::add_bias_rows(&mut out.data, &bias.data, self.rows, weights.cols);
        #[cfg(feature = "finite-check")]
        out.ensure_finite("Matrix::addmm_into")?;
        Ok(())
    }

    /// Reshapes in place to `rows × cols` with every element zero, reusing
    /// the existing storage (no allocation when capacity suffices). Prior
    /// contents are discarded.
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// Becomes a copy of `src` (shape and contents), reusing the existing
    /// storage — the allocation-free replacement for `clone_from` in
    /// cache-recording paths.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.data.clear();
        self.data.extend_from_slice(&src.data);
        self.rows = src.rows;
        self.cols = src.cols;
    }

    /// The transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix, TensorError> {
        self.zip_with(other, "Matrix::add", |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix, TensorError> {
        self.zip_with(other, "Matrix::sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix, TensorError> {
        self.zip_with(other, "Matrix::hadamard", |a, b| a * b)
    }

    fn zip_with(
        &self,
        other: &Matrix,
        context: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Matrix, TensorError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(TensorError::ShapeMismatch {
                context,
                expected: (self.rows, self.cols),
                actual: (other.rows, other.cols),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns a copy scaled by `factor`.
    pub fn scaled(&self, factor: f32) -> Matrix {
        self.map(|v| v * factor)
    }

    /// Returns a copy with `f` applied element-wise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Adds a row vector (`1 × cols`) to every row.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless `bias` is `1 × cols`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Result<Matrix, TensorError> {
        if bias.rows != 1 || bias.cols != self.cols {
            return Err(TensorError::ShapeMismatch {
                context: "Matrix::add_row_broadcast",
                expected: (1, self.cols),
                actual: (bias.rows, bias.cols),
            });
        }
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(&bias.data) {
                *o += b;
            }
        }
        Ok(out)
    }

    /// Column-wise mean as a `1 × cols` matrix.
    pub fn col_mean(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        if self.rows == 0 {
            return out;
        }
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        let inv = 1.0 / self.rows as f32;
        for o in &mut out.data {
            *o *= inv;
        }
        out
    }

    /// Column-wise sum as a `1 × cols` matrix.
    pub fn col_sum(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        self.col_sum_into(&mut out);
        out
    }

    /// Column-wise sum written into `out` (resized to `1 × cols`, storage
    /// reused).
    pub fn col_sum_into(&self, out: &mut Matrix) {
        out.resize_zeroed(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
    }

    /// Vertically stacks matrices with identical column counts.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the column counts differ or
    /// `parts` is empty.
    pub fn vstack(parts: &[&Matrix]) -> Result<Matrix, TensorError> {
        let first = parts.first().ok_or(TensorError::ShapeMismatch {
            context: "Matrix::vstack",
            expected: (1, 1),
            actual: (0, 0),
        })?;
        let cols = first.cols;
        let mut data = Vec::new();
        let mut rows = 0;
        for part in parts {
            if part.cols != cols {
                return Err(TensorError::ShapeMismatch {
                    context: "Matrix::vstack",
                    expected: (part.rows, cols),
                    actual: (part.rows, part.cols),
                });
            }
            data.extend_from_slice(&part.data);
            rows += part.rows;
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Copies rows `range` into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the row count.
    pub fn rows_range(&self, range: std::ops::Range<usize>) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.rows_range_into(range, &mut out);
        out
    }

    /// Copies rows `range` into `out` (resized, storage reused).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the row count.
    pub fn rows_range_into(&self, range: std::ops::Range<usize>, out: &mut Matrix) {
        assert!(range.end <= self.rows, "row range out of bounds");
        out.data.clear();
        out.data
            .extend_from_slice(&self.data[range.start * self.cols..range.end * self.cols]);
        out.rows = range.len();
        out.cols = self.cols;
    }

    /// Selects the given rows into a new matrix (rows may repeat).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.select_rows_into(indices, &mut out);
        out
    }

    /// Selects the given rows into `out` (resized, storage reused; rows
    /// may repeat).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.data.clear();
        out.data.reserve(indices.len() * self.cols);
        for &i in indices {
            out.data.extend_from_slice(self.row(i));
        }
        out.rows = indices.len();
        out.cols = self.cols;
    }

    /// The Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Validates that every element is finite (no NaN, no ±Inf).
    ///
    /// `op` names the operation that produced this matrix; it is embedded
    /// in the error so a poisoned tensor is traceable to its source. This
    /// is the manual entry point of the `finite-check` sanitizer — with
    /// that feature enabled the training engine calls it automatically
    /// after every layer pass, loss, and SGD step.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::NonFinite`] locating the first offending
    /// element.
    pub fn ensure_finite(&self, op: &'static str) -> Result<(), TensorError> {
        match self.data.iter().position(|v| !v.is_finite()) {
            None => Ok(()),
            Some(i) => {
                // A zero-column matrix holds no data, so `i` implies
                // `cols > 0` and the checked ops cannot fail.
                let row = i.checked_div(self.cols).unwrap_or(0);
                let col = i.checked_rem(self.cols).unwrap_or(0);
                Err(TensorError::NonFinite {
                    op,
                    row,
                    col,
                    value: self.data[i],
                })
            }
        }
    }

    /// Index of the maximum value in each row. `NaN` ranks highest under
    /// the `total_cmp` order, so poisoned rows resolve deterministically.
    ///
    /// # Panics
    ///
    /// Panics on a matrix with rows but zero columns — an argmax over an
    /// empty row is a shape bug at the call site.
    pub fn row_argmax(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .expect("rows are non-empty")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&[f32]]) -> Matrix {
        Matrix::from_rows(rows).expect("valid test matrix")
    }

    #[test]
    fn matmul_hand_checked() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = m(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).expect("shapes match");
        assert_eq!(c, m(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_rectangular() {
        let a = m(&[&[1.0, 0.0, 2.0]]);
        let b = m(&[&[1.0], &[1.0], &[1.0]]);
        let c = a.matmul(&b).expect("shapes match");
        assert_eq!(c.rows(), 1);
        assert_eq!(c.cols(), 1);
        assert_eq!(c.get(0, 0), 3.0);
    }

    #[test]
    fn matmul_shape_mismatch_is_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn identity_is_neutral() {
        let a = m(&[&[1.5, -2.0], &[0.0, 9.0]]);
        assert_eq!(a.matmul(&Matrix::identity(2)).expect("shapes"), a);
    }

    #[test]
    fn transpose_round_trips() {
        let a = m(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = m(&[&[1.0, 2.0]]);
        let b = m(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b).expect("shapes"), m(&[&[4.0, 6.0]]));
        assert_eq!(b.sub(&a).expect("shapes"), m(&[&[2.0, 2.0]]));
        assert_eq!(a.hadamard(&b).expect("shapes"), m(&[&[3.0, 8.0]]));
        assert_eq!(a.scaled(2.0), m(&[&[2.0, 4.0]]));
    }

    #[test]
    fn broadcast_bias() {
        let a = m(&[&[0.0, 0.0], &[1.0, 1.0]]);
        let bias = m(&[&[10.0, 20.0]]);
        let out = a.add_row_broadcast(&bias).expect("shapes");
        assert_eq!(out, m(&[&[10.0, 20.0], &[11.0, 21.0]]));
    }

    #[test]
    fn col_mean_and_sum() {
        let a = m(&[&[1.0, 2.0], &[3.0, 6.0]]);
        assert_eq!(a.col_mean(), m(&[&[2.0, 4.0]]));
        assert_eq!(a.col_sum(), m(&[&[4.0, 8.0]]));
    }

    #[test]
    fn vstack_and_rows_range_invert() {
        let a = m(&[&[1.0, 2.0]]);
        let b = m(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let stacked = Matrix::vstack(&[&a, &b]).expect("same cols");
        assert_eq!(stacked.rows(), 3);
        assert_eq!(stacked.rows_range(0..1), a);
        assert_eq!(stacked.rows_range(1..3), b);
    }

    #[test]
    fn vstack_rejects_mismatched_cols() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(1, 3);
        assert!(Matrix::vstack(&[&a, &b]).is_err());
    }

    #[test]
    fn select_rows_allows_repeats() {
        let a = m(&[&[1.0], &[2.0], &[3.0]]);
        let sel = a.select_rows(&[2, 0, 2]);
        assert_eq!(sel, m(&[&[3.0], &[1.0], &[3.0]]));
    }

    #[test]
    fn argmax_per_row() {
        let a = m(&[&[0.1, 0.9], &[5.0, -1.0]]);
        assert_eq!(a.row_argmax(), vec![1, 0]);
    }

    #[test]
    fn frobenius_norm_hand_checked() {
        let a = m(&[&[3.0, 4.0]]);
        assert_eq!(a.frobenius_norm(), 5.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }
}
