//! Integration tests for the `finite-check` sanitizer.
//!
//! Run with `cargo test -p shoggoth-tensor --features finite-check`. The
//! whole file is compiled out without the feature, because the sanitizer
//! hooks it exercises do not exist then.
#![cfg(feature = "finite-check")]

use shoggoth_tensor::{losses, Dense, Matrix, Mlp, Mode, Relu, SgdConfig, TensorError};
use shoggoth_util::Rng;

fn tiny_net(rng: &mut Rng) -> Mlp {
    Mlp::new(vec![
        Box::new(Dense::new(3, 8, rng)),
        Box::new(Relu::new()),
        Box::new(Dense::new(8, 2, rng)),
    ])
}

#[test]
fn nan_input_is_caught_at_the_producing_layer() {
    let mut rng = Rng::seed_from(11);
    let mut net = tiny_net(&mut rng);
    let mut x = Matrix::zeros(2, 3);
    x.set(1, 2, f32::NAN);
    // The NaN enters through the first Dense affine map, so the first layer
    // is named as the producer — not some layer three steps downstream.
    let err = net.forward(&x, Mode::Eval).expect_err("NaN must be caught");
    match err {
        TensorError::NonFinite { op, value, .. } => {
            assert_eq!(op, "Matrix::addmm_into");
            assert!(value.is_nan());
        }
        other => panic!("expected NonFinite, got {other:?}"),
    }
}

#[test]
fn injected_nan_loss_yields_named_poisoned_tensor_error() {
    // The acceptance scenario: poison the logits so the loss gradient goes
    // non-finite, and observe the typed error instead of a panic or a
    // silently corrupted training run.
    let logits = Matrix::from_rows(&[&[f32::NAN, 0.0]]).expect("valid shape");
    let err = losses::softmax_cross_entropy(&logits, &[0]).expect_err("NaN loss must be caught");
    match err {
        TensorError::NonFinite { op, .. } => {
            assert_eq!(op, "losses::softmax_cross_entropy");
            let msg = err.to_string();
            assert!(
                msg.contains("poisoned tensor") && msg.contains("softmax_cross_entropy"),
                "diagnostic must name the producing op: {msg}"
            );
        }
        other => panic!("expected NonFinite, got {other:?}"),
    }
}

#[test]
fn poisoned_weights_are_caught_by_the_sgd_step() {
    let mut rng = Rng::seed_from(12);
    let mut net = tiny_net(&mut rng);
    let mut weights = net.export_weights();
    weights[0] = f32::INFINITY;
    net.import_weights(&weights).expect("length matches");
    let err = net
        .step(&SgdConfig::new(0.1))
        .expect_err("Inf weight must be caught");
    assert!(
        matches!(err, TensorError::NonFinite { op: "dense", .. }),
        "step must name the poisoned layer: {err:?}"
    );
}

#[test]
fn clean_training_loop_is_unaffected() {
    let mut rng = Rng::seed_from(13);
    let mut net = tiny_net(&mut rng);
    let x = Matrix::from_fn(8, 3, |_, _| rng.next_gaussian_f32(0.0, 1.0));
    let labels: Vec<usize> = (0..8).map(|i| i % 2).collect();
    let sgd = SgdConfig::new(0.05);
    for _ in 0..20 {
        let logits = net.forward(&x, Mode::Train).expect("finite");
        let (loss, grad) = losses::softmax_cross_entropy(&logits, &labels).expect("finite");
        assert!(loss.is_finite());
        net.backward(&grad).expect("finite");
        net.step(&sgd).expect("finite");
    }
}
