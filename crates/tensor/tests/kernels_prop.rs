//! Property tests pinning the allocation-free `_into` kernels to their
//! allocating reference expressions, **bit-for-bit**.
//!
//! The workspace refactor replaced `transpose()`-then-`matmul` chains and
//! per-call output allocations with fused kernels. Training determinism
//! (golden fleet runs, frozen-front equality tests) relies on the new
//! kernels producing the *exact same floats*, not merely close ones — so
//! every assertion here is exact `==` on the full matrix, never an
//! epsilon comparison.

use proptest::prelude::*;
use shoggoth_tensor::Matrix;

/// Builds a `rows × cols` matrix from a prefix of `data`.
fn take(data: &[f32], rows: usize, cols: usize) -> Matrix {
    Matrix::from_vec(rows, cols, data[..rows * cols].to_vec()).expect("data sized to fit")
}

proptest! {
    #[test]
    fn matmul_into_matches_allocating_matmul(
        dims in (1usize..8, 1usize..8, 1usize..8),
        a_data in prop::collection::vec(-4.0f32..4.0, 64..65),
        b_data in prop::collection::vec(-4.0f32..4.0, 64..65),
    ) {
        let (m, k, n) = dims;
        let a = take(&a_data, m, k);
        let b = take(&b_data, k, n);
        let reference = a.matmul(&b).expect("shapes agree");
        let mut out = Matrix::zeros(0, 0);
        a.matmul_into(&b, &mut out).expect("shapes agree");
        prop_assert_eq!(reference, out);
    }

    #[test]
    fn matmul_transb_into_matches_transpose_path(
        dims in (1usize..8, 1usize..8, 1usize..8),
        a_data in prop::collection::vec(-4.0f32..4.0, 64..65),
        b_data in prop::collection::vec(-4.0f32..4.0, 64..65),
    ) {
        let (m, k, n) = dims;
        // out = a · bᵀ where a is m×k and b is n×k.
        let a = take(&a_data, m, k);
        let b = take(&b_data, n, k);
        let reference = a.matmul(&b.transpose()).expect("shapes agree");
        let mut out = Matrix::zeros(0, 0);
        a.matmul_transb_into(&b, &mut out).expect("shapes agree");
        prop_assert_eq!(reference, out);
    }

    #[test]
    fn matmul_transa_into_matches_transpose_path(
        dims in (1usize..8, 1usize..8, 1usize..8),
        a_data in prop::collection::vec(-4.0f32..4.0, 64..65),
        b_data in prop::collection::vec(-4.0f32..4.0, 64..65),
    ) {
        let (r, m, n) = dims;
        // out = aᵀ · b where a is r×m and b is r×n.
        let a = take(&a_data, r, m);
        let b = take(&b_data, r, n);
        let reference = a.transpose().matmul(&b).expect("shapes agree");
        let mut out = Matrix::zeros(0, 0);
        a.matmul_transa_into(&b, &mut out).expect("shapes agree");
        prop_assert_eq!(reference, out);
    }

    #[test]
    fn addmm_into_matches_matmul_plus_broadcast(
        dims in (1usize..8, 1usize..8, 1usize..8),
        x_data in prop::collection::vec(-4.0f32..4.0, 64..65),
        w_data in prop::collection::vec(-4.0f32..4.0, 64..65),
        b_data in prop::collection::vec(-4.0f32..4.0, 8..9),
    ) {
        let (m, k, n) = dims;
        let x = take(&x_data, m, k);
        let w = take(&w_data, k, n);
        let bias = take(&b_data, 1, n);
        let reference = x
            .matmul(&w)
            .expect("shapes agree")
            .add_row_broadcast(&bias)
            .expect("bias fits");
        let mut out = Matrix::zeros(0, 0);
        x.addmm_into(&w, &bias, &mut out).expect("shapes agree");
        prop_assert_eq!(reference, out);
    }

    #[test]
    fn into_kernels_reuse_storage_across_shapes(
        dims in (1usize..8, 1usize..8, 1usize..8),
        a_data in prop::collection::vec(-4.0f32..4.0, 64..65),
        b_data in prop::collection::vec(-4.0f32..4.0, 64..65),
    ) {
        let (m, k, n) = dims;
        let a = take(&a_data, m, k);
        let b = take(&b_data, k, n);
        // A stale, wrongly-shaped output must be fully overwritten.
        let mut out = Matrix::from_vec(2, 3, vec![7.0; 6]).expect("literal shape");
        a.matmul_into(&b, &mut out).expect("shapes agree");
        let reference = a.matmul(&b).expect("shapes agree");
        prop_assert_eq!(reference, out);
    }
}
