//! The lightweight edge detector (YOLOv4-ResNet18 stand-in).

use crate::background_class;
use crate::data::{sample_domain_batch, LabeledSample};
use crate::detector::{features_matrix, Detection, Detector};
use shoggoth_tensor::{losses, BatchRenorm, Dense, Matrix, Mlp, Mode, Relu, SgdConfig};
use shoggoth_util::Rng;
use shoggoth_video::{ClassId, DomainLibrary, Frame};

/// Configuration of the student detector.
///
/// The default architecture mirrors the paper's setup at latent-space
/// scale: three hidden blocks (`Dense → BatchRenorm → ReLU`) and a linear
/// classification head. The *replay layer* defaults to the penultimate
/// layer ("pool" in the paper), i.e. activations are stored right before
/// the head.
#[derive(Debug, Clone, PartialEq)]
pub struct StudentConfig {
    /// Latent feature dimensionality (must match the stream's world).
    pub feature_dim: usize,
    /// Number of foreground classes (the head adds one background logit).
    pub num_classes: usize,
    /// Hidden-block widths.
    pub widths: Vec<usize>,
    /// Width of the detection head's hidden layer. The head (everything
    /// after the replay layer) is what adaptive training fully retrains —
    /// the paper's "full learning of all layers after the replay layer" —
    /// so it needs genuine capacity.
    pub head_width: usize,
    /// Confidence threshold θ (the paper uses 0.5).
    pub confidence_threshold: f32,
    /// Object samples synthesized for pre-training.
    pub pretrain_objects: usize,
    /// Background samples synthesized for pre-training.
    pub pretrain_background: usize,
    /// Pre-training epochs.
    pub pretrain_epochs: usize,
    /// Pre-training mini-batch size.
    pub pretrain_batch: usize,
    /// Pre-training learning rate.
    pub pretrain_lr: f32,
    /// Number of auxiliary domains synthesized for generic backbone
    /// pre-training (the ImageNet-pretraining stand-in). The real
    /// YOLOv4-ResNet18 backbone is pre-trained on large diverse corpora,
    /// which is what makes the paper's frozen-front latent replay viable;
    /// we reproduce that by pre-training the front across `backbone_domains`
    /// randomly-generated domains (never the stream's own domains) before
    /// specializing the head on the source domain.
    pub backbone_domains: usize,
    /// Weight-initialization / pre-training seed.
    pub seed: u64,
}

impl StudentConfig {
    /// Default configuration for a given world shape.
    pub fn new(feature_dim: usize, num_classes: usize, seed: u64) -> Self {
        Self {
            feature_dim,
            num_classes,
            widths: vec![64, 64, 48],
            head_width: 32,
            confidence_threshold: 0.5,
            pretrain_objects: 1000,
            pretrain_background: 500,
            pretrain_epochs: 25,
            pretrain_batch: 64,
            pretrain_lr: 0.05,
            backbone_domains: 8,
            seed,
        }
    }

    /// Shrinks pre-training for fast unit tests.
    pub fn quick(mut self) -> Self {
        self.widths = vec![32, 24];
        self.head_width = 16;
        self.pretrain_objects = 240;
        self.pretrain_background = 120;
        self.pretrain_epochs = 12;
        self.backbone_domains = 5;
        self
    }
}

/// The lightweight, online-trainable edge detector.
///
/// # Examples
///
/// ```
/// use shoggoth_models::{Detector, StudentConfig, StudentDetector};
/// use shoggoth_video::presets;
///
/// let config = presets::kitti(3).with_total_frames(30);
/// let student_cfg = StudentConfig::new(32, 1, 5).quick();
/// let mut student = StudentDetector::pretrained_with(student_cfg, &config.library, 0);
/// let frame = config.build().next().expect("stream has frames");
/// let detections = student.detect(&frame);
/// assert!(detections.iter().all(|d| d.confidence > 0.0));
/// ```
#[derive(Debug, Clone)]
pub struct StudentDetector {
    net: Mlp,
    config: StudentConfig,
    /// Layer index at which latent replay injects by default (input of the
    /// classification head).
    default_replay_layer: usize,
}

impl StudentDetector {
    /// Builds an untrained student from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `widths` is empty.
    pub fn new(config: StudentConfig) -> Self {
        assert!(
            !config.widths.is_empty(),
            "student needs at least one hidden block"
        );
        let mut rng = Rng::seed_from(config.seed ^ 0x5354_5544); // "STUD"
        let mut layers: Vec<Box<dyn shoggoth_tensor::Layer>> = Vec::new();
        // Input normalization: real detectors standardize inputs and carry
        // early BN layers; adapting these statistics online is what
        // absorbs illumination/contrast drift under the freeze policy.
        layers.push(Box::new(BatchRenorm::new(config.feature_dim)));
        let mut in_dim = config.feature_dim;
        for &w in &config.widths {
            layers.push(Box::new(Dense::new(in_dim, w, &mut rng)));
            layers.push(Box::new(BatchRenorm::new(w)));
            layers.push(Box::new(Relu::new()));
            in_dim = w;
        }
        // Detection head: everything after the replay layer ("pool").
        // Adaptive training retrains all of it, so it carries real
        // capacity: a hidden layer plus the classification layer.
        let head_input = layers.len();
        layers.push(Box::new(Dense::new(in_dim, config.head_width, &mut rng)));
        layers.push(Box::new(Relu::new()));
        layers.push(Box::new(Dense::new(
            config.head_width,
            config.num_classes + 1,
            &mut rng,
        )));
        let net = Mlp::new(layers);
        Self {
            net,
            config,
            default_replay_layer: head_input,
        }
    }

    /// Builds a student with the default configuration and pre-trains it on
    /// one domain of the library (conventionally domain 0, the source).
    pub fn pretrained(library: &DomainLibrary, domain_index: usize, seed: u64) -> Self {
        let config = StudentConfig::new(
            library.world().feature_dim(),
            library.world().num_classes(),
            seed,
        );
        Self::pretrained_with(config, library, domain_index)
    }

    /// Builds and pre-trains a student with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration's world shape disagrees with the library
    /// or `domain_index` is out of range.
    pub fn pretrained_with(
        config: StudentConfig,
        library: &DomainLibrary,
        domain_index: usize,
    ) -> Self {
        assert_eq!(
            config.feature_dim,
            library.world().feature_dim(),
            "feature dimension mismatch"
        );
        assert_eq!(
            config.num_classes,
            library.world().num_classes(),
            "class count mismatch"
        );
        let mut student = Self::new(config);
        student.pretrain_on_domain(library, domain_index);
        student
    }

    /// Pre-trains the network in two phases, mirroring the paper's setup:
    ///
    /// 1. **Backbone pre-training** — the full network trains on samples
    ///    from [`StudentConfig::backbone_domains`] auxiliary domains
    ///    synthesized from the same feature world but *disjoint from the
    ///    stream's own domains* (the ImageNet-pretraining stand-in). This
    ///    gives the front layers the drift-robust low-level features the
    ///    paper's freeze policy relies on.
    /// 2. **Head specialization** — only the classification head trains on
    ///    the given (source) domain, so the deployed model is
    ///    source-specialized exactly like a detector fine-tuned for one
    ///    camera.
    pub fn pretrain_on_domain(&mut self, library: &DomainLibrary, domain_index: usize) {
        let mut rng = Rng::seed_from(self.config.seed ^ 0x5052_4554); // "PRET"

        // Phase 1: generic backbone corpus from auxiliary domains.
        if self.config.backbone_domains > 0 {
            // Same world (same class prototypes), but an independent
            // domain-generation stream so the auxiliary corpus never
            // replicates the stream's own domains.
            let mut aux = DomainLibrary::with_domain_seed(
                library.world().config().clone(),
                self.config.seed ^ 0x4241_434b, // "BACK"
            );
            let mut corpus = Vec::new();
            for i in 0..self.config.backbone_domains {
                use shoggoth_video::{Illumination, Weather};
                let illum = match i % 3 {
                    0 => Illumination::Day,
                    1 => Illumination::Dusk,
                    _ => Illumination::Night,
                };
                let weather = match (i / 3) % 3 {
                    0 => Weather::Sunny,
                    1 => Weather::Cloudy,
                    _ => Weather::Rainy,
                };
                let severity = rng.range_f64(0.2, 0.9) as f32;
                let mix = vec![1.0; library.world().num_classes()];
                let domain = aux.generate(&format!("aux-{i}"), illum, weather, severity, mix);
                corpus.extend(sample_domain_batch(
                    library.world(),
                    &domain,
                    self.config.pretrain_objects / 2,
                    self.config.pretrain_background / 2,
                    &mut rng,
                ));
            }
            self.fit(
                &corpus,
                self.config.pretrain_epochs,
                self.config.pretrain_batch,
                self.config.pretrain_lr,
                &mut rng,
            );
        }

        // Phase 2: specialize the head on the source domain.
        let samples = sample_domain_batch(
            library.world(),
            library.domain(domain_index),
            self.config.pretrain_objects,
            self.config.pretrain_background,
            &mut rng,
        );
        let front_scale = if self.config.backbone_domains > 0 {
            0.0
        } else {
            1.0
        };
        self.fit_scaled(
            &samples,
            self.config.pretrain_epochs,
            self.config.pretrain_batch,
            self.config.pretrain_lr,
            front_scale,
            &mut rng,
        );
    }

    /// Plain supervised fitting over labeled samples (used for
    /// pre-training; *adaptive* training with replay lives in the core
    /// crate's trainer).
    pub fn fit(
        &mut self,
        samples: &[LabeledSample],
        epochs: usize,
        batch: usize,
        lr: f32,
        rng: &mut Rng,
    ) {
        self.fit_scaled(samples, epochs, batch, lr, 1.0, rng);
    }

    /// Supervised fitting with a reduced learning rate on the layers
    /// before the default replay layer (`front_scale = 0` trains the head
    /// only, `1.0` trains everything).
    ///
    /// # Panics
    ///
    /// Panics if the sample feature width disagrees with the network
    /// input — a shape pinned by the constructor.
    pub fn fit_scaled(
        &mut self,
        samples: &[LabeledSample],
        epochs: usize,
        batch: usize,
        lr: f32,
        front_scale: f32,
        rng: &mut Rng,
    ) {
        if samples.is_empty() {
            return;
        }
        let sgd = SgdConfig::new(lr)
            .with_momentum(0.9)
            .with_weight_decay(1e-4);
        let boundary = self.default_replay_layer;
        let scales: Vec<f32> = (0..self.net.len())
            .map(|i| if i < boundary { front_scale } else { 1.0 })
            .collect();
        let mut order: Vec<usize> = (0..samples.len()).collect();
        for _ in 0..epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(batch.max(1)) {
                let selected: Vec<LabeledSample> =
                    chunk.iter().map(|&i| samples[i].clone()).collect();
                let (x, labels) = LabeledSample::to_batch(&selected);
                let logits = self
                    .net
                    .forward(&x, Mode::Train)
                    .expect("pretrain batch shape is valid");
                let (_, grad) =
                    losses::softmax_cross_entropy(&logits, &labels).expect("label shapes match");
                self.net.backward_discard(&grad).expect("forward cached");
                self.net
                    .step_scaled(&sgd, &scales)
                    .expect("scales match layer count");
            }
        }
    }

    /// Classification accuracy over labeled samples (eval mode).
    ///
    /// # Panics
    ///
    /// Panics if the sample feature width disagrees with the network
    /// input — a shape pinned by the constructor.
    pub fn evaluate(&mut self, samples: &[LabeledSample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let (x, labels) = LabeledSample::to_batch(samples);
        let logits = self.net.forward(&x, Mode::Eval).expect("batch shape valid");
        losses::accuracy(&logits, &labels)
    }

    /// The layer index at which latent replay injects by default (the
    /// paper's "penultimate (pool)" layer — the input of the head).
    pub fn default_replay_layer(&self) -> usize {
        self.default_replay_layer
    }

    /// Number of layers in the network.
    pub fn layer_count(&self) -> usize {
        self.net.len()
    }

    /// The configuration the student was built with.
    pub fn config(&self) -> &StudentConfig {
        &self.config
    }

    /// Confidence threshold θ used for the paper's α estimate.
    pub fn confidence_threshold(&self) -> f32 {
        self.config.confidence_threshold
    }

    /// Read access to the underlying network.
    pub fn net(&self) -> &Mlp {
        &self.net
    }

    /// Mutable access to the underlying network (the adaptive trainer needs
    /// partial forward/backward control).
    pub fn net_mut(&mut self) -> &mut Mlp {
        &mut self.net
    }

    /// Serialized model size in bytes (what AMS ships per update).
    pub fn weight_bytes(&self) -> usize {
        self.net.byte_size()
    }
}

impl Detector for StudentDetector {
    fn name(&self) -> &str {
        "student"
    }

    fn detect(&mut self, frame: &Frame) -> Vec<Detection> {
        if frame.proposals.is_empty() {
            return Vec::new();
        }
        let features = features_matrix(&frame.proposals);
        let predictions = self.classify(&features);
        let bg = background_class(self.config.num_classes);
        frame
            .proposals
            .iter()
            .zip(predictions)
            .filter(|(_, (class, _))| *class < bg)
            .map(|(p, (class, confidence))| Detection {
                bbox: p.bbox,
                class,
                confidence,
            })
            .collect()
    }

    fn classify(&mut self, features: &Matrix) -> Vec<(ClassId, f32)> {
        if features.rows() == 0 {
            return Vec::new();
        }
        let logits = self
            .net
            .forward(features, Mode::Eval)
            .expect("feature width matches network input");
        let probs = losses::softmax(&logits);
        (0..probs.rows())
            .map(|r| {
                let row = probs.row(r);
                let (class, &p) = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .expect("non-empty row");
                (class, p)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shoggoth_video::{Illumination, Weather, WorldConfig};

    fn library() -> DomainLibrary {
        let mut lib = DomainLibrary::new(WorldConfig::new(3, 16, 4));
        lib.generate(
            "day",
            Illumination::Day,
            Weather::Sunny,
            0.0,
            vec![1.0, 1.0, 1.0],
        );
        // A heavy but low-noise drift: recoverable by adaptation (the
        // noise-limited night ceiling would mask recovery).
        lib.generate(
            "night",
            Illumination::Dusk,
            Weather::Cloudy,
            0.9,
            vec![1.0, 1.0, 1.0],
        );
        lib
    }

    fn quick_config() -> StudentConfig {
        StudentConfig::new(16, 3, 1).quick()
    }

    #[test]
    fn pretraining_learns_the_source_domain() {
        let lib = library();
        let mut student = StudentDetector::pretrained_with(quick_config(), &lib, 0);
        let mut rng = Rng::seed_from(10);
        let eval = sample_domain_batch(lib.world(), lib.domain(0), 200, 100, &mut rng);
        let acc = student.evaluate(&eval);
        assert!(acc > 0.75, "source-domain accuracy {acc}");
    }

    #[test]
    fn data_drift_degrades_the_student() {
        // The core claim behind the whole paper: a lightweight model
        // pre-trained on one domain loses accuracy on a severe domain.
        let lib = library();
        let mut student = StudentDetector::pretrained_with(quick_config(), &lib, 0);
        let mut rng = Rng::seed_from(11);
        let source = sample_domain_batch(lib.world(), lib.domain(0), 300, 150, &mut rng);
        let drifted = sample_domain_batch(lib.world(), lib.domain(1), 300, 150, &mut rng);
        let acc_source = student.evaluate(&source);
        let acc_drifted = student.evaluate(&drifted);
        assert!(
            acc_drifted < acc_source - 0.10,
            "drift should hurt: source {acc_source}, drifted {acc_drifted}"
        );
    }

    #[test]
    fn fine_tuning_on_drifted_data_recovers_accuracy() {
        let lib = library();
        let mut student = StudentDetector::pretrained_with(quick_config(), &lib, 0);
        let mut rng = Rng::seed_from(12);
        let train = sample_domain_batch(lib.world(), lib.domain(1), 300, 150, &mut rng);
        let eval = sample_domain_batch(lib.world(), lib.domain(1), 300, 150, &mut rng);
        let before = student.evaluate(&eval);
        student.fit(&train, 10, 64, 0.03, &mut rng);
        let after = student.evaluate(&eval);
        assert!(
            after > before + 0.04,
            "fine-tuning should recover accuracy: {before} -> {after}"
        );
    }

    #[test]
    fn default_replay_layer_is_head_input() {
        let student = StudentDetector::new(quick_config());
        // Input BRN + 2 hidden blocks of 3 layers -> head input at index 7.
        assert_eq!(student.default_replay_layer(), 7);
        // Head: Dense -> ReLU -> Dense.
        assert_eq!(student.layer_count(), 10);
    }

    #[test]
    fn detect_drops_background_predictions() {
        let lib = library();
        let mut student = StudentDetector::pretrained_with(quick_config(), &lib, 0);
        let mut rng = Rng::seed_from(13);
        // A frame of pure background proposals should yield few detections.
        let bg_features: Vec<Vec<f32>> = (0..20)
            .map(|_| lib.domain(0).background_appearance(&mut rng))
            .collect();
        let frame = Frame {
            index: 0,
            timestamp: 0.0,
            scene_index: 0,
            domain_name: "day".into(),
            ground_truth: Vec::new(),
            proposals: bg_features
                .into_iter()
                .map(|features| shoggoth_video::Proposal {
                    bbox: shoggoth_video::BBox::new(0.1, 0.1, 0.1, 0.1),
                    features,
                    true_class: None,
                    track_id: None,
                })
                .collect(),
            raw_bytes: 0,
            motion_magnitude: 0.0,
        };
        let detections = student.detect(&frame);
        assert!(
            detections.len() <= 6,
            "too many false positives on background: {}",
            detections.len()
        );
    }

    #[test]
    fn classify_on_empty_batch_is_empty() {
        let mut student = StudentDetector::new(quick_config());
        assert!(student.classify(&Matrix::zeros(0, 16)).is_empty());
    }

    #[test]
    fn weight_bytes_counts_parameters() {
        let student = StudentDetector::new(quick_config());
        assert_eq!(student.weight_bytes(), student.net().param_count() * 4);
    }
}
