//! The detector abstraction shared by student and teacher.

use shoggoth_tensor::Matrix;
use shoggoth_video::{BBox, ClassId, Frame};

/// One detection: a box, a foreground class, and a confidence score
/// (the model's normalized posterior, the paper's `d_i`).
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// Detected bounding box (the proposal's box).
    pub bbox: BBox,
    /// Predicted foreground class.
    pub class: ClassId,
    /// Normalized posterior probability of the predicted class, in `[0, 1]`.
    pub confidence: f32,
}

/// A model that turns a frame's proposals into detections.
///
/// Implementations classify every proposal and emit one [`Detection`] per
/// proposal predicted as a foreground class (background predictions are
/// dropped). Detections keep their confidence so evaluation can rank them.
pub trait Detector {
    /// Human-readable model name.
    fn name(&self) -> &str;

    /// Detects objects in a frame.
    fn detect(&mut self, frame: &Frame) -> Vec<Detection>;

    /// Classifies a raw feature batch, returning `(class, confidence)` per
    /// row. The class may be the background index.
    fn classify(&mut self, features: &Matrix) -> Vec<(ClassId, f32)>;
}

/// Stacks proposal feature vectors into a batch matrix (one row per
/// proposal).
///
/// Returns a `0 × dim` matrix when `proposals` is empty (`dim` falls back
/// to 1 so downstream shape checks fail loudly rather than silently).
pub fn features_matrix(proposals: &[shoggoth_video::Proposal]) -> Matrix {
    let dim = proposals.first().map_or(1, |p| p.features.len());
    let mut m = Matrix::zeros(proposals.len(), dim);
    for (r, p) in proposals.iter().enumerate() {
        m.row_mut(r).copy_from_slice(&p.features);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use shoggoth_video::Proposal;

    #[test]
    fn features_matrix_stacks_rows() {
        let proposals = vec![
            Proposal {
                bbox: BBox::new(0.0, 0.0, 0.1, 0.1),
                features: vec![1.0, 2.0],
                true_class: None,
                track_id: None,
            },
            Proposal {
                bbox: BBox::new(0.5, 0.5, 0.1, 0.1),
                features: vec![3.0, 4.0],
                true_class: Some(0),
                track_id: Some(1),
            },
        ];
        let m = features_matrix(&proposals);
        assert_eq!((m.rows(), m.cols()), (2, 2));
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn empty_proposals_yield_empty_matrix() {
        let m = features_matrix(&[]);
        assert_eq!(m.rows(), 0);
    }
}
