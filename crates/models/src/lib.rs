//! Teacher and student detection models.
//!
//! The paper runs a lightweight YOLOv4-ResNet18 student on the edge and an
//! expensive Mask-R-CNN "golden" teacher in the cloud. Our substitutes work
//! over the latent feature space of `shoggoth-video`:
//!
//! * [`StudentDetector`] — a small trainable MLP classifier over region
//!   proposals, pre-trained on the **source domain only** (so it genuinely
//!   degrades under drift), with Batch Renormalization layers and a
//!   designated replay layer for latent replay (§III-B).
//! * [`TeacherDetector`] — a wider/deeper MLP pre-trained across **all**
//!   domains of a stream's library, playing the cloud golden model whose
//!   labels the paper verified to be near-human.
//! * [`data`] — shared sample synthesis and the paper's Eq. (1)
//!   pseudo-labeling rule (confident detector outputs become positive
//!   labels; everything else is background).
//!
//! # Examples
//!
//! ```
//! use shoggoth_models::{Detector, StudentConfig, StudentDetector, TeacherConfig, TeacherDetector};
//! use shoggoth_video::presets;
//!
//! let config = presets::kitti(7).with_total_frames(60);
//! let mut student = StudentDetector::pretrained_with(
//!     StudentConfig::new(32, 1, 11).quick(), &config.library, 0);
//! let mut teacher = TeacherDetector::pretrained_with(
//!     TeacherConfig::new(32, 1, 13).quick(), &config.library);
//! let frame = config.build().next().expect("stream has frames");
//! let student_dets = student.detect(&frame);
//! let teacher_dets = teacher.detect(&frame);
//! assert!(student_dets.len() <= frame.proposals.len());
//! assert!(teacher_dets.len() <= frame.proposals.len());
//! ```

pub mod data;
pub mod detector;
pub mod student;
pub mod teacher;

pub use data::{pseudo_label, sample_domain_batch, LabeledSample};
pub use detector::{features_matrix, Detection, Detector};
pub use student::{StudentConfig, StudentDetector};
pub use teacher::{TeacherConfig, TeacherDetector};

/// Class index used for the background (non-object) class: one past the
/// last foreground class.
pub fn background_class(num_classes: usize) -> usize {
    num_classes
}
