//! The cloud "golden" teacher (Mask-R-CNN ResNeXt-101 stand-in).

use crate::background_class;
use crate::data::{sample_domain_batch, LabeledSample};
use crate::detector::{features_matrix, Detection, Detector};
use shoggoth_tensor::{losses, Dense, Matrix, Mlp, Mode, Relu, SgdConfig};
use shoggoth_util::Rng;
use shoggoth_video::{ClassId, DomainLibrary, Frame};

/// Configuration of the teacher detector.
#[derive(Debug, Clone, PartialEq)]
pub struct TeacherConfig {
    /// Latent feature dimensionality.
    pub feature_dim: usize,
    /// Number of foreground classes.
    pub num_classes: usize,
    /// Hidden widths — much larger than the student's.
    pub widths: Vec<usize>,
    /// Object samples synthesized per domain for pre-training.
    pub objects_per_domain: usize,
    /// Background samples synthesized per domain for pre-training.
    pub background_per_domain: usize,
    /// Pre-training epochs.
    pub epochs: usize,
    /// Pre-training mini-batch size.
    pub batch: usize,
    /// Pre-training learning rate.
    pub lr: f32,
    /// Seed for initialization and pre-training.
    pub seed: u64,
}

impl TeacherConfig {
    /// Default configuration for a world shape.
    pub fn new(feature_dim: usize, num_classes: usize, seed: u64) -> Self {
        Self {
            feature_dim,
            num_classes,
            widths: vec![128, 128, 64],
            objects_per_domain: 600,
            background_per_domain: 300,
            epochs: 18,
            batch: 128,
            lr: 0.03,
            seed,
        }
    }

    /// Shrinks pre-training for fast unit tests.
    pub fn quick(mut self) -> Self {
        self.widths = vec![64, 48];
        self.objects_per_domain = 200;
        self.background_per_domain = 100;
        self.epochs = 10;
        self
    }
}

/// The high-capacity cloud detector, pre-trained across **all** domains of
/// a stream's library — the paper's golden labeler whose outputs stand in
/// for ground truth during online labeling.
///
/// # Examples
///
/// ```
/// use shoggoth_models::{Detector, TeacherConfig, TeacherDetector};
/// use shoggoth_video::presets;
///
/// let config = presets::kitti(9).with_total_frames(30);
/// let teacher_cfg = TeacherConfig::new(32, 1, 2).quick();
/// let mut teacher = TeacherDetector::pretrained_with(teacher_cfg, &config.library);
/// let frame = config.build().next().expect("stream has frames");
/// let detections = teacher.detect(&frame);
/// assert!(detections.len() <= frame.proposals.len());
/// ```
#[derive(Debug, Clone)]
pub struct TeacherDetector {
    net: Mlp,
    config: TeacherConfig,
}

impl TeacherDetector {
    /// Builds an untrained teacher.
    ///
    /// # Panics
    ///
    /// Panics if `widths` is empty.
    pub fn new(config: TeacherConfig) -> Self {
        assert!(
            !config.widths.is_empty(),
            "teacher needs at least one hidden layer"
        );
        let mut rng = Rng::seed_from(config.seed ^ 0x5445_4143_4845); // "TEACHE"
        let mut layers: Vec<Box<dyn shoggoth_tensor::Layer>> = Vec::new();
        let mut in_dim = config.feature_dim;
        for &w in &config.widths {
            layers.push(Box::new(Dense::new(in_dim, w, &mut rng)));
            layers.push(Box::new(Relu::new()));
            in_dim = w;
        }
        layers.push(Box::new(Dense::new(
            in_dim,
            config.num_classes + 1,
            &mut rng,
        )));
        Self {
            net: Mlp::new(layers),
            config,
        }
    }

    /// Builds a teacher with the default configuration and pre-trains it on
    /// every domain of the library.
    pub fn pretrained(library: &DomainLibrary, seed: u64) -> Self {
        let config = TeacherConfig::new(
            library.world().feature_dim(),
            library.world().num_classes(),
            seed,
        );
        Self::pretrained_with(config, library)
    }

    /// Builds and pre-trains a teacher with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration's world shape disagrees with the
    /// library, or the library has no domains.
    pub fn pretrained_with(config: TeacherConfig, library: &DomainLibrary) -> Self {
        assert_eq!(
            config.feature_dim,
            library.world().feature_dim(),
            "feature dimension mismatch"
        );
        assert_eq!(
            config.num_classes,
            library.world().num_classes(),
            "class count mismatch"
        );
        assert!(!library.is_empty(), "library has no domains");
        let mut teacher = Self::new(config);
        teacher.pretrain(library);
        teacher
    }

    /// Pre-trains on samples pooled from every domain.
    ///
    /// # Panics
    ///
    /// Panics if the library's feature width disagrees with the network
    /// input — a shape pinned by the constructor.
    pub fn pretrain(&mut self, library: &DomainLibrary) {
        let mut rng = Rng::seed_from(self.config.seed ^ 0x474f_4c44); // "GOLD"
        let mut samples: Vec<LabeledSample> = Vec::new();
        for domain in library.domains() {
            samples.extend(sample_domain_batch(
                library.world(),
                domain,
                self.config.objects_per_domain,
                self.config.background_per_domain,
                &mut rng,
            ));
        }
        let sgd = SgdConfig::new(self.config.lr)
            .with_momentum(0.9)
            .with_weight_decay(1e-4);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        for _ in 0..self.config.epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(self.config.batch.max(1)) {
                let selected: Vec<LabeledSample> =
                    chunk.iter().map(|&i| samples[i].clone()).collect();
                let (x, labels) = LabeledSample::to_batch(&selected);
                let logits = self
                    .net
                    .forward(&x, Mode::Train)
                    .expect("batch shape is valid");
                let (_, grad) =
                    losses::softmax_cross_entropy(&logits, &labels).expect("label shapes match");
                self.net.backward_discard(&grad).expect("forward cached");
                self.net.step(&sgd).expect("finite params");
            }
        }
    }

    /// Classification accuracy over labeled samples.
    ///
    /// # Panics
    ///
    /// Panics if the sample feature width disagrees with the network
    /// input — a shape pinned by the constructor.
    pub fn evaluate(&mut self, samples: &[LabeledSample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let (x, labels) = LabeledSample::to_batch(samples);
        let logits = self.net.forward(&x, Mode::Eval).expect("batch shape valid");
        losses::accuracy(&logits, &labels)
    }

    /// The configuration the teacher was built with.
    pub fn config(&self) -> &TeacherConfig {
        &self.config
    }

    /// Serialized model size in bytes.
    pub fn weight_bytes(&self) -> usize {
        self.net.byte_size()
    }
}

impl Detector for TeacherDetector {
    fn name(&self) -> &str {
        "teacher"
    }

    fn detect(&mut self, frame: &Frame) -> Vec<Detection> {
        if frame.proposals.is_empty() {
            return Vec::new();
        }
        let features = features_matrix(&frame.proposals);
        let predictions = self.classify(&features);
        let bg = background_class(self.config.num_classes);
        frame
            .proposals
            .iter()
            .zip(predictions)
            .filter(|(_, (class, _))| *class < bg)
            .map(|(p, (class, confidence))| Detection {
                bbox: p.bbox,
                class,
                confidence,
            })
            .collect()
    }

    fn classify(&mut self, features: &Matrix) -> Vec<(ClassId, f32)> {
        if features.rows() == 0 {
            return Vec::new();
        }
        let logits = self
            .net
            .forward(features, Mode::Eval)
            .expect("feature width matches network input");
        let probs = losses::softmax(&logits);
        (0..probs.rows())
            .map(|r| {
                let row = probs.row(r);
                let (class, &p) = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .expect("non-empty row");
                (class, p)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::student::{StudentConfig, StudentDetector};
    use shoggoth_video::{Illumination, Weather, WorldConfig};

    fn library() -> DomainLibrary {
        let mut lib = DomainLibrary::new(WorldConfig::new(3, 16, 8));
        lib.generate(
            "day",
            Illumination::Day,
            Weather::Sunny,
            0.0,
            vec![1.0, 1.0, 1.0],
        );
        lib.generate(
            "dusk",
            Illumination::Dusk,
            Weather::Cloudy,
            0.5,
            vec![1.0, 1.0, 1.0],
        );
        lib.generate(
            "night",
            Illumination::Night,
            Weather::Rainy,
            0.9,
            vec![1.0, 1.0, 1.0],
        );
        lib
    }

    #[test]
    fn teacher_is_accurate_across_all_domains() {
        let lib = library();
        let mut teacher =
            TeacherDetector::pretrained_with(TeacherConfig::new(16, 3, 1).quick(), &lib);
        let mut rng = Rng::seed_from(20);
        for (i, domain) in lib.domains().iter().enumerate() {
            let eval = sample_domain_batch(lib.world(), domain, 200, 100, &mut rng);
            let acc = teacher.evaluate(&eval);
            assert!(acc > 0.6, "domain {i} accuracy {acc}");
        }
    }

    #[test]
    fn teacher_beats_student_on_drifted_domains() {
        let lib = library();
        let mut teacher =
            TeacherDetector::pretrained_with(TeacherConfig::new(16, 3, 2).quick(), &lib);
        let mut student =
            StudentDetector::pretrained_with(StudentConfig::new(16, 3, 2).quick(), &lib, 0);
        let mut rng = Rng::seed_from(21);
        let eval = sample_domain_batch(lib.world(), lib.domain(2), 300, 150, &mut rng);
        let teacher_acc = teacher.evaluate(&eval);
        let student_acc = student.evaluate(&eval);
        assert!(
            teacher_acc > student_acc + 0.05,
            "teacher {teacher_acc} should clearly beat drifted student {student_acc}"
        );
    }

    #[test]
    fn teacher_is_larger_than_student() {
        let teacher = TeacherDetector::new(TeacherConfig::new(16, 3, 3));
        let student = StudentDetector::new(StudentConfig::new(16, 3, 3));
        assert!(teacher.weight_bytes() > 2 * student.weight_bytes());
    }

    #[test]
    fn pretraining_is_deterministic() {
        let lib = library();
        let build = || TeacherDetector::pretrained_with(TeacherConfig::new(16, 3, 7).quick(), &lib);
        let a = build().net.export_weights();
        let b = build().net.export_weights();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "library has no domains")]
    fn empty_library_rejected() {
        let lib = DomainLibrary::new(WorldConfig::new(2, 8, 1));
        TeacherDetector::pretrained_with(TeacherConfig::new(8, 2, 1).quick(), &lib);
    }
}
