//! Training-sample synthesis and the paper's pseudo-labeling rule.

use crate::background_class;
use crate::detector::Detector;
use shoggoth_tensor::Matrix;
use shoggoth_util::Rng;
use shoggoth_video::{Domain, FeatureWorld, Frame};

/// One labeled training sample: a proposal's features and its class label
/// (foreground class index, or the background index).
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledSample {
    /// Latent appearance features.
    pub features: Vec<f32>,
    /// Class label; `background_class(num_classes)` for negatives.
    pub label: usize,
}

impl LabeledSample {
    /// Stacks samples into a `(features, labels)` training batch.
    ///
    /// Returns an empty `0 × 1` matrix for an empty slice.
    pub fn to_batch(samples: &[LabeledSample]) -> (Matrix, Vec<usize>) {
        let dim = samples.first().map_or(1, |s| s.features.len());
        let mut m = Matrix::zeros(samples.len(), dim);
        let mut labels = Vec::with_capacity(samples.len());
        for (r, s) in samples.iter().enumerate() {
            m.row_mut(r).copy_from_slice(&s.features);
            labels.push(s.label);
        }
        (m, labels)
    }
}

/// Synthesizes a labeled batch directly from a domain: `n_objects` object
/// samples (classes drawn from the domain's mix) plus `n_background`
/// distractors.
///
/// Used to pre-train the student (source domain only) and the teacher (all
/// domains).
pub fn sample_domain_batch(
    world: &FeatureWorld,
    domain: &Domain,
    n_objects: usize,
    n_background: usize,
    rng: &mut Rng,
) -> Vec<LabeledSample> {
    let dim = world.feature_dim();
    let noise = domain.noise_std();
    let mut samples = Vec::with_capacity(n_objects + n_background);
    for _ in 0..n_objects {
        let class = domain.sample_class(rng);
        let jitter: Vec<f32> = (0..dim).map(|_| rng.next_gaussian_f32(0.0, 0.45)).collect();
        let base = domain.object_appearance(world, class, &jitter);
        let features = base
            .iter()
            .map(|&v| v + rng.next_gaussian_f32(0.0, noise))
            .collect();
        samples.push(LabeledSample {
            features,
            label: class,
        });
    }
    let bg = background_class(world.num_classes());
    for _ in 0..n_background {
        samples.push(LabeledSample {
            features: domain.background_appearance(rng),
            label: bg,
        });
    }
    rng.shuffle(&mut samples);
    samples
}

/// Labels a frame's proposals with a detector, per the paper's Eq. (1):
/// a proposal whose predicted confidence clears `threshold` becomes a
/// positive sample of the predicted class (`y_i = 1` for the detector's
/// class); everything else becomes a background (negative) sample.
///
/// This is the cloud's **online labeling** step: the teacher never sees the
/// ground truth, so the labels inherit the teacher's own errors — exactly
/// the knowledge-distillation setting the paper studies.
pub fn pseudo_label<D: Detector + ?Sized>(
    detector: &mut D,
    frame: &Frame,
    num_classes: usize,
    threshold: f32,
) -> Vec<LabeledSample> {
    let features = crate::detector::features_matrix(&frame.proposals);
    if features.rows() == 0 {
        return Vec::new();
    }
    let predictions = detector.classify(&features);
    let bg = background_class(num_classes);
    frame
        .proposals
        .iter()
        .zip(predictions)
        .map(|(p, (class, confidence))| LabeledSample {
            features: p.features.clone(),
            label: if class < bg && confidence >= threshold {
                class
            } else {
                bg
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shoggoth_video::{DomainLibrary, Illumination, Weather, WorldConfig};

    fn library() -> DomainLibrary {
        let mut lib = DomainLibrary::new(WorldConfig::new(3, 8, 2));
        lib.generate(
            "day",
            Illumination::Day,
            Weather::Sunny,
            0.0,
            vec![1.0, 1.0, 1.0],
        );
        lib
    }

    #[test]
    fn domain_batch_has_requested_composition() {
        let lib = library();
        let mut rng = Rng::seed_from(0);
        let samples = sample_domain_batch(lib.world(), lib.domain(0), 20, 10, &mut rng);
        assert_eq!(samples.len(), 30);
        let bg = samples.iter().filter(|s| s.label == 3).count();
        assert_eq!(bg, 10);
        assert!(samples.iter().all(|s| s.features.len() == 8));
    }

    #[test]
    fn to_batch_shapes_match() {
        let lib = library();
        let mut rng = Rng::seed_from(1);
        let samples = sample_domain_batch(lib.world(), lib.domain(0), 5, 5, &mut rng);
        let (m, labels) = LabeledSample::to_batch(&samples);
        assert_eq!(m.rows(), 10);
        assert_eq!(labels.len(), 10);
        assert_eq!(m.row(3), samples[3].features.as_slice());
    }

    #[test]
    fn to_batch_of_nothing_is_empty() {
        let (m, labels) = LabeledSample::to_batch(&[]);
        assert_eq!(m.rows(), 0);
        assert!(labels.is_empty());
    }

    /// A detector stub that claims class 0 with fixed confidence.
    struct Fixed {
        confidence: f32,
    }

    impl Detector for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn detect(&mut self, _frame: &Frame) -> Vec<crate::Detection> {
            Vec::new()
        }
        fn classify(&mut self, features: &Matrix) -> Vec<(usize, f32)> {
            vec![(0, self.confidence); features.rows()]
        }
    }

    fn tiny_frame() -> Frame {
        Frame {
            index: 0,
            timestamp: 0.0,
            scene_index: 0,
            domain_name: "t".into(),
            ground_truth: Vec::new(),
            proposals: vec![
                shoggoth_video::Proposal {
                    bbox: shoggoth_video::BBox::new(0.0, 0.0, 0.1, 0.1),
                    features: vec![1.0, 2.0],
                    true_class: Some(1),
                    track_id: Some(0),
                },
                shoggoth_video::Proposal {
                    bbox: shoggoth_video::BBox::new(0.2, 0.2, 0.1, 0.1),
                    features: vec![3.0, 4.0],
                    true_class: None,
                    track_id: None,
                },
            ],
            raw_bytes: 100,
            motion_magnitude: 0.0,
        }
    }

    #[test]
    fn confident_predictions_become_positive_labels() {
        let mut det = Fixed { confidence: 0.9 };
        let labels = pseudo_label(&mut det, &tiny_frame(), 3, 0.5);
        assert_eq!(labels.len(), 2);
        assert!(labels.iter().all(|s| s.label == 0));
    }

    #[test]
    fn unconfident_predictions_become_background() {
        let mut det = Fixed { confidence: 0.3 };
        let labels = pseudo_label(&mut det, &tiny_frame(), 3, 0.5);
        assert!(labels.iter().all(|s| s.label == 3));
    }

    #[test]
    fn empty_frame_yields_no_labels() {
        let mut det = Fixed { confidence: 0.9 };
        let mut frame = tiny_frame();
        frame.proposals.clear();
        assert!(pseudo_label(&mut det, &frame, 3, 0.5).is_empty());
    }
}
