//! The five domain lints (L1–L5) and the panic allowlist.
//!
//! All lints work on [`SourceFile`]s preprocessed by [`crate::scan`]:
//! token searches only see real code (comments and literals blanked),
//! `#[cfg(test)]` modules are excluded, and a `// lint:allow(<name>)`
//! comment suppresses the named lint on that line.
//!
//! | lint | name          | what it forbids                                             |
//! |------|---------------|-------------------------------------------------------------|
//! | L1   | `determinism` | wall clocks / OS randomness / iteration-order nondeterminism in the simulation crates |
//! | L2   | `panic-audit` | panicking constructs outside the checked-in allowlist        |
//! | L3   | `float-eq`    | bare float `==`/`!=` and `partial_cmp(..).unwrap()`          |
//! | L4   | `unit-mix`    | `+`/`-` arithmetic across mismatched unit suffixes           |
//! | L5   | `telemetry-hygiene` | recorder calls inside the tensor kernels; wall clocks / OS randomness / hash iteration in the telemetry crate |

use crate::scan::SourceFile;
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// One diagnostic. Rendered as `path:line:col: [lint] message`.
pub struct Violation {
    /// Repo-relative path.
    pub path: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// 1-based char column.
    pub col: usize,
    /// Lint tag, e.g. `L2/panic-audit`.
    pub lint: &'static str,
    /// Human explanation with the offending token.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.col,
            self.lint,
            self.message
        )
    }
}

/// Whether the char terminates an identifier on its left.
fn is_word(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Finds occurrences of `token` in `line` at identifier boundaries: the
/// char before must not be part of a word (so `assert!` does not match
/// inside `debug_assert!`). Returns 0-based char columns.
fn word_starts(line: &str, token: &str) -> Vec<usize> {
    let chars: Vec<char> = line.chars().collect();
    let tok: Vec<char> = token.chars().collect();
    let mut out = Vec::new();
    if tok.is_empty() || chars.len() < tok.len() {
        return out;
    }
    for start in 0..=chars.len() - tok.len() {
        if chars[start..start + tok.len()] != tok[..] {
            continue;
        }
        let first = tok[0];
        if is_word(first) && start > 0 && is_word(chars[start - 1]) {
            continue;
        }
        out.push(start);
    }
    out
}

// ---------------------------------------------------------------------------
// L1 — determinism
// ---------------------------------------------------------------------------

/// Crates whose `src/` must stay bit-reproducible: the simulation core and
/// everything that feeds it frames or kernels.
pub const DETERMINISTIC_CRATES: &[&str] = &["core", "compute", "video", "net"];

const L1_BANNED: &[(&str, &str)] = &[
    (
        "Instant::now",
        "wall-clock time; use the simulated frame clock",
    ),
    (
        "SystemTime",
        "wall-clock time; use the simulated frame clock",
    ),
    (
        "thread_rng",
        "OS-seeded randomness; use shoggoth_util::Rng::seed_from",
    ),
    (
        "rand::random",
        "OS-seeded randomness; use shoggoth_util::Rng::seed_from",
    ),
    (
        "HashMap",
        "iteration order varies per process; use BTreeMap or a Vec",
    ),
    (
        "HashSet",
        "iteration order varies per process; use BTreeSet or a Vec",
    ),
];

/// L1: forbids nondeterministic constructs in the simulation crates. The
/// paper's results tables are reproduced from fixed seeds; a single wall
/// clock read or hash-order iteration breaks run-to-run bit equality.
pub fn l1_determinism(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, line) in file.clean.iter().enumerate() {
        if file.in_test[i] || file.suppressed(i, "determinism") {
            continue;
        }
        for &(token, why) in L1_BANNED {
            for col in word_starts(line, token) {
                out.push(Violation {
                    path: file.path.clone(),
                    line: i + 1,
                    col: col + 1,
                    lint: "L1/determinism",
                    message: format!("`{token}` is nondeterministic: {why}"),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// L2 — panic audit
// ---------------------------------------------------------------------------

/// The panicking construct families the audit inventories.
pub const PANIC_KINDS: &[(&str, &[&str])] = &[
    ("panic", &["panic!"]),
    ("unwrap", &[".unwrap()"]),
    ("expect", &[".expect("]),
    ("assert", &["assert!", "assert_eq!", "assert_ne!"]),
    ("unreachable", &["unreachable!"]),
    ("todo", &["todo!"]),
    ("unimplemented", &["unimplemented!"]),
];

/// Files on the per-frame adaptation hot path. These must stay free of
/// `panic!`/`unwrap`/`expect` even via the allowlist — failures there must
/// flow through `TrainError`/`SimError` so a poisoned tensor degrades one
/// session, not the whole fleet simulation.
pub const HOT_PATH: &[&str] = &[
    "crates/core/src/trainer.rs",
    "crates/core/src/sim.rs",
    "crates/core/src/controller.rs",
    "crates/core/src/resilience.rs",
    "crates/core/src/cloud.rs",
];

const HOT_PATH_KINDS: &[&str] = &["panic", "unwrap", "expect"];

/// One allowlist entry: `kind path max justification…`.
pub struct AllowEntry {
    /// 1-based line in the allowlist file (for stale-entry diagnostics).
    pub line: usize,
    /// Panic kind (first column).
    pub kind: String,
    /// Repo-relative file the budget applies to.
    pub path: String,
    /// Maximum count of that kind in that file.
    pub max: usize,
    /// Why the panics are acceptable (required).
    pub justification: String,
}

/// Parses the checked-in allowlist. Each non-comment line is
/// `<kind> <path> <max> <justification…>`; a missing or empty
/// justification is itself an error — the audit exists to force the
/// "why is this panic fine" conversation into the tree.
pub fn parse_allowlist(path: &Path, content: &str) -> Result<Vec<AllowEntry>, Vec<Violation>> {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    let known: Vec<&str> = PANIC_KINDS.iter().map(|&(kind, _)| kind).collect();
    for (i, raw) in content.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let entry = (|| {
            let kind = fields.next()?;
            let file = fields.next()?;
            let max: usize = fields.next()?.parse().ok()?;
            let justification = fields.collect::<Vec<_>>().join(" ");
            if justification.is_empty() || !known.contains(&kind) {
                return None;
            }
            Some(AllowEntry {
                line: i + 1,
                kind: kind.to_owned(),
                path: file.to_owned(),
                max,
                justification,
            })
        })();
        match entry {
            Some(e) => entries.push(e),
            None => errors.push(Violation {
                path: path.to_path_buf(),
                line: i + 1,
                col: 1,
                lint: "L2/panic-audit",
                message: format!(
                    "malformed allowlist entry (want `<kind> <path> <max> <justification…>` \
                     with kind one of {known:?}): `{line}`"
                ),
            }),
        }
    }
    if errors.is_empty() {
        Ok(entries)
    } else {
        Err(errors)
    }
}

/// L2: inventories panicking constructs in library sources against the
/// allowlist. Three failure modes:
///
/// * a site not covered by any entry (or beyond its budget) — new panics
///   need a written justification;
/// * a **stale** entry whose budget exceeds the live count — budgets must
///   shrink as code is cleaned up, or the audit rots;
/// * any `panic`/`unwrap`/`expect` budget on a [`HOT_PATH`] file — those
///   must use the typed error channel regardless of justification.
pub fn l2_panic_audit(
    files: &[SourceFile],
    allowlist: &[AllowEntry],
    allowlist_path: &Path,
) -> Vec<Violation> {
    /// A panicking site: `(line, col, token)`.
    type Site = (usize, usize, &'static str);
    let mut out = Vec::new();
    // (path, kind) -> sites
    let mut found: BTreeMap<(String, String), Vec<Site>> = BTreeMap::new();
    for file in files {
        let key_path = file.path.to_string_lossy().replace('\\', "/");
        for (i, line) in file.clean.iter().enumerate() {
            if file.in_test[i] || file.suppressed(i, "panic-audit") {
                continue;
            }
            for &(kind, tokens) in PANIC_KINDS {
                for &token in tokens {
                    for col in word_starts(line, token) {
                        found
                            .entry((key_path.clone(), kind.to_owned()))
                            .or_default()
                            .push((i + 1, col + 1, token));
                    }
                }
            }
        }
    }

    for entry in allowlist {
        let hot = HOT_PATH.contains(&entry.path.as_str())
            && HOT_PATH_KINDS.contains(&entry.kind.as_str());
        if hot {
            out.push(Violation {
                path: allowlist_path.to_path_buf(),
                line: entry.line,
                col: 1,
                lint: "L2/panic-audit",
                message: format!(
                    "`{}` budget on hot-path file {} is not allowlistable: \
                     return TrainError/SimError instead",
                    entry.kind, entry.path
                ),
            });
        }
        let live = found
            .get(&(entry.path.clone(), entry.kind.clone()))
            .map_or(0, Vec::len);
        if live < entry.max {
            out.push(Violation {
                path: allowlist_path.to_path_buf(),
                line: entry.line,
                col: 1,
                lint: "L2/panic-audit",
                message: format!(
                    "stale allowlist entry (\"{}\"): {} `{}` sites budgeted but only {live} \
                     found in {} — lower the budget so the audit stays tight",
                    entry.justification, entry.max, entry.kind, entry.path
                ),
            });
        }
    }

    for ((path, kind), sites) in &found {
        let budget = allowlist
            .iter()
            .find(|e| &e.path == path && &e.kind == kind)
            .map_or(0, |e| e.max);
        if sites.len() <= budget {
            continue;
        }
        for &(line, col, token) in &sites[budget..] {
            out.push(Violation {
                path: PathBuf::from(path),
                line,
                col,
                lint: "L2/panic-audit",
                message: format!(
                    "`{token}` exceeds the allowlist budget for this file ({} of {} `{kind}` \
                     sites covered); return a typed error, or justify it in {}",
                    budget,
                    sites.len(),
                    allowlist_path.display()
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// L3 — float hygiene
// ---------------------------------------------------------------------------

/// Reads a possible numeric literal starting at `chars[i]` (skipping an
/// optional sign) and reports whether it is a *float* literal: contains a
/// `.` followed by a digit, an exponent, or an `f32`/`f64` suffix.
/// `0..n` range syntax is rejected.
fn float_literal_at(chars: &[char], mut i: usize) -> bool {
    if chars.get(i) == Some(&'-') {
        i += 1;
    }
    let start = i;
    while chars.get(i).is_some_and(char::is_ascii_digit) {
        i += 1;
    }
    if i == start {
        return false;
    }
    let mut floaty = false;
    if chars.get(i) == Some(&'.') && chars.get(i + 1) != Some(&'.') {
        floaty = true;
        i += 1;
        while chars.get(i).is_some_and(char::is_ascii_digit) {
            i += 1;
        }
    }
    if matches!(chars.get(i), Some('e' | 'E'))
        && (chars.get(i + 1).is_some_and(char::is_ascii_digit)
            || matches!(chars.get(i + 1), Some('-' | '+')))
    {
        floaty = true;
        i += 2;
        while chars.get(i).is_some_and(char::is_ascii_digit) {
            i += 1;
        }
    }
    if chars.get(i) == Some(&'_') {
        i += 1;
    }
    if chars.get(i) == Some(&'f')
        && matches!(chars.get(i + 1), Some('3' | '6'))
        && matches!(chars.get(i + 2), Some('2' | '4'))
    {
        floaty = true;
    }
    floaty
}

/// Whether a float literal ends exactly at char index `end` (exclusive),
/// scanning backwards over `[0-9._]` plus an `f32`/`f64` suffix.
fn float_literal_before(chars: &[char], end: usize) -> bool {
    let mut start = end;
    while start > 0 {
        let c = chars[start - 1];
        if c.is_ascii_alphanumeric() || c == '.' || c == '_' {
            start -= 1;
        } else if matches!(c, '+' | '-')
            && start >= 2
            && matches!(chars[start - 2], 'e' | 'E')
            && start < end
        {
            // An exponent sign inside `1.5e-3`; keep scanning.
            start -= 1;
        } else {
            break;
        }
    }
    if start == end {
        return false;
    }
    let token: String = chars[start..end].iter().collect();
    if token.contains("..") {
        return false;
    }
    let token_chars: Vec<char> = token.chars().collect();
    float_literal_at(&token_chars, 0)
}

/// L3: float hygiene.
///
/// * Bare `==`/`!=` against a float literal — use
///   `shoggoth_util::float::{is_exact_zero, bit_eq, approx_eq}` so the
///   comparison semantics (bit-exact? tolerance?) are stated.
/// * `partial_cmp(..).unwrap()`/`.expect(..)` — a single NaN panics the
///   process; use `total_cmp` or handle the `None`.
pub fn l3_float_hygiene(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, line) in file.clean.iter().enumerate() {
        if file.in_test[i] || file.suppressed(i, "float-eq") {
            continue;
        }
        let chars: Vec<char> = line.chars().collect();
        for col in 0..chars.len().saturating_sub(1) {
            let op = [chars[col], chars[col + 1]];
            if op != ['=', '='] && op != ['!', '='] {
                continue;
            }
            // Exclude `<=`, `>=`, `===`-like runs and `a != =` noise.
            if col > 0 && matches!(chars[col - 1], '=' | '<' | '>' | '!') {
                continue;
            }
            if chars.get(col + 2) == Some(&'=') {
                continue;
            }
            // Operand after the operator …
            let mut j = col + 2;
            while chars.get(j) == Some(&' ') {
                j += 1;
            }
            let rhs_float = float_literal_at(&chars, j);
            // … or before it.
            let mut k = col;
            while k > 0 && chars[k - 1] == ' ' {
                k -= 1;
            }
            let lhs_float = float_literal_before(&chars, k);
            if rhs_float || lhs_float {
                out.push(Violation {
                    path: file.path.clone(),
                    line: i + 1,
                    col: col + 1,
                    lint: "L3/float-eq",
                    message: format!(
                        "bare `{}{}` against a float literal; use \
                         shoggoth_util::float::{{is_exact_zero, bit_eq, approx_eq}}",
                        op[0], op[1]
                    ),
                });
            }
        }
        for col in word_starts(line, "partial_cmp") {
            let rest: String = chars[col..].iter().collect();
            if rest.contains(".unwrap()") || rest.contains(".expect(") {
                out.push(Violation {
                    path: file.path.clone(),
                    line: i + 1,
                    col: col + 1,
                    lint: "L3/float-eq",
                    message: "`partial_cmp(..).unwrap()` panics on NaN; use `total_cmp` \
                              or handle the `None`"
                        .to_owned(),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// L4 — unit suffixes
// ---------------------------------------------------------------------------

/// Physical dimension of a recognised identifier suffix.
fn unit_dimension(ident: &str) -> Option<&'static str> {
    let suffix = ident.rsplit('_').next().unwrap_or(ident);
    match suffix {
        "ms" | "secs" | "sec" | "ns" | "us" => Some("time"),
        "bytes" | "kb" | "mb" | "gb" => Some("data"),
        "mbps" | "kbps" | "bps" => Some("bandwidth"),
        "fps" | "hz" => Some("frequency"),
        _ => None,
    }
}

/// Extracts the identifier chain (`a.b.c` → last segment) starting at
/// `chars[i]`, returning the final segment, or `None` if `chars[i]` does
/// not start an identifier.
fn ident_chain_last(chars: &[char], mut i: usize) -> Option<String> {
    let mut last = None;
    loop {
        let start = i;
        while chars
            .get(i)
            .is_some_and(|c| c.is_ascii_alphanumeric() || *c == '_')
        {
            i += 1;
        }
        if i == start {
            return last;
        }
        last = Some(chars[start..i].iter().collect());
        if chars.get(i) == Some(&'.') && chars.get(i + 1).is_some_and(|c| c.is_ascii_alphabetic()) {
            i += 1;
        } else {
            return last;
        }
    }
}

/// L4: flags `+`/`-` (and `+=`/`-=`) arithmetic between identifiers whose
/// unit suffixes name different dimensions — `deadline_ms - frame_bytes`
/// type-checks (both `u64`) but is always a bug. Multiplication and
/// division are left alone: they are how unit conversions are written.
pub fn l4_unit_suffixes(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, line) in file.clean.iter().enumerate() {
        if file.in_test[i] || file.suppressed(i, "unit-mix") {
            continue;
        }
        let chars: Vec<char> = line.chars().collect();
        for col in 0..chars.len() {
            if !matches!(chars[col], '+' | '-') {
                continue;
            }
            // Skip `->`, `+=`/`-=` handled by looking past the `=`.
            let mut after = col + 1;
            if chars.get(after) == Some(&'>') {
                continue;
            }
            if chars.get(after) == Some(&'=') {
                after += 1;
            }
            // Left operand: identifier ending right before the operator.
            let mut k = col;
            while k > 0 && chars[k - 1] == ' ' {
                k -= 1;
            }
            let mut start = k;
            while start > 0 {
                let c = chars[start - 1];
                if c.is_ascii_alphanumeric() || c == '_' {
                    start -= 1;
                } else {
                    break;
                }
            }
            if start == k {
                continue;
            }
            let lhs: String = chars[start..k].iter().collect();
            // Right operand: identifier chain after the operator.
            let mut j = after;
            while chars.get(j) == Some(&' ') {
                j += 1;
            }
            let Some(rhs) = ident_chain_last(&chars, j) else {
                continue;
            };
            let (Some(ld), Some(rd)) = (unit_dimension(&lhs), unit_dimension(&rhs)) else {
                continue;
            };
            if ld != rd {
                out.push(Violation {
                    path: file.path.clone(),
                    line: i + 1,
                    col: col + 1,
                    lint: "L4/unit-mix",
                    message: format!(
                        "`{lhs} {} {rhs}` mixes {ld} with {rd}; convert explicitly first",
                        chars[col]
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// L5 — telemetry hygiene
// ---------------------------------------------------------------------------

/// Tokens forbidden in `crates/tensor/src`: the hot tensor kernels must
/// never see a telemetry recorder — events belong at the pipeline layer,
/// not inside `matmul`.
const L5_TENSOR_BANNED: &[(&str, &str)] = &[
    (
        "Recorder",
        "tensor kernels must not emit telemetry; record at the pipeline layer",
    ),
    (
        "shoggoth_telemetry",
        "tensor kernels must not depend on the telemetry crate",
    ),
];

/// Tokens forbidden in `crates/telemetry/src`: stamps come from sim time
/// and frame indices only, and exports must iterate deterministically.
/// (The telemetry crate is deliberately *not* in [`DETERMINISTIC_CRATES`]
/// so each site reports one violation, under this lint's name.)
const L5_TELEMETRY_BANNED: &[(&str, &str)] = &[
    (
        "Instant::now",
        "telemetry stamps use sim time, never wall clock",
    ),
    (
        "SystemTime",
        "telemetry stamps use sim time, never wall clock",
    ),
    (
        "thread_rng",
        "recorders are observation-only and never draw randomness",
    ),
    (
        "rand::random",
        "recorders are observation-only and never draw randomness",
    ),
    (
        "HashMap",
        "exports must iterate deterministically; use BTreeMap or a Vec",
    ),
    (
        "HashSet",
        "exports must iterate deterministically; use BTreeSet or a Vec",
    ),
];

/// Whether `path` lives under `crates/<krate>/src`.
fn in_crate_src(path: &Path, krate: &str) -> bool {
    let mut parts = path.components().map(|c| c.as_os_str());
    parts.next() == Some("crates".as_ref())
        && parts.next().is_some_and(|name| name == krate)
        && parts.next() == Some("src".as_ref())
}

/// L5: telemetry hygiene. Keeps the observability layer on the right side
/// of two boundaries: the tensor kernels stay telemetry-free (no recorder
/// plumbed into the hot loops), and the telemetry crate itself stays
/// deterministic (sim-time stamps, no wall clocks or OS randomness).
pub fn l5_telemetry_hygiene(file: &SourceFile) -> Vec<Violation> {
    let banned: &[(&str, &str)] = if in_crate_src(&file.path, "tensor") {
        L5_TENSOR_BANNED
    } else if in_crate_src(&file.path, "telemetry") {
        L5_TELEMETRY_BANNED
    } else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (i, line) in file.clean.iter().enumerate() {
        if file.in_test[i] || file.suppressed(i, "telemetry-hygiene") {
            continue;
        }
        for &(token, why) in banned {
            for col in word_starts(line, token) {
                out.push(Violation {
                    path: file.path.clone(),
                    line: i + 1,
                    col: col + 1,
                    lint: "L5/telemetry-hygiene",
                    message: format!("`{token}`: {why}"),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceFile;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("crates/core/src/demo.rs"), src)
    }

    #[test]
    fn l1_flags_wall_clocks_and_hashmaps() {
        let f = file("let t = Instant::now();\nlet m: HashMap<u32, u32> = HashMap::new();\n");
        let v = l1_determinism(&f);
        assert_eq!(v.len(), 3, "Instant::now + two HashMap mentions");
        assert_eq!(v[0].line, 1);
        assert!(v[0].message.contains("Instant::now"));
    }

    #[test]
    fn l1_ignores_tests_comments_and_suppressed_lines() {
        let src = "\
// HashMap would be fine to mention here
let m = BTreeMap::new();
let h: HashMap<u8, u8> = HashMap::new(); // lint:allow(determinism) interned, never iterated

#[cfg(test)]
mod tests {
    fn t() { let _ = std::time::Instant::now(); }
}
";
        assert!(l1_determinism(&file(src)).is_empty());
    }

    #[test]
    fn word_boundaries_exclude_debug_assert_and_unwrap_or() {
        let f = file(
            "debug_assert!(x > 0);\nlet y = opt.unwrap_or(3);\nlet z = res.expect_err(\"e\");\n",
        );
        let v = l2_panic_audit(&[f], &[], Path::new("allow.txt"));
        assert!(
            v.is_empty(),
            "{:?}",
            v.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
    }

    #[test]
    fn l2_unbudgeted_panics_are_flagged_with_positions() {
        let f = file("fn f() {\n    x.unwrap();\n}\n");
        let v = l2_panic_audit(&[f], &[], Path::new("allow.txt"));
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].line, v[0].col), (2, 6));
        assert!(v[0].message.contains(".unwrap()"));
    }

    #[test]
    fn l2_budget_covers_exact_count_and_flags_overflow() {
        let allow = vec![AllowEntry {
            line: 1,
            kind: "assert".to_owned(),
            path: "crates/core/src/demo.rs".to_owned(),
            max: 1,
            justification: "constructor invariant".to_owned(),
        }];
        let ok = file("assert!(cap > 0);\n");
        assert!(l2_panic_audit(&[ok], &allow, Path::new("a.txt")).is_empty());
        let over = file("assert!(cap > 0);\nassert!(dim > 0);\n");
        let v = l2_panic_audit(&[over], &allow, Path::new("a.txt"));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn l2_stale_budget_is_an_error() {
        let allow = vec![AllowEntry {
            line: 4,
            kind: "unwrap".to_owned(),
            path: "crates/core/src/demo.rs".to_owned(),
            max: 2,
            justification: "legacy".to_owned(),
        }];
        let clean = file("fn f() {}\n");
        let v = l2_panic_audit(&[clean], &allow, Path::new("a.txt"));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 4, "points at the allowlist entry");
        assert!(v[0].message.contains("stale"));
    }

    #[test]
    fn l2_hot_path_budgets_are_rejected() {
        let allow = vec![AllowEntry {
            line: 2,
            kind: "expect".to_owned(),
            path: "crates/core/src/trainer.rs".to_owned(),
            max: 1,
            justification: "temporary".to_owned(),
        }];
        let v = l2_panic_audit(&[], &allow, Path::new("a.txt"));
        assert!(v.iter().any(|v| v.message.contains("hot-path")));
    }

    #[test]
    fn allowlist_parsing_requires_justification() {
        let good = "# comment\nassert crates/core/src/replay.rs 1 capacity invariant\n";
        let entries = parse_allowlist(Path::new("a.txt"), good)
            .map_err(|_| ())
            .expect("parses");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].max, 1);
        assert_eq!(entries[0].justification, "capacity invariant");

        let missing = "assert crates/core/src/replay.rs 1\n";
        assert!(parse_allowlist(Path::new("a.txt"), missing).is_err());
        let bad_kind = "segfault crates/core/src/replay.rs 1 because\n";
        assert!(parse_allowlist(Path::new("a.txt"), bad_kind).is_err());
    }

    #[test]
    fn l3_flags_bare_float_compares_both_sides() {
        let f = file("if x == 0.0 { }\nif 1.5e-3 != y { }\nif x == y { }\n");
        let v = l3_float_hygiene(&f);
        assert_eq!(v.len(), 2, "typed-only compare on line 3 is not flagged");
        assert_eq!(v[0].line, 1);
        assert_eq!(v[1].line, 2);
    }

    #[test]
    fn l3_leaves_ranges_ints_and_tolerant_helpers_alone() {
        let src = "\
if n == 0 { }
for i in 0..10 { }
if approx_eq(a, b, 1e-9) { }
let ok = x <= 0.5 && y >= 1.0;
";
        assert!(l3_float_hygiene(&file(src)).is_empty());
    }

    #[test]
    fn l3_flags_partial_cmp_unwrap() {
        let f = file("v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n");
        let v = l3_float_hygiene(&f);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("total_cmp"));
        let ok = file("v.sort_by(|a, b| a.total_cmp(b));\n");
        assert!(l3_float_hygiene(&ok).is_empty());
    }

    #[test]
    fn l4_flags_cross_dimension_sums() {
        let f = file("let x = deadline_ms - frame.size_bytes;\nlet y = budget_ms + latency_ms;\n");
        let v = l4_unit_suffixes(&f);
        assert_eq!(v.len(), 1, "same-dimension sum on line 2 is fine");
        assert_eq!(v[0].line, 1);
        assert!(v[0].message.contains("time"));
        assert!(v[0].message.contains("data"));
    }

    #[test]
    fn l5_flags_recorders_in_tensor_kernels() {
        let f = SourceFile::parse(
            PathBuf::from("crates/tensor/src/kernel.rs"),
            "fn run<R: Recorder>(rec: &mut R) { shoggoth_telemetry::noop(); }\n",
        );
        let v = l5_telemetry_hygiene(&f);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|x| x.lint == "L5/telemetry-hygiene"));
    }

    #[test]
    fn l5_flags_wall_clocks_in_telemetry() {
        let f = SourceFile::parse(
            PathBuf::from("crates/telemetry/src/recorder.rs"),
            "let t = Instant::now();\nlet m: HashMap<u32, u32> = HashMap::new();\n",
        );
        let v = l5_telemetry_hygiene(&f);
        assert_eq!(v.len(), 3, "Instant::now + two HashMap mentions");
    }

    #[test]
    fn l5_ignores_other_crates_and_suppressed_lines() {
        assert!(l5_telemetry_hygiene(&file("let r: Recorder = x;\n")).is_empty());
        let suppressed = SourceFile::parse(
            PathBuf::from("crates/telemetry/src/lib.rs"),
            "let t = SystemTime::now(); // lint:allow(telemetry-hygiene)\n",
        );
        assert!(l5_telemetry_hygiene(&suppressed).is_empty());
    }

    #[test]
    fn l4_allows_conversions_and_unitless_operands() {
        let src = "\
let rate = frame_bytes / window_secs;
let scaled = latency_ms * factor;
let total = count + frame_bytes;
";
        assert!(l4_unit_suffixes(&file(src)).is_empty());
    }
}
