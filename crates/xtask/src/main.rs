//! Repo automation for the Shoggoth reproduction.
//!
//! ```text
//! cargo run -p xtask -- lint [--root <dir>]
//! ```
//!
//! Runs the five domain lints (see [`lints`]) over every `crates/*/src`
//! tree and prints `path:line:col: [lint] message` diagnostics. Exit
//! status: `0` clean, `1` violations, `2` usage or I/O failure.
//!
//! The checks encode invariants `cargo clippy` cannot see because they are
//! properties of *this* codebase, not of Rust: bit-reproducible simulation
//! (L1), a justified-and-budgeted panic inventory (L2), explicit float
//! comparison semantics (L3), unit-suffix discipline on the
//! `_ms`/`_bytes`/`_mbps` bookkeeping the latency model lives on (L4), and
//! telemetry-boundary hygiene — no recorders in the tensor kernels, no
//! wall clocks in the telemetry crate (L5).

mod lints;
mod scan;

use lints::{
    l1_determinism, l2_panic_audit, l3_float_hygiene, l4_unit_suffixes, l5_telemetry_hygiene,
    parse_allowlist, Violation, DETERMINISTIC_CRATES,
};
use scan::SourceFile;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Repo-relative location of the panic allowlist consumed by L2.
const ALLOWLIST: &str = "crates/xtask/panic-allowlist.txt";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => root = it.next().map(PathBuf::from),
            "lint" if cmd.is_none() => cmd = Some("lint"),
            other => {
                eprintln!("xtask: unknown argument `{other}`");
                cmd = None;
                break;
            }
        }
    }
    let Some("lint") = cmd else {
        eprintln!("usage: cargo run -p xtask -- lint [--root <dir>]");
        return ExitCode::from(2);
    };
    let root = match root.map_or_else(find_root, Ok) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask: {e}");
            return ExitCode::from(2);
        }
    };
    match run_lint(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("xtask lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask: {e}");
            ExitCode::from(2)
        }
    }
}

/// Walks up from the current directory to the workspace root (the first
/// ancestor holding both `Cargo.toml` and `crates/`).
fn find_root() -> Result<PathBuf, String> {
    let start = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let mut dir = start.as_path();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Ok(dir.to_path_buf());
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => {
                return Err(format!(
                    "no workspace root (Cargo.toml + crates/) above {}",
                    start.display()
                ))
            }
        }
    }
}

/// Runs every lint over `crates/*/src` under `root`; returns the sorted
/// diagnostics.
fn run_lint(root: &Path) -> Result<Vec<Violation>, String> {
    let sources = load_sources(root).map_err(|e| format!("scanning sources: {e}"))?;
    let mut violations = Vec::new();

    let allowlist_rel = Path::new(ALLOWLIST);
    let allowlist_text = fs::read_to_string(root.join(allowlist_rel)).unwrap_or_default();
    let allowlist = match parse_allowlist(allowlist_rel, &allowlist_text) {
        Ok(entries) => entries,
        Err(mut errors) => {
            violations.append(&mut errors);
            Vec::new()
        }
    };

    for file in &sources {
        if in_deterministic_crate(&file.path) {
            violations.extend(l1_determinism(file));
        }
        violations.extend(l3_float_hygiene(file));
        violations.extend(l4_unit_suffixes(file));
        violations.extend(l5_telemetry_hygiene(file));
    }
    violations.extend(l2_panic_audit(&sources, &allowlist, allowlist_rel));

    violations.sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    Ok(violations)
}

/// Whether the repo-relative path sits in a crate covered by L1.
fn in_deterministic_crate(path: &Path) -> bool {
    let mut parts = path.components().map(|c| c.as_os_str());
    parts.next() == Some("crates".as_ref())
        && parts
            .next()
            .is_some_and(|name| DETERMINISTIC_CRATES.iter().any(|c| name == *c))
}

/// Loads and preprocesses every `crates/*/src/**/*.rs`, with repo-relative
/// paths and a deterministic order.
fn load_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(root.join("crates"))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut paths)?;
        }
    }
    let mut sources = Vec::with_capacity(paths.len());
    for path in paths {
        let content = fs::read_to_string(&path)?;
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        sources.push(SourceFile::parse(rel, &content));
    }
    Ok(sources)
}

/// Recursively collects `.rs` files in filename order.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
