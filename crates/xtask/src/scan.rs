//! Lexical preprocessing shared by all lints.
//!
//! The lints operate on *scrubbed* source: comments and string/char
//! literals are blanked out (each character replaced by a space, newlines
//! preserved) so that token searches cannot match inside prose or test
//! fixtures. Line and column numbers therefore map 1:1 onto the raw file.
//!
//! On top of the scrub, [`SourceFile`] marks which lines belong to
//! `#[cfg(test)]` modules (found by brace matching on the scrubbed text)
//! and which lines carry an inline `// lint:allow(<name>)` suppression in
//! the raw source.

use std::path::PathBuf;

/// One preprocessed source file.
pub struct SourceFile {
    /// Path as reported in diagnostics (repo-relative).
    pub path: PathBuf,
    /// Raw lines, 0-indexed (line `i` is reported as line `i + 1`).
    pub raw: Vec<String>,
    /// Scrubbed lines, same indexing and char columns as `raw`.
    pub clean: Vec<String>,
    /// `in_test[i]` — line `i` is inside a `#[cfg(test)]` module.
    pub in_test: Vec<bool>,
}

impl SourceFile {
    /// Preprocesses raw file content.
    pub fn parse(path: PathBuf, content: &str) -> Self {
        let clean_text = scrub(content);
        let raw: Vec<String> = content.lines().map(str::to_owned).collect();
        let clean: Vec<String> = clean_text.lines().map(str::to_owned).collect();
        let in_test = mark_test_lines(&clean);
        Self {
            path,
            raw,
            clean,
            in_test,
        }
    }

    /// Whether line `i` (0-indexed) carries `lint:allow(<name>)` in a
    /// comment, suppressing the named lint for that line.
    pub fn suppressed(&self, i: usize, lint: &str) -> bool {
        let Some(line) = self.raw.get(i) else {
            return false;
        };
        line.match_indices("lint:allow(")
            .any(|(start, pat)| line[start + pat.len()..].starts_with(lint))
    }
}

/// Lexer state of [`scrub`].
enum State {
    Code,
    LineComment,
    BlockComment { depth: usize },
    Str,
    StrEscape,
    RawStr { hashes: usize },
    Char,
    CharEscape,
}

/// Blanks comments and string/char literals: every non-newline character
/// inside them becomes a space, so scrubbed lines keep the raw line count
/// and char columns.
pub fn scrub(content: &str) -> String {
    let chars: Vec<char> = content.chars().collect();
    let mut out = String::with_capacity(content.len());
    let mut state = State::Code;
    let mut i = 0;
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    out.push(' ');
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment { depth: 1 };
                    out.push(' ');
                }
                '"' => {
                    state = State::Str;
                    out.push(' ');
                }
                'r' | 'b' if starts_raw_string(&chars, i) => {
                    // Skip the prefix (r / br / rb) and count the hashes.
                    let mut j = i;
                    while matches!(chars.get(j), Some('r' | 'b')) {
                        out.push(' ');
                        j += 1;
                    }
                    let mut hashes = 0;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        out.push(' ');
                        j += 1;
                    }
                    // `j` is the opening quote.
                    out.push(' ');
                    i = j;
                    state = State::RawStr { hashes };
                }
                'b' if next == Some('\'') => {
                    out.push(' ');
                    out.push(' ');
                    i += 1;
                    state = State::Char;
                }
                '\'' => {
                    if is_char_literal(&chars, i) {
                        state = State::Char;
                        out.push(' ');
                    } else {
                        // A lifetime — plain code.
                        out.push(c);
                    }
                }
                _ => out.push(c),
            },
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            State::BlockComment { depth } => {
                if c == '*' && next == Some('/') {
                    out.push(' ');
                    out.push(' ');
                    i += 1;
                    if depth == 1 {
                        state = State::Code;
                    } else {
                        state = State::BlockComment { depth: depth - 1 };
                    }
                } else if c == '/' && next == Some('*') {
                    out.push(' ');
                    out.push(' ');
                    i += 1;
                    state = State::BlockComment { depth: depth + 1 };
                } else {
                    out.push(blank(c));
                }
            }
            State::Str => match c {
                '\\' => {
                    out.push(' ');
                    state = State::StrEscape;
                }
                '"' => {
                    out.push(' ');
                    state = State::Code;
                }
                _ => out.push(blank(c)),
            },
            State::StrEscape => {
                out.push(blank(c));
                state = State::Str;
            }
            State::RawStr { hashes } => {
                if c == '"' && closes_raw_string(&chars, i, hashes) {
                    for _ in 0..=hashes {
                        out.push(' ');
                    }
                    i += hashes;
                    state = State::Code;
                } else {
                    out.push(blank(c));
                }
            }
            State::Char => match c {
                '\\' => {
                    out.push(' ');
                    state = State::CharEscape;
                }
                '\'' => {
                    out.push(' ');
                    state = State::Code;
                }
                _ => out.push(blank(c)),
            },
            State::CharEscape => {
                out.push(blank(c));
                state = State::Char;
            }
        }
        i += 1;
    }
    out
}

/// Whether `chars[i..]` begins a raw (or raw-byte) string literal:
/// `r"`, `r#`, `br"`, `br#`, `rb"` …
fn starts_raw_string(chars: &[char], i: usize) -> bool {
    let mut j = i;
    let mut saw_r = false;
    // At most two prefix letters (`br` / `rb`).
    for _ in 0..2 {
        match chars.get(j) {
            Some('r') => {
                saw_r = true;
                j += 1;
            }
            Some('b') => j += 1,
            _ => break,
        }
    }
    if !saw_r {
        return false;
    }
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Whether the `"` at `chars[i]` is followed by `hashes` `#` characters.
fn closes_raw_string(chars: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Distinguishes a char literal `'x'` from a lifetime `'a`. The quote at
/// `chars[i]` opens a char literal when an escape follows, or when the
/// content is a single char closed by another quote.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Marks every line inside a `#[cfg(test)] mod … { … }` block, by brace
/// matching on scrubbed lines.
fn mark_test_lines(clean: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; clean.len()];
    let mut i = 0;
    while i < clean.len() {
        if !clean[i].contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        // Find the block's opening brace (on this or a following line —
        // the attribute is usually directly above `mod tests {`).
        let mut depth = 0usize;
        let mut opened = false;
        let mut j = i;
        'outer: while j < clean.len() {
            for c in clean[j].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if opened && depth == 0 {
                            in_test[j] = true;
                            break 'outer;
                        }
                    }
                    _ => {}
                }
            }
            in_test[j] = true;
            j += 1;
        }
        i = j + 1;
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrub_blanks_line_comments() {
        let clean = scrub("let x = 1; // trailing .unwrap() note\nlet y = 2;");
        assert!(clean.contains("let x = 1;"));
        assert!(!clean.contains("unwrap"));
        assert!(clean.contains("let y = 2;"));
    }

    #[test]
    fn scrub_blanks_nested_block_comments() {
        let clean = scrub("a /* outer /* inner */ still comment */ b");
        assert!(clean.starts_with('a'));
        assert!(clean.ends_with('b'));
        assert!(!clean.contains("comment"));
    }

    #[test]
    fn scrub_blanks_strings_and_keeps_columns() {
        let src = "call(\"panic! inside\"); next";
        let clean = scrub(src);
        assert_eq!(clean.chars().count(), src.chars().count());
        assert!(!clean.contains("panic!"));
        assert!(clean.contains("call("));
        assert!(clean.contains("next"));
    }

    #[test]
    fn scrub_handles_escaped_quotes() {
        let clean = scrub(r#"let s = "he said \"hi\""; done()"#);
        assert!(clean.contains("done()"));
        assert!(!clean.contains("hi"));
    }

    #[test]
    fn scrub_handles_raw_strings() {
        let clean = scrub(r##"let s = r#"raw "quoted" .unwrap()"#; after()"##);
        assert!(clean.contains("after()"));
        assert!(!clean.contains("unwrap"));
    }

    #[test]
    fn scrub_keeps_lifetimes_but_blanks_char_literals() {
        let clean = scrub("fn f<'a>(x: &'a str) { let c = '\"'; let d = 'y'; }");
        assert!(clean.contains("<'a>"));
        assert!(clean.contains("&'a str"));
        assert!(!clean.contains('y'), "char literal content must be blanked");
    }

    #[test]
    fn scrub_preserves_line_structure() {
        let src = "a\n/* two\nlines */\nb\n";
        let clean = scrub(src);
        assert_eq!(clean.lines().count(), src.lines().count());
    }

    #[test]
    fn test_modules_are_marked() {
        let src = "\
fn live() { x.unwrap(); }

#[cfg(test)]
mod tests {
    #[test]
    fn t() { y.unwrap(); }
}

fn also_live() {}
";
        let f = SourceFile::parse(PathBuf::from("x.rs"), src);
        assert!(!f.in_test[0]);
        assert!(f.in_test[3], "mod tests line");
        assert!(f.in_test[5], "test body line");
        assert!(!f.in_test[8], "code after the test mod");
    }

    #[test]
    fn suppressions_are_line_scoped() {
        let src =
            "let a = x.unwrap(); // lint:allow(panic-audit) startup only\nlet b = y.unwrap();\n";
        let f = SourceFile::parse(PathBuf::from("x.rs"), src);
        assert!(f.suppressed(0, "panic-audit"));
        assert!(!f.suppressed(0, "float-eq"));
        assert!(!f.suppressed(1, "panic-audit"));
    }
}
