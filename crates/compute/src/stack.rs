//! The YOLOv4-ResNet18-shaped layer stack and its FLOP table.

/// One layer group with its per-image forward cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerCost {
    /// Layer-group name (`"conv5_4"`, `"pool"`, ... as in the paper).
    pub name: &'static str,
    /// Forward FLOPs per image.
    pub forward_flops: f64,
}

/// An ordered stack of layer groups with named replay boundaries.
///
/// Replay placement `i` means replay activations are injected at the input
/// of layer group `i`; images from replay memory only cross groups
/// `i..len`, while fresh images cross everything.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerStack {
    layers: Vec<LayerCost>,
}

impl LayerStack {
    /// Builds a stack from layer groups.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or any cost is non-positive.
    pub fn new(layers: Vec<LayerCost>) -> Self {
        assert!(!layers.is_empty(), "layer stack cannot be empty");
        assert!(
            layers.iter().all(|l| l.forward_flops > 0.0),
            "layer costs must be positive"
        );
        Self { layers }
    }

    /// Number of layer groups.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack has no layers (never true for a valid stack).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The layer groups in order.
    pub fn layers(&self) -> &[LayerCost] {
        &self.layers
    }

    /// Index of the group with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.layers.iter().position(|l| l.name == name)
    }

    /// Forward FLOPs per image across groups `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the stack.
    pub fn forward_flops(&self, range: std::ops::Range<usize>) -> f64 {
        self.layers[range].iter().map(|l| l.forward_flops).sum()
    }

    /// Backward FLOPs per image across groups `range` (the standard ~2×
    /// forward estimate).
    pub fn backward_flops(&self, range: std::ops::Range<usize>) -> f64 {
        2.0 * self.forward_flops(range)
    }

    /// Full per-image forward cost.
    pub fn total_forward_flops(&self) -> f64 {
        self.forward_flops(0..self.layers.len())
    }
}

/// YOLOv4 with a ResNet18 backbone at 512×512 input — the paper's student.
///
/// Per-group forward FLOPs total ≈ 14.9 GFLOP/image, distributed the way
/// ResNet18's stages distribute compute, with the Table II boundaries
/// named: `input` (everything), `conv5_4` (late backbone), `pool` (the
/// penultimate layer where the paper's replay lives), and `head`.
pub fn yolov4_resnet18() -> LayerStack {
    // Costs follow the spatial pyramid: early stages at high resolution
    // dominate, late stages (stride 32) are nearly free — which is exactly
    // why the paper's penultimate-layer replay is ~30× cheaper than
    // input-layer replay (Table II).
    LayerStack::new(vec![
        LayerCost {
            name: "stem",
            forward_flops: 2.6e9,
        },
        LayerCost {
            name: "conv2_x",
            forward_flops: 4.9e9,
        },
        LayerCost {
            name: "conv3_x",
            forward_flops: 3.5e9,
        },
        LayerCost {
            name: "conv4_x",
            forward_flops: 2.5e9,
        },
        LayerCost {
            name: "conv5_1",
            forward_flops: 0.75e9,
        },
        LayerCost {
            name: "conv5_4",
            forward_flops: 0.15e9,
        },
        LayerCost {
            name: "neck",
            forward_flops: 0.15e9,
        },
        LayerCost {
            name: "pool",
            forward_flops: 0.02e9,
        },
        LayerCost {
            name: "head",
            forward_flops: 0.06e9,
        },
    ])
}

/// Mask R-CNN with a ResNeXt-101 backbone — the paper's cloud "golden"
/// teacher. Only the total matters (the teacher is never partially
/// executed): ≈ 420 GFLOP per 512×512 frame including the mask head.
pub fn mask_rcnn_x101() -> LayerStack {
    LayerStack::new(vec![
        LayerCost {
            name: "backbone",
            forward_flops: 280.0e9,
        },
        LayerCost {
            name: "fpn",
            forward_flops: 45.0e9,
        },
        LayerCost {
            name: "rpn",
            forward_flops: 25.0e9,
        },
        LayerCost {
            name: "roi_heads",
            forward_flops: 40.0e9,
        },
        LayerCost {
            name: "mask_head",
            forward_flops: 30.0e9,
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn teacher_stack_dwarfs_student_stack() {
        let teacher = mask_rcnn_x101();
        let student = yolov4_resnet18();
        assert!(teacher.total_forward_flops() > 20.0 * student.total_forward_flops());
    }

    #[test]
    fn teacher_inference_is_subsecond_on_v100() {
        let secs = crate::v100().secs_for(mask_rcnn_x101().total_forward_flops());
        assert!(secs < 0.2, "teacher inference {secs} s per frame");
    }

    #[test]
    fn total_is_plausible_for_yolo_at_512() {
        let stack = yolov4_resnet18();
        let total = stack.total_forward_flops();
        assert!(
            (1.0e10..2.5e10).contains(&total),
            "total forward flops {total}"
        );
    }

    #[test]
    fn named_boundaries_exist_in_order() {
        let stack = yolov4_resnet18();
        let conv5_4 = stack.index_of("conv5_4").expect("conv5_4 exists");
        let pool = stack.index_of("pool").expect("pool exists");
        let head = stack.index_of("head").expect("head exists");
        assert!(conv5_4 < pool && pool < head);
        assert!(stack.index_of("missing").is_none());
    }

    #[test]
    fn tail_after_pool_is_tiny() {
        let stack = yolov4_resnet18();
        let pool = stack.index_of("pool").expect("pool exists");
        let tail = stack.forward_flops(pool..stack.len());
        assert!(
            tail < 0.01 * stack.total_forward_flops(),
            "replay tail should be ~free: {tail}"
        );
    }

    #[test]
    fn backward_is_twice_forward() {
        let stack = yolov4_resnet18();
        assert_eq!(
            stack.backward_flops(0..stack.len()),
            2.0 * stack.total_forward_flops()
        );
    }

    #[test]
    #[should_panic(expected = "layer stack cannot be empty")]
    fn empty_stack_rejected() {
        LayerStack::new(Vec::new());
    }
}
