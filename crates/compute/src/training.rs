//! Training-session wall-clock estimation (Table II, Figure 4).

use crate::stack::LayerStack;
use crate::DeviceProfile;
use serde::{Deserialize, Serialize};

/// A description of one adaptive training session, sufficient to estimate
/// its wall-clock cost on a device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingPlan {
    /// Layer-group index where replay activations inject (`0` = input).
    pub replay_layer: usize,
    /// First layer-group index that receives gradient updates.
    pub trainable_from: usize,
    /// Fresh images in the training batch (the paper's `N = 300`).
    pub fresh_images: usize,
    /// Replay images (the paper's `M = 1500`).
    pub replay_images: usize,
    /// Epochs per session (the paper uses 8).
    pub epochs: usize,
    /// Whether fresh activations at the replay layer are computed once per
    /// session and cached (possible exactly when the front is frozen and a
    /// replay buffer exists to hold them).
    pub cache_front: bool,
}

impl TrainingPlan {
    /// The paper's baseline ("Ours"): replay at the penultimate `pool`
    /// layer, front frozen after the first batch (activations cached),
    /// 300 fresh / 1500 replay images, 8 epochs.
    ///
    /// # Panics
    ///
    /// Panics if the stack has no `pool` layer.
    pub fn paper_defaults(stack: &LayerStack) -> Self {
        let pool = stack
            .index_of("pool")
            .expect("stack must name a pool layer");
        Self {
            replay_layer: pool,
            trainable_from: pool,
            fresh_images: 300,
            replay_images: 1500,
            epochs: 8,
            cache_front: true,
        }
    }

    /// Table II variant: replay memory on the input layer (raw images).
    ///
    /// # Panics
    ///
    /// Panics if the stack has no `pool` layer.
    pub fn input_replay(stack: &LayerStack) -> Self {
        let pool = stack
            .index_of("pool")
            .expect("stack must name a pool layer");
        Self {
            replay_layer: 0,
            trainable_from: pool,
            cache_front: false,
            ..Self::paper_defaults(stack)
        }
    }

    /// Table II variant: front layers completely frozen (identical cost
    /// structure to the baseline; differs in accuracy, not time).
    pub fn completely_frozen(stack: &LayerStack) -> Self {
        Self::paper_defaults(stack)
    }

    /// Table II variant: replay at the `conv5_4` layer.
    ///
    /// # Panics
    ///
    /// Panics if the stack has no `conv5_4` layer.
    pub fn conv5_4(stack: &LayerStack) -> Self {
        let conv = stack
            .index_of("conv5_4")
            .expect("stack must name a conv5_4 layer");
        Self {
            replay_layer: conv,
            trainable_from: conv,
            ..Self::paper_defaults(stack)
        }
    }

    /// Table II variant: no replay memory — only the fresh batch is used,
    /// and without a replay buffer there is nowhere to cache activations,
    /// so fresh images cross the full network every epoch.
    pub fn no_replay(stack: &LayerStack) -> Self {
        Self {
            replay_images: 0,
            cache_front: false,
            ..Self::paper_defaults(stack)
        }
    }

    /// Rescales the batch composition, preserving everything else. Used by
    /// the simulation, which runs smaller sessions than the paper's
    /// 300/1500 (see DESIGN.md).
    pub fn with_batch(mut self, fresh: usize, replay: usize) -> Self {
        self.fresh_images = fresh;
        self.replay_images = replay;
        self
    }
}

/// Estimated wall-clock of one training session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingTime {
    /// Seconds spent in forward passes.
    pub forward_secs: f64,
    /// Seconds spent in backward passes.
    pub backward_secs: f64,
}

impl TrainingTime {
    /// Total session wall-clock.
    pub fn total_secs(&self) -> f64 {
        self.forward_secs + self.backward_secs
    }
}

/// Estimates the wall-clock of a training session.
///
/// Cost rules (derived from the paper's §III-B training control):
///
/// * Every epoch, all `fresh + replay` images cross the layer groups from
///   the replay boundary to the output ("tail").
/// * Fresh images additionally cross the front (`0..replay_layer`): once
///   per session when activations are cached, else once per epoch.
/// * Backward work covers the trainable groups (`trainable_from..`),
///   estimated at 1× the forward FLOPs of that range per image pass
///   (parameter gradients with frozen normalization).
///
/// # Panics
///
/// Panics if the plan's layer indices exceed the stack.
pub fn training_time(
    stack: &LayerStack,
    plan: &TrainingPlan,
    device: &DeviceProfile,
) -> TrainingTime {
    assert!(
        plan.replay_layer <= stack.len() && plan.trainable_from <= stack.len(),
        "plan layer indices exceed the stack"
    );
    let front_fwd = stack.forward_flops(0..plan.replay_layer);
    let tail_fwd = stack.forward_flops(plan.replay_layer..stack.len());
    let trainable_fwd = stack.forward_flops(plan.trainable_from..stack.len());

    let tail_passes = (plan.fresh_images + plan.replay_images) as f64 * plan.epochs as f64;
    let front_passes = plan.fresh_images as f64
        * if plan.cache_front {
            1.0
        } else {
            plan.epochs as f64
        };

    let forward_flops = front_passes * front_fwd + tail_passes * tail_fwd;
    let backward_flops = tail_passes * trainable_fwd;
    TrainingTime {
        forward_secs: device.secs_for(forward_flops),
        backward_secs: device.secs_for(backward_flops),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::yolov4_resnet18;
    use crate::{jetson_tx2, v100};

    fn all_variants() -> Vec<(&'static str, TrainingPlan)> {
        let stack = yolov4_resnet18();
        vec![
            ("ours", TrainingPlan::paper_defaults(&stack)),
            ("input", TrainingPlan::input_replay(&stack)),
            ("frozen", TrainingPlan::completely_frozen(&stack)),
            ("conv5_4", TrainingPlan::conv5_4(&stack)),
            ("no_replay", TrainingPlan::no_replay(&stack)),
        ]
    }

    #[test]
    fn table_ii_ordering_holds() {
        let stack = yolov4_resnet18();
        let device = jetson_tx2();
        let time = |name: &str| {
            let plan = all_variants()
                .into_iter()
                .find(|(n, _)| *n == name)
                .expect("variant exists")
                .1;
            training_time(&stack, &plan, &device).total_secs()
        };
        let ours = time("ours");
        let frozen = time("frozen");
        let conv = time("conv5_4");
        let no_replay = time("no_replay");
        let input = time("input");
        // Paper Table II: 18.6 ≈ 18.5 < 26.0 < 101.9 < 567.8.
        assert!(
            (ours - frozen).abs() < 1e-9,
            "ours {ours} vs frozen {frozen}"
        );
        assert!(ours < conv, "ours {ours} < conv5_4 {conv}");
        assert!(conv < no_replay, "conv5_4 {conv} < no-replay {no_replay}");
        assert!(no_replay < input, "no-replay {no_replay} < input {input}");
        // Input replay is ~30× the baseline in the paper.
        let ratio = input / ours;
        assert!((10.0..60.0).contains(&ratio), "input/ours ratio {ratio}");
    }

    #[test]
    fn baseline_magnitude_matches_paper() {
        let stack = yolov4_resnet18();
        let t = training_time(&stack, &TrainingPlan::paper_defaults(&stack), &jetson_tx2());
        // Paper: 18.6 s overall; accept the right order of magnitude.
        assert!(
            (8.0..40.0).contains(&t.total_secs()),
            "baseline session {} s",
            t.total_secs()
        );
        assert!(t.backward_secs < t.forward_secs);
    }

    #[test]
    fn cloud_device_trains_much_faster() {
        let stack = yolov4_resnet18();
        let plan = TrainingPlan::paper_defaults(&stack);
        let edge = training_time(&stack, &plan, &jetson_tx2()).total_secs();
        let cloud = training_time(&stack, &plan, &v100()).total_secs();
        assert!(cloud < edge / 10.0);
    }

    #[test]
    fn smaller_batches_scale_cost_down() {
        let stack = yolov4_resnet18();
        let big = TrainingPlan::paper_defaults(&stack);
        let small = TrainingPlan::paper_defaults(&stack).with_batch(60, 300);
        let tb = training_time(&stack, &big, &jetson_tx2()).total_secs();
        let ts = training_time(&stack, &small, &jetson_tx2()).total_secs();
        assert!(
            (ts - tb / 5.0).abs() < tb * 0.05,
            "expected ~5x cheaper: {tb} vs {ts}"
        );
    }
}
