//! Device compute-cost model.
//!
//! Accuracy dynamics in this reproduction come from genuinely training a
//! small model; **wall-clock** numbers (training seconds in Table II, the
//! FPS dip of Figure 4) cannot come from that model — it is orders of
//! magnitude smaller than YOLOv4. They come from this analytic model
//! instead:
//!
//! * [`DeviceProfile`] — effective sustained FLOP/s of a Jetson-TX2-class
//!   edge device and a V100-class cloud server.
//! * [`stack::LayerStack`] / [`stack::yolov4_resnet18`] — per-layer-group
//!   forward FLOPs of a YOLOv4 + ResNet18 detector at 512×512, with the
//!   named boundaries the paper's Table II ablates (`input`, `conv5_4`,
//!   `pool`/penultimate).
//! * [`training::training_time`] — forward/backward seconds of an adaptive
//!   training session, as a function of replay placement, freeze policy,
//!   batch composition and epochs.
//! * [`Contention`] — how much inference FPS survives while training runs
//!   on the same device (the paper observes 30 → 15).
//!
//! # Examples
//!
//! ```
//! use shoggoth_compute::{jetson_tx2, stack, training::{training_time, TrainingPlan}};
//!
//! let stack = stack::yolov4_resnet18();
//! let plan = TrainingPlan::paper_defaults(&stack);
//! let time = training_time(&stack, &plan, &jetson_tx2());
//! // The paper's Table II reports ~18.6 s overall for this configuration.
//! assert!(time.total_secs() > 5.0 && time.total_secs() < 60.0);
//! ```

pub mod contention;
pub mod stack;
pub mod training;

pub use contention::Contention;
pub use stack::{yolov4_resnet18, LayerStack};
pub use training::{training_time, TrainingPlan, TrainingTime};

use serde::{Deserialize, Serialize};

/// Sustained compute characteristics of a device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Device name for reports.
    pub name: &'static str,
    /// Effective sustained throughput in FLOP/s (well below peak).
    pub effective_flops: f64,
    /// Inference frame-rate cap when the device is otherwise idle.
    pub idle_inference_fps: f64,
}

impl DeviceProfile {
    /// Seconds to execute `flops` floating-point operations.
    pub fn secs_for(&self, flops: f64) -> f64 {
        flops / self.effective_flops
    }
}

/// NVIDIA Jetson TX2-class edge device: ~0.4 TFLOP/s sustained, capped at
/// the 30 fps the paper's edge inference achieves.
pub fn jetson_tx2() -> DeviceProfile {
    DeviceProfile {
        name: "jetson-tx2",
        effective_flops: 4.0e11,
        idle_inference_fps: 30.0,
    }
}

/// NVIDIA V100-class cloud GPU: ~7 TFLOP/s sustained.
pub fn v100() -> DeviceProfile {
    DeviceProfile {
        name: "v100",
        effective_flops: 7.0e12,
        idle_inference_fps: 120.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cloud_is_much_faster_than_edge() {
        assert!(v100().effective_flops > 10.0 * jetson_tx2().effective_flops);
    }

    #[test]
    fn secs_for_scales_linearly() {
        let d = jetson_tx2();
        assert!((d.secs_for(8.0e11) - 2.0).abs() < 1e-12);
    }
}
