//! Inference/training GPU contention (Figure 4).

use serde::{Deserialize, Serialize};

/// Models how much inference throughput survives while an adaptive
/// training session shares the device.
///
/// The paper observes edge inference dropping from 30 fps to ~15 fps while
/// training runs, for a small average loss because sessions are short.
///
/// # Examples
///
/// ```
/// use shoggoth_compute::Contention;
///
/// let c = Contention::default();
/// assert_eq!(c.inference_fps(30.0, false), 30.0);
/// assert_eq!(c.inference_fps(30.0, true), 15.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Contention {
    /// Fraction of idle inference throughput available during training.
    pub inference_share: f64,
}

impl Contention {
    /// Creates a contention model.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < inference_share <= 1`.
    pub fn new(inference_share: f64) -> Self {
        assert!(
            inference_share > 0.0 && inference_share <= 1.0,
            "inference share must be in (0, 1]"
        );
        Self { inference_share }
    }

    /// Achieved inference FPS given the device's idle cap and whether a
    /// training session is currently running.
    pub fn inference_fps(&self, idle_fps: f64, training_active: bool) -> f64 {
        if training_active {
            idle_fps * self.inference_share
        } else {
            idle_fps
        }
    }
}

impl Default for Contention {
    /// The paper's observed 50% share (30 → 15 fps).
    fn default() -> Self {
        Self::new(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_training_means_full_rate() {
        assert_eq!(Contention::new(0.3).inference_fps(30.0, false), 30.0);
    }

    #[test]
    fn training_scales_rate_down() {
        assert_eq!(Contention::new(0.3).inference_fps(30.0, true), 9.0);
    }

    #[test]
    #[should_panic(expected = "inference share must be in (0, 1]")]
    fn zero_share_rejected() {
        Contention::new(0.0);
    }
}
