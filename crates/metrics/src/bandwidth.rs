//! Uplink/downlink bandwidth accounting.

use serde::{Deserialize, Serialize};

/// Accumulates transferred bytes and reports average rates in Kbps, the
/// unit of the paper's Tables I and III.
///
/// # Examples
///
/// ```
/// use shoggoth_metrics::BandwidthMeter;
///
/// let mut meter = BandwidthMeter::new();
/// meter.record_uplink(125_000); // 1 Mbit
/// meter.finish(10.0);           // over 10 seconds
/// assert!((meter.uplink_kbps() - 100.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BandwidthMeter {
    uplink_bytes: u64,
    downlink_bytes: u64,
    duration_secs: f64,
}

impl BandwidthMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records bytes sent edge → cloud.
    pub fn record_uplink(&mut self, bytes: u64) {
        self.uplink_bytes += bytes;
    }

    /// Records bytes sent cloud → edge.
    pub fn record_downlink(&mut self, bytes: u64) {
        self.downlink_bytes += bytes;
    }

    /// Sets the observation window length used by the rate getters.
    ///
    /// # Panics
    ///
    /// Panics if `duration_secs` is negative or non-finite.
    pub fn finish(&mut self, duration_secs: f64) {
        assert!(
            duration_secs.is_finite() && duration_secs >= 0.0,
            "duration must be non-negative and finite"
        );
        self.duration_secs = duration_secs;
    }

    /// Total uplink bytes.
    pub fn uplink_bytes(&self) -> u64 {
        self.uplink_bytes
    }

    /// Total downlink bytes.
    pub fn downlink_bytes(&self) -> u64 {
        self.downlink_bytes
    }

    /// Average uplink rate in kilobits per second; `0.0` before
    /// [`finish`](Self::finish) or for a zero-length window.
    pub fn uplink_kbps(&self) -> f64 {
        rate_kbps(self.uplink_bytes, self.duration_secs)
    }

    /// Average downlink rate in kilobits per second.
    pub fn downlink_kbps(&self) -> f64 {
        rate_kbps(self.downlink_bytes, self.duration_secs)
    }
}

fn rate_kbps(bytes: u64, secs: f64) -> f64 {
    if secs <= 0.0 {
        0.0
    } else {
        bytes as f64 * 8.0 / 1000.0 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_zero_before_finish() {
        let mut m = BandwidthMeter::new();
        m.record_uplink(1000);
        assert_eq!(m.uplink_kbps(), 0.0);
    }

    #[test]
    fn kbps_hand_checked() {
        let mut m = BandwidthMeter::new();
        m.record_uplink(250_000); // 2 Mbit
        m.record_downlink(125_000); // 1 Mbit
        m.finish(4.0);
        assert!((m.uplink_kbps() - 500.0).abs() < 1e-9);
        assert!((m.downlink_kbps() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn accumulation_adds_up() {
        let mut m = BandwidthMeter::new();
        for _ in 0..10 {
            m.record_uplink(100);
        }
        assert_eq!(m.uplink_bytes(), 1000);
        assert_eq!(m.downlink_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "duration must be non-negative and finite")]
    fn negative_duration_rejected() {
        BandwidthMeter::new().finish(-1.0);
    }
}
