//! Greedy detection ↔ ground-truth matching at an IoU threshold.

use shoggoth_models::Detection;
use shoggoth_video::GroundTruthObject;

/// Outcome of matching one frame's detections against its ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchResult {
    /// For each detection (in the order given): `Some((gt_index, iou))` if
    /// it matched a ground-truth object, `None` if it is a false positive.
    pub assignments: Vec<Option<(usize, f32)>>,
    /// Number of true positives.
    pub true_positives: usize,
    /// Number of false positives.
    pub false_positives: usize,
    /// Number of ground-truth objects left unmatched (false negatives).
    pub false_negatives: usize,
}

impl MatchResult {
    /// Precision `TP / (TP + FP)`; `0.0` when no detections.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall `TP / (TP + FN)`; `0.0` when no ground truth.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }
}

/// Greedily matches detections to ground truth, standard PASCAL-VOC style:
/// detections are visited in descending confidence; each claims the
/// unclaimed same-class ground-truth object with the highest IoU, provided
/// that IoU clears `iou_threshold`. Unclaimed detections are false
/// positives; unclaimed ground truth are false negatives.
pub fn match_detections(
    detections: &[Detection],
    ground_truth: &[GroundTruthObject],
    iou_threshold: f32,
) -> MatchResult {
    let mut order: Vec<usize> = (0..detections.len()).collect();
    order.sort_by(|&a, &b| {
        detections[b]
            .confidence
            .total_cmp(&detections[a].confidence)
    });
    let mut gt_taken = vec![false; ground_truth.len()];
    let mut assignments = vec![None; detections.len()];
    let mut tp = 0;
    for &det_idx in &order {
        let det = &detections[det_idx];
        let mut best: Option<(usize, f32)> = None;
        for (gt_idx, gt) in ground_truth.iter().enumerate() {
            if gt_taken[gt_idx] || gt.class != det.class {
                continue;
            }
            let iou = det.bbox.iou(&gt.bbox);
            if iou >= iou_threshold && best.is_none_or(|(_, b)| iou > b) {
                best = Some((gt_idx, iou));
            }
        }
        if let Some((gt_idx, iou)) = best {
            gt_taken[gt_idx] = true;
            assignments[det_idx] = Some((gt_idx, iou));
            tp += 1;
        }
    }
    let fp = detections.len() - tp;
    let fne = ground_truth.len() - tp;
    MatchResult {
        assignments,
        true_positives: tp,
        false_positives: fp,
        false_negatives: fne,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shoggoth_video::BBox;

    fn gt(class: usize, x: f32) -> GroundTruthObject {
        GroundTruthObject {
            track_id: 0,
            class,
            bbox: BBox::new(x, 0.1, 0.2, 0.2),
        }
    }

    fn det(class: usize, x: f32, conf: f32) -> Detection {
        Detection {
            bbox: BBox::new(x, 0.1, 0.2, 0.2),
            class,
            confidence: conf,
        }
    }

    #[test]
    fn perfect_match() {
        let r = match_detections(&[det(0, 0.1, 0.9)], &[gt(0, 0.1)], 0.5);
        assert_eq!(r.true_positives, 1);
        assert_eq!(r.false_positives, 0);
        assert_eq!(r.false_negatives, 0);
        assert_eq!(r.precision(), 1.0);
        assert_eq!(r.recall(), 1.0);
    }

    #[test]
    fn class_mismatch_is_false_positive() {
        let r = match_detections(&[det(1, 0.1, 0.9)], &[gt(0, 0.1)], 0.5);
        assert_eq!(r.true_positives, 0);
        assert_eq!(r.false_positives, 1);
        assert_eq!(r.false_negatives, 1);
    }

    #[test]
    fn low_iou_is_false_positive() {
        let r = match_detections(&[det(0, 0.7, 0.9)], &[gt(0, 0.1)], 0.5);
        assert_eq!(r.true_positives, 0);
    }

    #[test]
    fn each_ground_truth_matched_at_most_once() {
        // Two detections on the same object: higher-confidence one wins,
        // the other is a false positive.
        let r = match_detections(&[det(0, 0.1, 0.5), det(0, 0.11, 0.9)], &[gt(0, 0.1)], 0.5);
        assert_eq!(r.true_positives, 1);
        assert_eq!(r.false_positives, 1);
        // The high-confidence detection (index 1) got the match.
        assert!(r.assignments[1].is_some());
        assert!(r.assignments[0].is_none());
    }

    #[test]
    fn detection_prefers_highest_iou_ground_truth() {
        let r = match_detections(&[det(0, 0.12, 0.9)], &[gt(0, 0.4), gt(0, 0.1)], 0.3);
        let (gt_idx, _) = r.assignments[0].expect("matched");
        assert_eq!(gt_idx, 1);
        assert_eq!(r.false_negatives, 1);
    }

    #[test]
    fn empty_inputs() {
        let r = match_detections(&[], &[], 0.5);
        assert_eq!(r.precision(), 0.0);
        assert_eq!(r.recall(), 0.0);
        let r = match_detections(&[], &[gt(0, 0.1)], 0.5);
        assert_eq!(r.false_negatives, 1);
        let r = match_detections(&[det(0, 0.1, 0.9)], &[], 0.5);
        assert_eq!(r.false_positives, 1);
    }
}
