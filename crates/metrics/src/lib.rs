//! Evaluation metrics for the reproduction.
//!
//! Implements exactly the quantities the paper reports:
//!
//! * [`map::map_at_05`] — mean Average Precision at IoU 0.5 (Tables I, II),
//!   VOC-2010-style all-point interpolation.
//! * [`map::frame_map_at_05`] — per-frame mAP, pooled into the CDF of
//!   mAP gain vs. Edge-Only (Figure 5) via
//!   [`shoggoth_util::stats::EmpiricalCdf`].
//! * [`map::average_iou`] — mean IoU of matched true-positive detections
//!   (Table III's accuracy metric).
//! * [`bandwidth::BandwidthMeter`] — uplink/downlink byte accounting
//!   reported in Kbps (Tables I, III).
//! * [`fps::FpsTracker`] — achieved inference FPS, overall average and
//!   time series (Figure 4).
//!
//! # Examples
//!
//! ```
//! use shoggoth_metrics::map::{map_at_05, FrameEval};
//! use shoggoth_models::Detection;
//! use shoggoth_video::{BBox, GroundTruthObject};
//!
//! let gt = GroundTruthObject { track_id: 0, class: 0, bbox: BBox::new(0.1, 0.1, 0.2, 0.2) };
//! let det = Detection { bbox: BBox::new(0.1, 0.1, 0.2, 0.2), class: 0, confidence: 0.9 };
//! let frames = vec![FrameEval { detections: vec![det], ground_truth: vec![gt] }];
//! assert!((map_at_05(&frames, 1) - 1.0).abs() < 1e-9);
//! ```

pub mod bandwidth;
pub mod fps;
pub mod map;
pub mod matching;

pub use bandwidth::BandwidthMeter;
pub use fps::FpsTracker;
pub use map::{average_iou, frame_map_at_05, map_at_05, FrameEval};
pub use matching::{match_detections, MatchResult};
