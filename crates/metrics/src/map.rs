//! Average Precision and mAP@0.5.

use crate::matching::match_detections;
use shoggoth_models::Detection;
use shoggoth_video::GroundTruthObject;

/// A frame's detections paired with its ground truth, the unit of
/// evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameEval {
    /// The detector's output on the frame.
    pub detections: Vec<Detection>,
    /// The frame's ground-truth objects.
    pub ground_truth: Vec<GroundTruthObject>,
}

/// Mean Average Precision at IoU 0.5 over a set of frames, averaged over
/// the classes that appear in the ground truth.
///
/// Uses VOC-2010-style all-point interpolation: detections of each class
/// are pooled across frames, ranked by confidence, matched greedily within
/// their frame, and AP is the area under the interpolated precision-recall
/// curve. Classes with no ground truth anywhere are skipped (not counted as
/// zero), matching common practice.
///
/// Returns `0.0` if no class has any ground truth.
pub fn map_at_05(frames: &[FrameEval], num_classes: usize) -> f64 {
    let mut ap_sum = 0.0;
    let mut classes_counted = 0;
    for class in 0..num_classes {
        if let Some(ap) = average_precision(frames, class, 0.5) {
            ap_sum += ap;
            classes_counted += 1;
        }
    }
    if classes_counted == 0 {
        0.0
    } else {
        ap_sum / classes_counted as f64
    }
}

/// mAP@0.5 of a single frame (used for the paper's Fig. 5 per-frame CDF).
pub fn frame_map_at_05(frame: &FrameEval, num_classes: usize) -> f64 {
    map_at_05(std::slice::from_ref(frame), num_classes)
}

/// Average Precision of one class at the given IoU threshold, or `None`
/// when the class never appears in the ground truth.
pub fn average_precision(frames: &[FrameEval], class: usize, iou: f32) -> Option<f64> {
    // (confidence, is_tp) per detection of this class, pooled over frames.
    let mut scored: Vec<(f32, bool)> = Vec::new();
    let mut total_gt = 0usize;
    for frame in frames {
        let class_dets: Vec<Detection> = frame
            .detections
            .iter()
            .filter(|d| d.class == class)
            .cloned()
            .collect();
        let class_gt: Vec<GroundTruthObject> = frame
            .ground_truth
            .iter()
            .filter(|g| g.class == class)
            .cloned()
            .collect();
        total_gt += class_gt.len();
        let result = match_detections(&class_dets, &class_gt, iou);
        for (det, assignment) in class_dets.iter().zip(&result.assignments) {
            scored.push((det.confidence, assignment.is_some()));
        }
    }
    if total_gt == 0 {
        return None;
    }
    scored.sort_by(|a, b| b.0.total_cmp(&a.0));

    // Cumulative precision/recall down the ranked list.
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut recalls = Vec::with_capacity(scored.len());
    let mut precisions = Vec::with_capacity(scored.len());
    for &(_, is_tp) in &scored {
        if is_tp {
            tp += 1;
        } else {
            fp += 1;
        }
        recalls.push(tp as f64 / total_gt as f64);
        precisions.push(tp as f64 / (tp + fp) as f64);
    }

    // All-point interpolation: running max of precision from the right,
    // then sum precision over each recall increment.
    let mut max_from_right = 0.0f64;
    for p in precisions.iter_mut().rev() {
        max_from_right = max_from_right.max(*p);
        *p = max_from_right;
    }
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    for (r, p) in recalls.iter().zip(&precisions) {
        ap += (r - prev_recall) * p;
        prev_recall = *r;
    }
    Some(ap)
}

/// Mean IoU of matched true-positive detections over a set of frames —
/// Table III's "Average IoU" metric. Detections that fail to match
/// contribute zero, and frames with ground truth but no detections drag
/// the average down through their misses.
///
/// Concretely: `sum(matched IoUs) / max(total ground-truth objects, 1)`,
/// so both localization quality and recall are reflected.
pub fn average_iou(frames: &[FrameEval]) -> f64 {
    let mut iou_sum = 0.0f64;
    let mut total_gt = 0usize;
    for frame in frames {
        total_gt += frame.ground_truth.len();
        let result = match_detections(&frame.detections, &frame.ground_truth, 0.5);
        for assignment in result.assignments.iter().flatten() {
            iou_sum += assignment.1 as f64;
        }
    }
    iou_sum / total_gt.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use shoggoth_video::BBox;

    fn gt(class: usize, x: f32) -> GroundTruthObject {
        GroundTruthObject {
            track_id: 0,
            class,
            bbox: BBox::new(x, 0.1, 0.2, 0.2),
        }
    }

    fn det(class: usize, x: f32, conf: f32) -> Detection {
        Detection {
            bbox: BBox::new(x, 0.1, 0.2, 0.2),
            class,
            confidence: conf,
        }
    }

    #[test]
    fn perfect_detector_has_map_one() {
        let frames = vec![
            FrameEval {
                detections: vec![det(0, 0.1, 0.9), det(1, 0.5, 0.8)],
                ground_truth: vec![gt(0, 0.1), gt(1, 0.5)],
            },
            FrameEval {
                detections: vec![det(0, 0.3, 0.7)],
                ground_truth: vec![gt(0, 0.3)],
            },
        ];
        assert!((map_at_05(&frames, 2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn blind_detector_has_map_zero() {
        let frames = vec![FrameEval {
            detections: vec![],
            ground_truth: vec![gt(0, 0.1)],
        }];
        assert_eq!(map_at_05(&frames, 1), 0.0);
    }

    #[test]
    fn false_positives_lower_ap_when_ranked_above_hits() {
        // FP at higher confidence than the TP: precision at the TP's rank
        // is 1/2, so AP = 0.5.
        let frames = vec![FrameEval {
            detections: vec![det(0, 0.7, 0.9), det(0, 0.1, 0.5)],
            ground_truth: vec![gt(0, 0.1)],
        }];
        let ap = average_precision(&frames, 0, 0.5).expect("class present");
        assert!((ap - 0.5).abs() < 1e-9, "ap {ap}");
    }

    #[test]
    fn false_positive_below_all_hits_does_not_hurt() {
        // With all-point interpolation, trailing FPs leave AP at 1.0.
        let frames = vec![FrameEval {
            detections: vec![det(0, 0.1, 0.9), det(0, 0.7, 0.2)],
            ground_truth: vec![gt(0, 0.1)],
        }];
        let ap = average_precision(&frames, 0, 0.5).expect("class present");
        assert!((ap - 1.0).abs() < 1e-9, "ap {ap}");
    }

    #[test]
    fn missing_class_is_skipped_not_zeroed() {
        // Class 1 never appears in GT; mAP averages over class 0 only.
        let frames = vec![FrameEval {
            detections: vec![det(0, 0.1, 0.9)],
            ground_truth: vec![gt(0, 0.1)],
        }];
        assert!((map_at_05(&frames, 2) - 1.0).abs() < 1e-9);
        assert!(average_precision(&frames, 1, 0.5).is_none());
    }

    #[test]
    fn half_recall_halves_ap() {
        let frames = vec![FrameEval {
            detections: vec![det(0, 0.1, 0.9)],
            ground_truth: vec![gt(0, 0.1), gt(0, 0.6)],
        }];
        let ap = average_precision(&frames, 0, 0.5).expect("class present");
        assert!((ap - 0.5).abs() < 1e-9, "ap {ap}");
    }

    #[test]
    fn average_iou_rewards_tight_boxes() {
        let tight = vec![FrameEval {
            detections: vec![det(0, 0.1, 0.9)],
            ground_truth: vec![gt(0, 0.1)],
        }];
        let loose = vec![FrameEval {
            detections: vec![Detection {
                bbox: BBox::new(0.14, 0.1, 0.2, 0.2),
                class: 0,
                confidence: 0.9,
            }],
            ground_truth: vec![gt(0, 0.1)],
        }];
        assert!(average_iou(&tight) > average_iou(&loose));
        assert!((average_iou(&tight) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn average_iou_penalizes_misses() {
        let frames = vec![FrameEval {
            detections: vec![det(0, 0.1, 0.9)],
            ground_truth: vec![gt(0, 0.1), gt(0, 0.6)],
        }];
        assert!((average_iou(&frames) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn empty_everything_is_zero() {
        assert_eq!(map_at_05(&[], 3), 0.0);
        assert_eq!(average_iou(&[]), 0.0);
    }

    #[test]
    fn frame_map_matches_single_frame_pool() {
        let frame = FrameEval {
            detections: vec![det(0, 0.1, 0.9)],
            ground_truth: vec![gt(0, 0.1)],
        };
        assert_eq!(
            frame_map_at_05(&frame, 1),
            map_at_05(std::slice::from_ref(&frame), 1)
        );
    }
}
