//! Achieved inference frame-rate tracking (Figure 4).

/// Records the achieved inference FPS over time.
///
/// The simulation pushes one sample per processed frame: the wall-clock
/// time and the instantaneous rate the device could sustain at that moment
/// (30 fps when idle, less while adaptive training contends for the GPU).
/// The tracker reports the overall average (Fig. 4 left) and a
/// fixed-interval time series (Fig. 4 right).
///
/// # Examples
///
/// ```
/// use shoggoth_metrics::FpsTracker;
///
/// let mut fps = FpsTracker::new();
/// fps.record(0.0, 30.0);
/// fps.record(1.0, 15.0);
/// assert!((fps.average() - 22.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FpsTracker {
    samples: Vec<(f64, f64)>,
}

impl FpsTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the achieved rate at time `t` (seconds).
    ///
    /// # Panics
    ///
    /// Panics if `fps` is negative or either value is non-finite.
    pub fn record(&mut self, t: f64, fps: f64) {
        assert!(
            t.is_finite() && fps.is_finite() && fps >= 0.0,
            "invalid sample"
        );
        self.samples.push((t, fps));
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Overall average achieved FPS; `0.0` with no samples.
    pub fn average(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|(_, f)| f).sum::<f64>() / self.samples.len() as f64
    }

    /// Minimum recorded FPS; `0.0` with no samples.
    pub fn min(&self) -> f64 {
        let lowest = self
            .samples
            .iter()
            .map(|(_, f)| *f)
            .fold(f64::INFINITY, f64::min);
        if lowest.is_finite() {
            lowest
        } else {
            0.0
        }
    }

    /// Time series bucketed into `bucket_secs` intervals: one
    /// `(bucket_start, mean_fps)` point per non-empty bucket, in time order.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_secs <= 0`.
    pub fn series(&self, bucket_secs: f64) -> Vec<(f64, f64)> {
        assert!(bucket_secs > 0.0, "bucket length must be positive");
        if self.samples.is_empty() {
            return Vec::new();
        }
        let mut buckets: std::collections::BTreeMap<i64, (f64, usize)> =
            std::collections::BTreeMap::new();
        for &(t, f) in &self.samples {
            let key = (t / bucket_secs).floor() as i64;
            let entry = buckets.entry(key).or_insert((0.0, 0));
            entry.0 += f;
            entry.1 += 1;
        }
        buckets
            .into_iter()
            .map(|(k, (sum, n))| (k as f64 * bucket_secs, sum / n as f64))
            .collect()
    }

    /// The raw samples.
    pub fn samples(&self) -> &[(f64, f64)] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_of_empty_is_zero() {
        assert_eq!(FpsTracker::new().average(), 0.0);
        assert_eq!(FpsTracker::new().min(), 0.0);
    }

    #[test]
    fn series_buckets_and_averages() {
        let mut fps = FpsTracker::new();
        fps.record(0.1, 30.0);
        fps.record(0.9, 20.0);
        fps.record(2.5, 10.0);
        let series = fps.series(1.0);
        assert_eq!(series, vec![(0.0, 25.0), (2.0, 10.0)]);
    }

    #[test]
    fn min_tracks_training_dips() {
        let mut fps = FpsTracker::new();
        fps.record(0.0, 30.0);
        fps.record(1.0, 15.0);
        fps.record(2.0, 30.0);
        assert_eq!(fps.min(), 15.0);
    }

    #[test]
    #[should_panic(expected = "invalid sample")]
    fn negative_fps_rejected() {
        FpsTracker::new().record(0.0, -1.0);
    }

    #[test]
    #[should_panic(expected = "bucket length must be positive")]
    fn zero_bucket_rejected() {
        let mut fps = FpsTracker::new();
        fps.record(0.0, 30.0);
        fps.series(0.0);
    }
}
