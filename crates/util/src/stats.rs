//! Summary statistics for the evaluation harness.
//!
//! These helpers back the paper's reported quantities: means over frame
//! windows, percentiles, and the empirical CDF of per-frame mAP gain used by
//! Figure 5.

/// Arithmetic mean of a slice; `0.0` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(shoggoth_util::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// assert_eq!(shoggoth_util::stats::mean(&[]), 0.0);
/// ```
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population variance of a slice; `0.0` for fewer than two values.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64
}

/// Population standard deviation of a slice.
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Linear-interpolated percentile, `p` in `[0, 100]`.
///
/// Returns `0.0` for an empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or any value is NaN.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Median (50th percentile).
pub fn median(values: &[f64]) -> f64 {
    percentile(values, 50.0)
}

/// An empirical cumulative distribution function over a sample.
///
/// Built once from a data set, then queried for `P(X <= x)` or evaluated on
/// a grid for plotting — this is the machinery behind Figure 5's CDF of
/// per-frame mAP gain.
///
/// # Examples
///
/// ```
/// use shoggoth_util::stats::EmpiricalCdf;
///
/// let cdf = EmpiricalCdf::new(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.eval(2.0), 0.5);
/// assert_eq!(cdf.eval(0.0), 0.0);
/// assert_eq!(cdf.eval(10.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds the CDF from a sample. NaN values are dropped.
    pub fn new(values: &[f64]) -> Self {
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Self { sorted }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Returns `P(X <= x)`; `0.0` for an empty sample.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Fraction of the sample strictly greater than `x`.
    pub fn fraction_above(&self, x: f64) -> f64 {
        1.0 - self.eval(x)
    }

    /// Evaluates the CDF on `n` evenly spaced points spanning the sample
    /// range, returning `(x, P(X <= x))` pairs suitable for plotting.
    ///
    /// Returns an empty vector for an empty sample or `n == 0`; a single
    /// point when `n == 1`.
    pub fn curve(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = self.sorted[self.sorted.len() - 1];
        // `sorted` guarantees hi >= lo, so `<=` is equality: a degenerate
        // range collapses to a single plot point.
        if n == 1 || hi <= lo {
            return vec![(hi, 1.0)];
        }
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// The sorted sample values.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_hand_checked() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
    }

    #[test]
    fn variance_of_short_inputs_is_zero() {
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 40.0);
        assert_eq!(percentile(&xs, 50.0), 25.0);
        assert!((percentile(&xs, 25.0) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn median_of_odd_length() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0, 100]")]
    fn percentile_rejects_out_of_range() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn cdf_step_values() {
        let cdf = EmpiricalCdf::new(&[1.0, 1.0, 2.0, 5.0]);
        assert_eq!(cdf.eval(0.5), 0.0);
        assert_eq!(cdf.eval(1.0), 0.5);
        assert_eq!(cdf.eval(1.5), 0.5);
        assert_eq!(cdf.eval(2.0), 0.75);
        assert_eq!(cdf.eval(5.0), 1.0);
        assert_eq!(cdf.fraction_above(1.0), 0.5);
    }

    #[test]
    fn cdf_filters_nan_and_handles_empty() {
        let cdf = EmpiricalCdf::new(&[f64::NAN, 2.0]);
        assert_eq!(cdf.len(), 1);
        let empty = EmpiricalCdf::new(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.eval(1.0), 0.0);
        assert!(empty.curve(5).is_empty());
    }

    #[test]
    fn cdf_curve_spans_range_monotonically() {
        let cdf = EmpiricalCdf::new(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        let curve = cdf.curve(9);
        assert_eq!(curve.len(), 9);
        assert_eq!(curve[0].0, 0.0);
        assert_eq!(curve[8].0, 4.0);
        assert_eq!(curve[8].1, 1.0);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "CDF must be non-decreasing");
        }
    }

    #[test]
    fn cdf_curve_degenerate_sample() {
        let cdf = EmpiricalCdf::new(&[2.0, 2.0]);
        assert_eq!(cdf.curve(5), vec![(2.0, 1.0)]);
    }
}
