//! Seedable pseudo-random number generation.
//!
//! The simulation must be reproducible bit-for-bit across platforms and
//! toolchain versions, so this module implements its own generators instead
//! of depending on an external crate whose stream may change between
//! releases:
//!
//! * [`SplitMix64`] — the seeding/stream-splitting generator recommended by
//!   Vigna for initializing xoshiro state.
//! * [`Xoshiro256StarStar`] — the general-purpose generator behind [`Rng`].
//!
//! Both are tested against the reference vectors published with the original
//! C implementations.

/// SplitMix64 generator (Steele, Lea & Flood 2014; Vigna's variant).
///
/// Used to expand a single `u64` seed into the 256-bit state of
/// [`Xoshiro256StarStar`] and to derive independent child seeds.
///
/// # Examples
///
/// ```
/// use shoggoth_util::rng::SplitMix64;
///
/// let mut sm = SplitMix64::new(0);
/// // First output of SplitMix64 seeded with 0 (reference vector).
/// assert_eq!(sm.next_u64(), 0xe220a8397b1dcdaf);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* generator (Blackman & Vigna 2018).
///
/// All-purpose 64-bit generator with 256 bits of state, a period of
/// 2²⁵⁶ − 1, and excellent statistical quality for simulation work.
///
/// # Examples
///
/// ```
/// use shoggoth_util::rng::Xoshiro256StarStar;
///
/// let mut a = Xoshiro256StarStar::seed_from(7);
/// let mut b = Xoshiro256StarStar::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator whose 256-bit state is expanded from `seed` via
    /// [`SplitMix64`], as recommended by the algorithm's authors.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Creates a generator directly from a full 256-bit state.
    ///
    /// The state must not be all zeros; if it is, a fixed non-zero state is
    /// substituted so the generator never degenerates.
    pub fn from_state(state: [u64; 4]) -> Self {
        if state == [0; 4] {
            Self::seed_from(0xdead_beef)
        } else {
            Self { s: state }
        }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The simulation's random-number generator.
///
/// A thin, ergonomic facade over [`Xoshiro256StarStar`] providing the
/// distributions the Shoggoth simulation needs: uniform floats, ranges,
/// Gaussians (Box–Muller), Bernoulli draws, shuffles, and index sampling
/// without replacement (for Algorithm 1's random replay replacement).
///
/// # Examples
///
/// ```
/// use shoggoth_util::Rng;
///
/// let mut rng = Rng::seed_from(1);
/// let g = rng.next_gaussian(0.0, 1.0);
/// assert!(g.is_finite());
/// let idx = rng.sample_indices(10, 3);
/// assert_eq!(idx.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rng {
    inner: Xoshiro256StarStar,
    /// Cached second output of the Box–Muller transform.
    gauss_spare: Option<f64>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Self {
            inner: Xoshiro256StarStar::seed_from(seed),
            gauss_spare: None,
        }
    }

    /// Derives an independent child generator.
    ///
    /// Useful for giving each subsystem (stream, model, link, ...) its own
    /// stream while keeping the whole simulation a function of one seed.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from(self.next_u64())
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits -> [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid range"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns a uniform integer in `[0, n)` using Lemire's method.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        let n = n as u64;
        // Unbiased multiply-shift rejection sampling (Lemire 2019): accept
        // when the low half clears the 2^64 mod n threshold, else retry.
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as usize;
            }
        }
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Returns a Gaussian sample with the given mean and standard deviation
    /// via the Box–Muller transform.
    pub fn next_gaussian(&mut self, mean: f64, std_dev: f64) -> f64 {
        let z = match self.gauss_spare.take() {
            Some(z) => z,
            None => {
                // Draw u1 in (0, 1] to avoid ln(0).
                let u1 = 1.0 - self.next_f64();
                let u2 = self.next_f64();
                let r = (-2.0 * u1.ln()).sqrt();
                let theta = std::f64::consts::TAU * u2;
                self.gauss_spare = Some(r * theta.sin());
                r * theta.cos()
            }
        };
        mean + std_dev * z
    }

    /// Returns a Gaussian `f32` sample.
    pub fn next_gaussian_f32(&mut self, mean: f32, std_dev: f32) -> f32 {
        self.next_gaussian(mean as f64, std_dev as f64) as f32
    }

    /// Samples an index from a discrete distribution given by `weights`.
    ///
    /// Weights need not be normalized. Non-finite or negative weights are
    /// treated as zero. If every weight is zero the last index is returned.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_index on empty weights");
        let clean = |w: f64| if w.is_finite() && w > 0.0 { w } else { 0.0 };
        let total: f64 = weights.iter().copied().map(clean).sum();
        if total <= 0.0 {
            return weights.len() - 1;
        }
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= clean(w);
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices uniformly from `[0, n)`.
    ///
    /// Implements Algorithm 1's "random sampling of h images" primitive.
    /// If `k >= n`, all indices `0..n` are returned (shuffled).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut indices: Vec<usize> = (0..n).collect();
        self.shuffle(&mut indices);
        indices.truncate(k.min(n));
        indices
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_reference_vectors() {
        // Reference outputs for seed 1234567 from the canonical C code.
        let mut sm = SplitMix64::new(1234567);
        let expected = [
            6457827717110365317u64,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for &e in &expected {
            assert_eq!(sm.next_u64(), e);
        }
    }

    #[test]
    fn splitmix64_zero_seed_first_output() {
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xe220a8397b1dcdaf);
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256StarStar::seed_from(99);
        let mut b = Xoshiro256StarStar::seed_from(99);
        let mut c = Xoshiro256StarStar::seed_from(100);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn xoshiro_all_zero_state_is_fixed_up() {
        let mut g = Xoshiro256StarStar::from_state([0; 4]);
        // Would emit only zeros if the state were left all-zero.
        assert!((0..8).any(|_| g.next_u64() != 0));
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Rng::seed_from(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = Rng::seed_from(4);
        let n = 10;
        let mut counts = vec![0usize; n];
        for _ in 0..100_000 {
            counts[rng.below(n)] += 1;
        }
        for &c in &counts {
            // Each bucket should hold ~10_000 draws; allow generous slack.
            assert!((8_500..11_500).contains(&c), "count {c} out of tolerance");
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Rng::seed_from(5);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_gaussian(2.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Rng::seed_from(6);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((2.6..3.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn weighted_index_all_zero_falls_back_to_last() {
        let mut rng = Rng::seed_from(7);
        assert_eq!(rng.weighted_index(&[0.0, 0.0, 0.0]), 2);
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = Rng::seed_from(8);
        let sample = rng.sample_indices(20, 7);
        assert_eq!(sample.len(), 7);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 7);
        assert!(sample.iter().all(|&i| i < 20));
    }

    #[test]
    fn sample_indices_k_larger_than_n_returns_all() {
        let mut rng = Rng::seed_from(9);
        let mut sample = rng.sample_indices(5, 50);
        sample.sort_unstable();
        assert_eq!(sample, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = Rng::seed_from(10);
        let mut a = root.fork();
        let mut b = root.fork();
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from(11);
        let mut data: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut data);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Rng::seed_from(12);
        assert!((0..100).all(|_| rng.bernoulli(1.0)));
        assert!((0..100).all(|_| !rng.bernoulli(0.0)));
    }
}
