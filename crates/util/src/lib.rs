//! Deterministic utilities underpinning the Shoggoth reproduction.
//!
//! Every stochastic component of the simulation draws from the pseudo-random
//! generators in [`rng`], which are seedable, cross-platform stable, and
//! tested against published reference vectors. [`stats`] provides the
//! summary statistics used by the evaluation harness (means, percentiles,
//! empirical CDFs), [`ewma`] the exponentially-weighted averages used by the
//! sampling-rate controller, [`ring`] a fixed-capacity ring buffer used
//! for recent-frame horizons, and [`pool`] a scoped thread pool whose
//! index-merged results keep parallel experiment runs bit-identical to
//! serial ones.
//!
//! # Examples
//!
//! ```
//! use shoggoth_util::Rng;
//!
//! let mut rng = Rng::seed_from(42);
//! let x = rng.next_f64();
//! assert!((0.0..1.0).contains(&x));
//! ```

pub mod ewma;
pub mod float;
pub mod pool;
pub mod ring;
pub mod rng;
pub mod stats;

pub use ewma::Ewma;
pub use pool::{available_threads, parallel_map};
pub use ring::RingBuffer;
pub use rng::Rng;
