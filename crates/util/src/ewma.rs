//! Exponentially-weighted moving averages.
//!
//! The sampling-rate controller (paper Eq. 3) tracks the recent average
//! scene-change score φ̄ and resource usage λ̄ with exponentially-weighted
//! moving averages; this module provides that primitive.

/// An exponentially-weighted moving average.
///
/// `value ← alpha * sample + (1 - alpha) * value`, seeded by the first
/// observation.
///
/// # Examples
///
/// ```
/// use shoggoth_util::Ewma;
///
/// let mut avg = Ewma::new(0.5);
/// avg.observe(10.0);
/// avg.observe(0.0);
/// assert_eq!(avg.value(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an average with smoothing factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA alpha must be in (0, 1], got {alpha}"
        );
        Self { alpha, value: None }
    }

    /// Feeds an observation and returns the updated average.
    pub fn observe(&mut self, sample: f64) -> f64 {
        let next = match self.value {
            None => sample,
            Some(v) => self.alpha * sample + (1.0 - self.alpha) * v,
        };
        self.value = Some(next);
        next
    }

    /// Current average; `0.0` before any observation.
    pub fn value(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }

    /// Whether at least one observation has been fed.
    pub fn is_initialized(&self) -> bool {
        self.value.is_some()
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Clears the average back to the uninitialized state.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_seeds_value() {
        let mut e = Ewma::new(0.1);
        assert!(!e.is_initialized());
        assert_eq!(e.observe(7.0), 7.0);
        assert!(e.is_initialized());
    }

    #[test]
    fn converges_toward_constant_input() {
        let mut e = Ewma::new(0.3);
        for _ in 0..200 {
            e.observe(4.0);
        }
        assert!((e.value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_one_tracks_last_sample() {
        let mut e = Ewma::new(1.0);
        e.observe(1.0);
        e.observe(9.0);
        assert_eq!(e.value(), 9.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut e = Ewma::new(0.5);
        e.observe(2.0);
        e.reset();
        assert!(!e.is_initialized());
        assert_eq!(e.value(), 0.0);
    }

    #[test]
    #[should_panic(expected = "EWMA alpha must be in (0, 1]")]
    fn rejects_zero_alpha() {
        Ewma::new(0.0);
    }
}
