//! A minimal scoped thread pool with deterministic result ordering.
//!
//! [`parallel_map`] fans a vector of independent work items over a fixed
//! number of `std::thread` workers that self-schedule from a shared queue
//! (idle workers steal the next pending item), then merges the results
//! **by item index** so the output vector is bit-identical to a serial
//! `items.into_iter().enumerate().map(f).collect()` — provided `f` itself
//! is a pure function of `(index, item)`.
//!
//! That proviso is the whole determinism contract of the experiment
//! runner: every simulation owns its seeded RNG (no shared mutable
//! state), so per-device and per-strategy runs are pure in exactly this
//! sense, and running them through the pool cannot change any reported
//! number — only the wall-clock time.
//!
//! No external dependencies: the pool is `std::thread::scope` plus a
//! mutex-guarded queue and an mpsc channel, which is plenty for the
//! coarse-grained work (whole simulations) it schedules.

use std::sync::mpsc;
use std::sync::Mutex;

/// Worker-thread count to use when the caller passes `threads == 0`:
/// the `SHOGGOTH_THREADS` environment variable when set and positive,
/// otherwise [`std::thread::available_parallelism`] (1 if unknown).
pub fn available_threads() -> usize {
    let from_env = std::env::var("SHOGGOTH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0);
    from_env.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    })
}

/// Maps `f` over `items` on `threads` worker threads, returning results
/// in item order (index `i` of the output is `f(i, items[i])`).
///
/// `threads == 0` resolves via [`available_threads`]; a resolved count of
/// one (or at most one item) runs inline on the calling thread with no
/// thread machinery at all. Because results are merged by index and `f`
/// receives each item by value, the output is identical for every thread
/// count — the serial path is the specification, the threaded path is the
/// optimization.
///
/// # Panics
///
/// Propagates a panic from `f` after all worker threads have finished
/// (the underlying [`std::thread::scope`] joins every worker).
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = resolve_threads(threads).min(n);
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let queue = Mutex::new(items.into_iter().enumerate());
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let queue = &queue;
            let f = &f;
            scope.spawn(move || loop {
                // Take the next pending item; drop the lock before the
                // (expensive) call so other workers keep stealing work.
                let next = match queue.lock() {
                    Ok(mut guard) => guard.next(),
                    Err(poisoned) => poisoned.into_inner().next(),
                };
                let Some((i, item)) = next else { return };
                let result = f(i, item);
                if tx.send((i, result)).is_err() {
                    return;
                }
            });
        }
        // The workers hold the remaining senders; the receive loop ends
        // when the last worker drops its clone.
        drop(tx);
        let mut results: Vec<(usize, R)> = rx.iter().collect();
        // If a worker panicked, scope re-raises after joining — so when we
        // get here every index is present exactly once.
        results.sort_unstable_by_key(|&(i, _)| i);
        results.into_iter().map(|(_, r)| r).collect()
    })
}

/// Resolves a requested thread count (`0` = auto) to at least one worker.
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        available_threads()
    } else {
        threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_index_order() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|&v| v * v).collect();
        for threads in [1, 2, 4, 7] {
            let got = parallel_map(items.clone(), threads, |_, v| v * v);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn index_argument_matches_position() {
        let items = vec!["a", "b", "c", "d"];
        let got = parallel_map(items, 3, |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d"]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let got: Vec<u8> = parallel_map(Vec::<u8>::new(), 4, |_, v| v);
        assert!(got.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        let got = parallel_map(vec![41], 8, |_, v| v + 1);
        assert_eq!(got, vec![42]);
    }

    #[test]
    fn auto_thread_count_is_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn parallel_equals_serial_for_stateful_items() {
        // Each item carries its own seed-like state; the pool must not
        // perturb per-item computations regardless of scheduling.
        let items: Vec<u64> = (0..32).map(|i| i * 2654435761).collect();
        let work = |_: usize, seed: u64| {
            let mut x = seed.wrapping_add(0x9E3779B97F4A7C15);
            for _ in 0..1000 {
                x ^= x >> 33;
                x = x.wrapping_mul(0xFF51AFD7ED558CCD);
            }
            x
        };
        let serial = parallel_map(items.clone(), 1, work);
        let threaded = parallel_map(items, 4, work);
        assert_eq!(serial, threaded);
    }
}
