//! Explicit float-comparison helpers.
//!
//! Bare `==`/`!=` on `f32`/`f64` is forbidden in library code by the
//! workspace lint tool (`cargo run -p xtask -- lint`, lint L3): it is
//! almost always either a tolerance bug or an unstated bit-exactness
//! assumption. These helpers make the intent explicit — and give the
//! reviewer one place to audit the semantics.

/// Whether `x` is exactly zero (`+0.0` or `-0.0`), decided on the bit
/// pattern so no float comparison is involved. `NaN` is not zero.
///
/// Used by the SGD hot path to skip frozen layers: a learning rate is
/// *exactly* zero only when the freeze policy set it so, making bit-level
/// zero the correct test (an epsilon would silently freeze slow-learning
/// layers).
///
/// # Examples
///
/// ```
/// use shoggoth_util::float::is_exact_zero;
///
/// assert!(is_exact_zero(0.0));
/// assert!(is_exact_zero(-0.0));
/// assert!(!is_exact_zero(1e-45)); // smallest subnormal is not zero
/// assert!(!is_exact_zero(f32::NAN));
/// ```
#[must_use]
pub fn is_exact_zero(x: f32) -> bool {
    x.to_bits() & 0x7fff_ffff == 0
}

/// Bit-exact equality of two `f32`s: `NaN` equals `NaN` (same payload),
/// and `+0.0` differs from `-0.0`. This is the right notion for
/// "unchanged after export/import" style checks.
#[must_use]
pub fn bit_eq(a: f32, b: f32) -> bool {
    a.to_bits() == b.to_bits()
}

/// Approximate equality with an absolute tolerance. `NaN` never compares
/// equal. Prefer this over bare `==` whenever two independently computed
/// floats are expected to agree.
///
/// # Examples
///
/// ```
/// use shoggoth_util::float::approx_eq;
///
/// assert!(approx_eq(0.1 + 0.2, 0.3, 1e-9));
/// assert!(!approx_eq(1.0, 1.1, 1e-3));
/// ```
#[must_use]
pub fn approx_eq(a: f64, b: f64, tolerance: f64) -> bool {
    (a - b).abs() <= tolerance
}

/// `f32` variant of [`approx_eq`].
#[must_use]
pub fn approx_eq_f32(a: f32, b: f32, tolerance: f32) -> bool {
    (a - b).abs() <= tolerance
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_zero_covers_both_signs_only() {
        assert!(is_exact_zero(0.0));
        assert!(is_exact_zero(-0.0));
        assert!(!is_exact_zero(f32::MIN_POSITIVE));
        assert!(!is_exact_zero(-f32::MIN_POSITIVE));
        assert!(!is_exact_zero(f32::NAN));
        assert!(!is_exact_zero(f32::INFINITY));
    }

    #[test]
    fn bit_eq_distinguishes_signed_zero_and_matches_nan() {
        assert!(!bit_eq(0.0, -0.0));
        assert!(bit_eq(f32::NAN, f32::NAN));
        assert!(bit_eq(1.5, 1.5));
        assert!(!bit_eq(1.5, 1.5000001));
    }

    #[test]
    fn approx_eq_respects_tolerance_and_nan() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 2.0, 0.5));
        assert!(!approx_eq(f64::NAN, f64::NAN, 1.0));
        assert!(approx_eq_f32(0.5, 0.5 + 1e-8, 1e-6));
    }
}
