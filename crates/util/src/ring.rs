//! Fixed-capacity ring buffer.
//!
//! The cloud server computes the scene-change score φ̄ over a "carefully
//! selected recent frame horizon" (paper §III-C); [`RingBuffer`] holds that
//! horizon, evicting the oldest entry once full.

/// A fixed-capacity FIFO that overwrites its oldest element when full.
///
/// # Examples
///
/// ```
/// use shoggoth_util::RingBuffer;
///
/// let mut horizon = RingBuffer::new(3);
/// for v in [1, 2, 3, 4] {
///     horizon.push(v);
/// }
/// assert_eq!(horizon.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingBuffer<T> {
    items: std::collections::VecDeque<T>,
    capacity: usize,
}

impl<T> RingBuffer<T> {
    /// Creates a buffer holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        Self {
            items: std::collections::VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Appends an element, returning the evicted oldest element if the
    /// buffer was full.
    pub fn push(&mut self, item: T) -> Option<T> {
        let evicted = if self.items.len() == self.capacity {
            self.items.pop_front()
        } else {
            None
        };
        self.items.push_back(item);
        evicted
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the buffer is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Maximum number of elements.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Oldest element, if any.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Newest element, if any.
    pub fn back(&self) -> Option<&T> {
        self.items.back()
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Drains all elements oldest → newest, leaving the buffer empty.
    pub fn drain(&mut self) -> Vec<T> {
        self.items.drain(..).collect()
    }
}

impl RingBuffer<f64> {
    /// Mean of the stored values; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.items.is_empty() {
            0.0
        } else {
            self.items.iter().sum::<f64>() / self.items.len() as f64
        }
    }
}

impl<T> Extend<T> for RingBuffer<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_below_capacity_evicts_nothing() {
        let mut rb = RingBuffer::new(2);
        assert_eq!(rb.push(1), None);
        assert_eq!(rb.push(2), None);
        assert!(rb.is_full());
    }

    #[test]
    fn push_at_capacity_evicts_oldest() {
        let mut rb = RingBuffer::new(2);
        rb.push(1);
        rb.push(2);
        assert_eq!(rb.push(3), Some(1));
        assert_eq!(rb.front(), Some(&2));
        assert_eq!(rb.back(), Some(&3));
    }

    #[test]
    fn mean_over_window() {
        let mut rb = RingBuffer::new(3);
        rb.extend([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(rb.mean(), 3.0);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        let rb: RingBuffer<f64> = RingBuffer::new(4);
        assert_eq!(rb.mean(), 0.0);
    }

    #[test]
    fn drain_returns_in_order_and_empties() {
        let mut rb = RingBuffer::new(3);
        rb.extend([5, 6, 7, 8]);
        assert_eq!(rb.drain(), vec![6, 7, 8]);
        assert!(rb.is_empty());
    }

    #[test]
    #[should_panic(expected = "ring buffer capacity must be positive")]
    fn zero_capacity_rejected() {
        RingBuffer::<u8>::new(0);
    }
}
