//! Stream presets mirroring the paper's three benchmarks.
//!
//! Each preset builds a [`StreamConfig`] whose class count, drift severity
//! and scene tempo echo the corresponding dataset:
//!
//! * [`detrac`] — UA-DETRAC-like: 4 vehicle classes, dense urban traffic,
//!   strong weather/illumination drift (hardest; paper Edge-Only mAP 34.2).
//! * [`kitti`] — KITTI-like (Car only): a single class, daytime driving,
//!   mild drift (easiest; paper Edge-Only mAP 56.8).
//! * [`waymo`] — Waymo-Open-like: 3 classes, mixed day/night suburban
//!   driving, intermediate drift (paper Edge-Only mAP 47.5).
//!
//! Convention: **domain index 0 is the source domain** (severity 0.0) on
//! which students are pre-trained; later scenes drift away from it and
//! periodically return.

use crate::domain::{DomainLibrary, Illumination, Weather};
use crate::stream::{SceneSpec, StreamConfig};
use crate::world::WorldConfig;

/// Default scene length in frames (20 s at 30 fps).
const SCENE_FRAMES: u64 = 600;

/// UA-DETRAC-like stream: 4 vehicle classes, heavy drift, dense traffic.
///
/// # Examples
///
/// ```
/// let config = shoggoth_video::presets::detrac(1);
/// assert_eq!(config.name, "ua-detrac");
/// assert!(config.total_frames() > 5_000);
/// ```
pub fn detrac(seed: u64) -> StreamConfig {
    let mut library = DomainLibrary::new(WorldConfig::new(4, 32, seed ^ 0xD37A));
    // Class mixes: car, bus, van, truck. Night thins out everything but
    // cars; rain shifts toward heavy vehicles (Fig. 1(c) style shift).
    library.generate(
        "day-sunny",
        Illumination::Day,
        Weather::Sunny,
        0.0,
        vec![8.0, 1.5, 2.0, 1.0],
    );
    library.generate(
        "day-cloudy",
        Illumination::Day,
        Weather::Cloudy,
        0.35,
        vec![7.0, 2.0, 2.0, 1.5],
    );
    library.generate(
        "day-rainy",
        Illumination::Day,
        Weather::Rainy,
        0.6,
        vec![5.0, 2.5, 1.5, 2.5],
    );
    library.generate(
        "dusk",
        Illumination::Dusk,
        Weather::Cloudy,
        0.5,
        vec![6.0, 1.0, 1.5, 1.0],
    );
    library.generate(
        "night",
        Illumination::Night,
        Weather::Sunny,
        0.85,
        vec![6.0, 0.5, 0.5, 0.4],
    );
    library.generate(
        "night-rainy",
        Illumination::Night,
        Weather::Rainy,
        1.0,
        vec![5.0, 0.4, 0.3, 0.3],
    );
    let scenes = vec![
        SceneSpec::new(0, SCENE_FRAMES),
        SceneSpec::new(1, SCENE_FRAMES),
        SceneSpec::new(2, SCENE_FRAMES),
        SceneSpec::new(1, SCENE_FRAMES / 2),
        SceneSpec::new(3, SCENE_FRAMES),
        SceneSpec::new(4, SCENE_FRAMES),
        SceneSpec::new(5, SCENE_FRAMES),
        SceneSpec::new(4, SCENE_FRAMES / 2),
        SceneSpec::new(3, SCENE_FRAMES / 2),
        SceneSpec::new(0, SCENE_FRAMES),
        SceneSpec::new(2, SCENE_FRAMES),
        SceneSpec::new(5, SCENE_FRAMES),
        SceneSpec::new(1, SCENE_FRAMES),
        SceneSpec::new(4, SCENE_FRAMES),
        SceneSpec::new(0, SCENE_FRAMES / 2),
    ];
    StreamConfig {
        name: "ua-detrac".into(),
        library,
        scenes,
        fps: 30,
        mean_objects: 7.0,
        background_proposals: 8,
        bbox_jitter: 0.13,
        proposal_miss_rate: 0.08,
        resolution: (512, 512),
        transition_frames: 90,
        seed,
    }
}

/// KITTI-like stream (Car only): one class, mild daytime drift.
///
/// # Examples
///
/// ```
/// let config = shoggoth_video::presets::kitti(1);
/// assert_eq!(config.library.world().num_classes(), 1);
/// ```
pub fn kitti(seed: u64) -> StreamConfig {
    let mut library = DomainLibrary::new(WorldConfig::new(1, 32, seed ^ 0x1717));
    library.generate(
        "residential",
        Illumination::Day,
        Weather::Sunny,
        0.0,
        vec![1.0],
    );
    library.generate("city", Illumination::Day, Weather::Cloudy, 0.5, vec![1.0]);
    library.generate("road", Illumination::Day, Weather::Rainy, 0.65, vec![1.0]);
    library.generate(
        "campus",
        Illumination::Dusk,
        Weather::Cloudy,
        0.75,
        vec![1.0],
    );
    let scenes = vec![
        SceneSpec::new(0, SCENE_FRAMES),
        SceneSpec::new(1, SCENE_FRAMES),
        SceneSpec::new(2, SCENE_FRAMES),
        SceneSpec::new(0, SCENE_FRAMES / 2),
        SceneSpec::new(3, SCENE_FRAMES),
        SceneSpec::new(1, SCENE_FRAMES / 2),
        SceneSpec::new(2, SCENE_FRAMES),
        SceneSpec::new(3, SCENE_FRAMES / 2),
        SceneSpec::new(0, SCENE_FRAMES),
        SceneSpec::new(2, SCENE_FRAMES / 2),
    ];
    StreamConfig {
        name: "kitti".into(),
        library,
        scenes,
        fps: 30,
        mean_objects: 4.0,
        background_proposals: 5,
        bbox_jitter: 0.10,
        proposal_miss_rate: 0.05,
        resolution: (512, 512),
        transition_frames: 60,
        seed,
    }
}

/// Waymo-Open-like stream: 3 classes, mixed day/night suburban driving.
///
/// # Examples
///
/// ```
/// let config = shoggoth_video::presets::waymo(1);
/// assert_eq!(config.library.world().num_classes(), 3);
/// ```
pub fn waymo(seed: u64) -> StreamConfig {
    let mut library = DomainLibrary::new(WorldConfig::new(3, 32, seed ^ 0x3A7A0));
    // vehicle, pedestrian, cyclist.
    library.generate(
        "day-suburban",
        Illumination::Day,
        Weather::Sunny,
        0.0,
        vec![6.0, 3.0, 1.0],
    );
    library.generate(
        "day-downtown",
        Illumination::Day,
        Weather::Cloudy,
        0.4,
        vec![5.0, 5.0, 1.5],
    );
    library.generate(
        "rain",
        Illumination::Day,
        Weather::Rainy,
        0.6,
        vec![6.0, 2.0, 0.5],
    );
    library.generate(
        "dusk",
        Illumination::Dusk,
        Weather::Sunny,
        0.55,
        vec![6.0, 2.0, 0.8],
    );
    library.generate(
        "night",
        Illumination::Night,
        Weather::Sunny,
        0.8,
        vec![6.0, 1.0, 0.2],
    );
    let scenes = vec![
        SceneSpec::new(0, SCENE_FRAMES),
        SceneSpec::new(1, SCENE_FRAMES),
        SceneSpec::new(3, SCENE_FRAMES / 2),
        SceneSpec::new(4, SCENE_FRAMES),
        SceneSpec::new(2, SCENE_FRAMES),
        SceneSpec::new(0, SCENE_FRAMES / 2),
        SceneSpec::new(4, SCENE_FRAMES),
        SceneSpec::new(1, SCENE_FRAMES / 2),
        SceneSpec::new(3, SCENE_FRAMES),
        SceneSpec::new(0, SCENE_FRAMES),
        SceneSpec::new(2, SCENE_FRAMES / 2),
        SceneSpec::new(4, SCENE_FRAMES / 2),
    ];
    StreamConfig {
        name: "waymo-open".into(),
        library,
        scenes,
        fps: 30,
        mean_objects: 6.0,
        background_proposals: 7,
        bbox_jitter: 0.12,
        proposal_miss_rate: 0.07,
        resolution: (512, 512),
        transition_frames: 75,
        seed,
    }
}

/// All three presets, in the order the paper's Table I lists them.
pub fn all(seed: u64) -> Vec<StreamConfig> {
    vec![detrac(seed), kitti(seed), waymo(seed)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build_and_play() {
        for config in all(3) {
            let frames: Vec<_> = config.clone().with_total_frames(120).build().collect();
            assert_eq!(frames.len(), 120, "{}", config.name);
            assert!(frames.iter().any(|f| !f.ground_truth.is_empty()));
        }
    }

    #[test]
    fn source_domain_is_severity_zero() {
        for config in all(4) {
            assert_eq!(
                config.library.domain(0).severity,
                0.0,
                "{}: domain 0 must be the pre-training source",
                config.name
            );
            assert_eq!(config.scenes[0].domain_index, 0);
        }
    }

    #[test]
    fn drift_severity_ordering_matches_dataset_difficulty() {
        let max_severity = |c: &crate::stream::StreamConfig| {
            c.library
                .domains()
                .iter()
                .map(|d| d.severity)
                .fold(0.0f32, f32::max)
        };
        let d = max_severity(&detrac(1));
        let k = max_severity(&kitti(1));
        let w = max_severity(&waymo(1));
        assert!(
            d > w && w > k,
            "severity order detrac > waymo > kitti: {d} {w} {k}"
        );
    }

    #[test]
    fn presets_visit_multiple_domains() {
        for config in all(5) {
            let mut names: Vec<&str> = Vec::new();
            for scene in &config.scenes {
                let name = config.library.domain(scene.domain_index).name.as_str();
                if !names.contains(&name) {
                    names.push(name);
                }
            }
            assert!(names.len() >= 4, "{} visits only {:?}", config.name, names);
        }
    }

    #[test]
    fn playback_is_thirty_fps() {
        for config in all(6) {
            assert_eq!(config.fps, 30);
        }
    }
}
