//! Domains: weather/illumination conditions with their own appearance
//! transform and class mix.
//!
//! A domain models everything the paper's Fig. 1 attributes to *data
//! drift*: the class distribution changes (rush hour vs. quiet night), and
//! the visual appearance of the same class changes (illumination, weather).
//! Appearance change is a per-domain affine transform of the latent feature
//! space plus illumination-dependent noise.

use crate::world::{FeatureWorld, WorldConfig};
use crate::ClassId;
use serde::{Deserialize, Serialize};
use shoggoth_util::Rng;

/// Illumination condition of a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Illumination {
    /// Full daylight: low feature noise.
    Day,
    /// Dawn/dusk: moderate feature noise.
    Dusk,
    /// Night: high feature noise and reduced contrast — the condition the
    /// paper singles out as hardest for the lightweight model.
    Night,
}

impl Illumination {
    /// Standard deviation of appearance noise under this illumination.
    pub fn noise_std(self) -> f32 {
        match self {
            Illumination::Day => 0.35,
            Illumination::Dusk => 0.55,
            Illumination::Night => 0.85,
        }
    }

    /// Contrast multiplier applied to object features.
    pub fn contrast(self) -> f32 {
        match self {
            Illumination::Day => 1.0,
            Illumination::Dusk => 0.85,
            Illumination::Night => 0.65,
        }
    }
}

/// Weather condition of a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Weather {
    /// Clear skies.
    Sunny,
    /// Overcast.
    Cloudy,
    /// Rain: extra appearance noise.
    Rainy,
}

impl Weather {
    /// Additional appearance-noise standard deviation from weather.
    pub fn extra_noise(self) -> f32 {
        match self {
            Weather::Sunny => 0.0,
            Weather::Cloudy => 0.1,
            Weather::Rainy => 0.25,
        }
    }
}

/// A single weather/illumination condition.
///
/// Created through [`DomainLibrary::generate`], which derives the appearance
/// transform deterministically from the library seed.
#[derive(Debug, Clone, PartialEq)]
pub struct Domain {
    /// Human-readable name, e.g. `"day-sunny"`.
    pub name: String,
    /// Illumination condition.
    pub illumination: Illumination,
    /// Weather condition.
    pub weather: Weather,
    /// Relative class frequencies (need not be normalized).
    pub class_mix: Vec<f64>,
    /// How strongly this domain's appearance differs from the source
    /// domain, in `[0, 1]`. `0.0` means the identity transform.
    pub severity: f32,
    /// Per-domain feature-space mixing matrix (`dim × dim`, row-major):
    /// `I + severity · R` with `R` random.
    mix: Vec<f32>,
    /// Per-domain feature shift.
    shift: Vec<f32>,
    /// Per-class appearance shift (class-conditional drift: e.g. at night
    /// a car becomes a pair of headlights, not a darker car). A global
    /// normalization layer cannot absorb this component — the classifier
    /// head must genuinely adapt, which is what makes replay memory
    /// matter.
    class_shift: Vec<Vec<f32>>,
    dim: usize,
}

impl Domain {
    /// Total appearance-noise standard deviation for this domain.
    pub fn noise_std(&self) -> f32 {
        self.illumination.noise_std() + self.weather.extra_noise()
    }

    /// Samples a ground-truth class according to this domain's class mix.
    pub fn sample_class(&self, rng: &mut Rng) -> ClassId {
        rng.weighted_index(&self.class_mix)
    }

    /// The deterministic (noise-free) appearance of `class` in this domain:
    /// `contrast · (M · (prototype + jitter) + shift)`.
    ///
    /// `jitter` is the per-object instance variation (same length as the
    /// prototype); pass zeros for the canonical class appearance.
    ///
    /// # Panics
    ///
    /// Panics if `jitter.len()` differs from the feature dimension or
    /// `class` is out of range.
    pub fn object_appearance(
        &self,
        world: &FeatureWorld,
        class: ClassId,
        jitter: &[f32],
    ) -> Vec<f32> {
        assert_eq!(jitter.len(), self.dim, "jitter dimension mismatch");
        let proto = world.prototype(class);
        let base: Vec<f32> = proto.iter().zip(jitter).map(|(p, j)| p + j).collect();
        let contrast = self.illumination.contrast();
        let class_shift = &self.class_shift[class];
        let mut out = vec![0.0f32; self.dim];
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.mix[r * self.dim..(r + 1) * self.dim];
            let dot: f32 = row.iter().zip(&base).map(|(m, b)| m * b).sum();
            *o = contrast * (dot + self.shift[r] + class_shift[r]);
        }
        out
    }

    /// The appearance of a background (non-object) region in this domain:
    /// a low-magnitude vector around the domain shift, confusable with
    /// low-contrast objects.
    pub fn background_appearance(&self, rng: &mut Rng) -> Vec<f32> {
        let contrast = self.illumination.contrast();
        (0..self.dim)
            .map(|i| contrast * (0.4 * self.shift[i] + rng.next_gaussian_f32(0.0, 0.6)))
            .collect()
    }

    /// Linear interpolation of two domains' transforms (used for gradual
    /// scene transitions). Class mix, illumination and weather come from
    /// `other` weighted by `t`.
    ///
    /// # Panics
    ///
    /// Panics if the domains have different feature dimensions.
    pub fn lerp(&self, other: &Domain, t: f32) -> Domain {
        assert_eq!(self.dim, other.dim, "domain dimension mismatch");
        let t = t.clamp(0.0, 1.0);
        let mix = self
            .mix
            .iter()
            .zip(&other.mix)
            .map(|(a, b)| a + (b - a) * t)
            .collect();
        let shift = self
            .shift
            .iter()
            .zip(&other.shift)
            .map(|(a, b)| a + (b - a) * t)
            .collect();
        let class_mix = self
            .class_mix
            .iter()
            .zip(&other.class_mix)
            .map(|(a, b)| a + (b - a) * t as f64)
            .collect();
        let class_shift = self
            .class_shift
            .iter()
            .zip(&other.class_shift)
            .map(|(sa, sb)| sa.iter().zip(sb).map(|(a, b)| a + (b - a) * t).collect())
            .collect();
        Domain {
            name: format!("{}->{}", self.name, other.name),
            illumination: if t < 0.5 {
                self.illumination
            } else {
                other.illumination
            },
            weather: if t < 0.5 { self.weather } else { other.weather },
            class_mix,
            severity: self.severity + (other.severity - self.severity) * t,
            mix,
            shift,
            class_shift,
            dim: self.dim,
        }
    }

    /// Feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.dim
    }
}

/// A deterministic collection of domains sharing one feature world.
///
/// # Examples
///
/// ```
/// use shoggoth_video::{DomainLibrary, Illumination, Weather, WorldConfig};
///
/// let mut lib = DomainLibrary::new(WorldConfig::new(4, 16, 3));
/// let day = lib.generate("day-sunny", Illumination::Day, Weather::Sunny, 0.0, vec![4.0, 2.0, 1.0, 1.0]);
/// let night = lib.generate("night", Illumination::Night, Weather::Sunny, 0.7, vec![3.0, 1.0, 0.3, 0.2]);
/// assert_ne!(day, night);
/// assert_eq!(lib.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DomainLibrary {
    world: FeatureWorld,
    domains: Vec<Domain>,
    rng: Rng,
}

impl DomainLibrary {
    /// Creates a library over a fresh feature world.
    pub fn new(config: WorldConfig) -> Self {
        let domain_seed = config.seed;
        Self::with_domain_seed(config, domain_seed)
    }

    /// Creates a library over the same feature world as `config` but with
    /// an independent domain-generation stream. Use this to synthesize
    /// *auxiliary* domains (e.g. a generic pre-training corpus) that share
    /// class prototypes with a stream without replicating its domains.
    pub fn with_domain_seed(config: WorldConfig, domain_seed: u64) -> Self {
        let rng = Rng::seed_from(domain_seed ^ 0x444f_4d41_494e); // "DOMAIN"
        Self {
            world: FeatureWorld::new(&config),
            domains: Vec::new(),
            rng,
        }
    }

    /// The shared feature world.
    pub fn world(&self) -> &FeatureWorld {
        &self.world
    }

    /// Number of generated domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// Whether no domain has been generated yet.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// All generated domains, in generation order.
    pub fn domains(&self) -> &[Domain] {
        &self.domains
    }

    /// The `idx`-th generated domain.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn domain(&self, idx: usize) -> &Domain {
        &self.domains[idx]
    }

    /// Generates (and stores) a new domain.
    ///
    /// `severity = 0.0` yields the identity appearance transform — use it
    /// for the source domain the student is pre-trained on. Larger severity
    /// mixes feature dimensions and shifts the space more aggressively.
    ///
    /// # Panics
    ///
    /// Panics if `class_mix.len()` differs from the world's class count or
    /// `severity` is outside `[0, 1]`.
    pub fn generate(
        &mut self,
        name: &str,
        illumination: Illumination,
        weather: Weather,
        severity: f32,
        class_mix: Vec<f64>,
    ) -> Domain {
        assert_eq!(
            class_mix.len(),
            self.world.num_classes(),
            "class mix length must equal class count"
        );
        assert!(
            (0.0..=1.0).contains(&severity),
            "severity must be in [0, 1]"
        );
        let dim = self.world.feature_dim();
        // Real-world appearance drift (illumination, weather) is dominated
        // by shift and contrast changes of low-level statistics — the kind
        // of drift batch-(re)normalization statistics and a retrained head
        // can track — with only mild feature mixing. The mixing term is
        // kept small relative to the shift so the paper's frozen-backbone
        // premise holds.
        let mut mix = vec![0.0f32; dim * dim];
        for r in 0..dim {
            for c in 0..dim {
                let identity = if r == c { 1.0 } else { 0.0 };
                // Off-diagonal mixing scaled down by dimension so the
                // transform stays well-conditioned.
                let perturb = self.rng.next_gaussian_f32(0.0, 1.0) / (dim as f32).sqrt();
                mix[r * dim + c] = identity + severity * 0.3 * perturb;
            }
        }
        let shift: Vec<f32> = (0..dim)
            .map(|_| severity * self.rng.next_gaussian_f32(0.0, 1.3))
            .collect();
        // Class-conditional component: small next to the global shift but
        // un-normalizable, so it forces real head adaptation per domain.
        let class_shift: Vec<Vec<f32>> = (0..self.world.num_classes())
            .map(|_| {
                (0..dim)
                    .map(|_| severity * self.rng.next_gaussian_f32(0.0, 0.14))
                    .collect()
            })
            .collect();
        let domain = Domain {
            name: name.to_owned(),
            illumination,
            weather,
            class_mix,
            severity,
            mix,
            shift,
            class_shift,
            dim,
        };
        self.domains.push(domain.clone());
        domain
    }
}

/// Normalized class histogram of a slice of ground-truth class ids.
///
/// Used to visualize the Fig. 1(c) class-distribution shift.
pub fn class_histogram(classes: &[ClassId], num_classes: usize) -> Vec<f64> {
    let mut hist = vec![0.0f64; num_classes];
    for &c in classes {
        if c < num_classes {
            hist[c] += 1.0;
        }
    }
    let total: f64 = hist.iter().sum();
    if total > 0.0 {
        for h in &mut hist {
            *h /= total;
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn library() -> DomainLibrary {
        DomainLibrary::new(WorldConfig::new(4, 16, 5))
    }

    #[test]
    fn source_domain_is_identity_transform() {
        let mut lib = library();
        let day = lib.generate("day", Illumination::Day, Weather::Sunny, 0.0, vec![1.0; 4]);
        let jitter = vec![0.0f32; 16];
        let appearance = day.object_appearance(lib.world(), 2, &jitter);
        let proto = lib.world().prototype(2);
        for (a, p) in appearance.iter().zip(proto) {
            assert!(
                (a - p).abs() < 1e-5,
                "identity domain must preserve prototypes"
            );
        }
    }

    #[test]
    fn severe_domain_moves_features() {
        let mut lib = library();
        let day = lib.generate("day", Illumination::Day, Weather::Sunny, 0.0, vec![1.0; 4]);
        let night = lib.generate(
            "night",
            Illumination::Night,
            Weather::Rainy,
            0.8,
            vec![1.0; 4],
        );
        let jitter = vec![0.0f32; 16];
        let a = day.object_appearance(lib.world(), 0, &jitter);
        let b = night.object_appearance(lib.world(), 0, &jitter);
        let dist: f32 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y).powi(2))
            .sum::<f32>()
            .sqrt();
        assert!(
            dist > 0.5,
            "severe domain should shift appearance, got {dist}"
        );
    }

    #[test]
    fn night_contrast_shrinks_features() {
        let mut lib = library();
        let night = lib.generate(
            "night",
            Illumination::Night,
            Weather::Sunny,
            0.0,
            vec![1.0; 4],
        );
        let jitter = vec![0.0f32; 16];
        let a = night.object_appearance(lib.world(), 0, &jitter);
        let proto = lib.world().prototype(0);
        let norm_a: f32 = a.iter().map(|v| v * v).sum::<f32>().sqrt();
        let norm_p: f32 = proto.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!(
            norm_a < norm_p * 0.7,
            "night contrast should shrink magnitude"
        );
    }

    #[test]
    fn class_sampling_follows_mix() {
        let mut lib = library();
        let d = lib.generate(
            "biased",
            Illumination::Day,
            Weather::Sunny,
            0.0,
            vec![8.0, 0.0, 1.0, 1.0],
        );
        let mut rng = Rng::seed_from(9);
        let mut counts = [0usize; 4];
        for _ in 0..10_000 {
            counts[d.sample_class(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[0] > counts[2] * 5);
    }

    #[test]
    fn lerp_endpoints_match_inputs() {
        let mut lib = library();
        let a = lib.generate("a", Illumination::Day, Weather::Sunny, 0.0, vec![1.0; 4]);
        let b = lib.generate("b", Illumination::Night, Weather::Rainy, 0.9, vec![2.0; 4]);
        let at_zero = a.lerp(&b, 0.0);
        let at_one = a.lerp(&b, 1.0);
        let jitter = vec![0.0f32; 16];
        let x0 = at_zero.object_appearance(lib.world(), 1, &jitter);
        let xa = a.object_appearance(lib.world(), 1, &jitter);
        for (p, q) in x0.iter().zip(&xa) {
            assert!((p - q).abs() < 1e-5);
        }
        assert_eq!(at_one.illumination, Illumination::Night);
    }

    #[test]
    fn histogram_normalizes() {
        let h = class_histogram(&[0, 0, 1, 3], 4);
        assert_eq!(h, vec![0.5, 0.25, 0.0, 0.25]);
        assert_eq!(class_histogram(&[], 3), vec![0.0; 3]);
    }

    #[test]
    fn library_generation_is_deterministic() {
        let build = || {
            let mut lib = library();
            lib.generate("x", Illumination::Dusk, Weather::Cloudy, 0.5, vec![1.0; 4])
        };
        assert_eq!(build(), build());
    }

    #[test]
    #[should_panic(expected = "class mix length must equal class count")]
    fn wrong_class_mix_length_rejected() {
        let mut lib = library();
        lib.generate("bad", Illumination::Day, Weather::Sunny, 0.0, vec![1.0; 3]);
    }
}
