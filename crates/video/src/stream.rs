//! The video stream generator.
//!
//! A [`VideoStream`] plays back a chain of scenes at a fixed frame rate.
//! Objects spawn, persist and move within a scene (strong short-horizon
//! correlation); scene switches change the active [`Domain`] — abruptly, or
//! gradually over `transition_frames` (long-horizon distribution drift).
//! Each frame carries ground truth plus the region proposals a detector
//! classifies.

use crate::domain::{Domain, DomainLibrary};
use crate::frame::{Frame, GroundTruthObject, Proposal};
use crate::BBox;
use shoggoth_util::Rng;

/// One scene: a contiguous run of frames under a single domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SceneSpec {
    /// Index into the stream's [`DomainLibrary`].
    pub domain_index: usize,
    /// Scene length in frames.
    pub frames: u64,
}

impl SceneSpec {
    /// Creates a scene spec.
    pub fn new(domain_index: usize, frames: u64) -> Self {
        Self {
            domain_index,
            frames,
        }
    }
}

/// Full configuration of a synthetic video stream.
///
/// Obtain presets from [`crate::presets`] or build one directly.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Stream name (e.g. `"ua-detrac"`), used in reports.
    pub name: String,
    /// The domain library (owns the feature world).
    pub library: DomainLibrary,
    /// Scene chain in playback order.
    pub scenes: Vec<SceneSpec>,
    /// Playback rate in frames per second (the paper uses 30 fps).
    pub fps: u32,
    /// Expected number of concurrent objects.
    pub mean_objects: f64,
    /// Background (distractor) proposals per frame.
    pub background_proposals: usize,
    /// Standard deviation of proposal-box jitter, as a fraction of object
    /// size. Larger jitter lowers the achievable IoU even for a perfect
    /// classifier.
    pub bbox_jitter: f32,
    /// Probability that a visible object produces no proposal in a frame
    /// (bounds the achievable recall below 100%).
    pub proposal_miss_rate: f64,
    /// Frame resolution in pixels (the paper resizes to 512×512).
    pub resolution: (u32, u32),
    /// Length of the gradual domain blend at each scene switch; `0` makes
    /// switches abrupt.
    pub transition_frames: u64,
    /// Stream seed (independent of the world seed).
    pub seed: u64,
}

impl StreamConfig {
    /// Total number of frames over all scenes.
    pub fn total_frames(&self) -> u64 {
        self.scenes.iter().map(|s| s.frames).sum()
    }

    /// Stream duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.total_frames() as f64 / self.fps as f64
    }

    /// Rescales all scene lengths proportionally so the stream totals
    /// exactly `n` frames (useful for quick tests on long presets).
    ///
    /// # Panics
    ///
    /// Panics if the config has no scenes or `n == 0`.
    pub fn with_total_frames(mut self, n: u64) -> Self {
        assert!(!self.scenes.is_empty(), "config has no scenes");
        assert!(n > 0, "total frame count must be positive");
        let current = self.total_frames().max(1);
        let mut assigned = 0u64;
        let count = self.scenes.len();
        for (i, scene) in self.scenes.iter_mut().enumerate() {
            if i + 1 == count {
                scene.frames = n - assigned;
            } else {
                scene.frames = ((scene.frames as u128 * n as u128) / current as u128) as u64;
                scene.frames = scene
                    .frames
                    .max(1)
                    .min(n.saturating_sub(assigned + (count - i - 1) as u64));
                assigned += scene.frames;
            }
        }
        self
    }

    /// Overrides the stream seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Instantiates the stream iterator.
    ///
    /// # Panics
    ///
    /// Panics if any scene references a domain index outside the library.
    pub fn build(&self) -> VideoStream {
        for scene in &self.scenes {
            assert!(
                scene.domain_index < self.library.len(),
                "scene references domain {} but library has {}",
                scene.domain_index,
                self.library.len()
            );
        }
        VideoStream::new(self.clone())
    }
}

/// A moving object alive within the current scene.
#[derive(Debug, Clone)]
struct ActiveObject {
    track_id: u64,
    class: usize,
    bbox: BBox,
    velocity: (f32, f32),
    /// Per-instance appearance jitter (fixed for the object's lifetime).
    jitter: Vec<f32>,
    /// Cached domain-transformed appearance (recomputed on domain change).
    base_appearance: Vec<f32>,
    /// Remaining lifetime in frames.
    ttl: u64,
}

/// Iterator over the frames of a configured stream.
///
/// Produced by [`StreamConfig::build`]; yields exactly
/// [`StreamConfig::total_frames`] frames.
#[derive(Debug, Clone)]
pub struct VideoStream {
    config: StreamConfig,
    rng: Rng,
    frame_index: u64,
    scene_index: usize,
    scene_offset: u64,
    objects: Vec<ActiveObject>,
    next_track_id: u64,
    /// Domain in effect last frame (for cache invalidation).
    current_domain: Domain,
    in_transition_last: bool,
}

impl VideoStream {
    fn new(config: StreamConfig) -> Self {
        let mut rng = Rng::seed_from(config.seed ^ 0x5354_5245_414d); // "STREAM"
        let current_domain = config.library.domain(config.scenes[0].domain_index).clone();
        let mut stream = Self {
            rng: rng.fork(),
            frame_index: 0,
            scene_index: 0,
            scene_offset: 0,
            objects: Vec::new(),
            next_track_id: 0,
            current_domain,
            in_transition_last: false,
            config,
        };
        // Pre-populate the first scene so frame 0 is not empty.
        for _ in 0..stream.config.mean_objects.round() as usize {
            stream.spawn_object();
        }
        stream
    }

    /// The stream's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Frames remaining to be produced.
    pub fn remaining(&self) -> u64 {
        self.config.total_frames() - self.frame_index
    }

    /// The domain (with any transition blending) in effect at the scene
    /// position `(scene_index, scene_offset)`.
    fn effective_domain(&self, scene_index: usize, scene_offset: u64) -> (Domain, bool) {
        let lib = &self.config.library;
        let target = lib.domain(self.config.scenes[scene_index].domain_index);
        let t_frames = self.config.transition_frames;
        if scene_index > 0 && t_frames > 0 && scene_offset < t_frames {
            let prev = lib.domain(self.config.scenes[scene_index - 1].domain_index);
            let t = (scene_offset + 1) as f32 / t_frames as f32;
            (prev.lerp(target, t), true)
        } else {
            (target.clone(), false)
        }
    }

    fn spawn_object(&mut self) {
        let dim = self.config.library.world().feature_dim();
        let class = self.current_domain.sample_class(&mut self.rng);
        let jitter: Vec<f32> = (0..dim)
            .map(|_| self.rng.next_gaussian_f32(0.0, 0.45))
            .collect();
        let base_appearance =
            self.current_domain
                .object_appearance(self.config.library.world(), class, &jitter);
        let size = self.rng.range_f64(0.05, 0.25) as f32;
        let bbox = BBox::new(
            self.rng.range_f64(0.0, (1.0 - size) as f64) as f32,
            self.rng.range_f64(0.0, (1.0 - size) as f64) as f32,
            size,
            size * self.rng.range_f64(0.7, 1.3) as f32,
        );
        // Speeds of a few pixels per frame in normalized units.
        let velocity = (
            self.rng.next_gaussian_f32(0.0, 0.004),
            self.rng.next_gaussian_f32(0.0, 0.004),
        );
        let ttl = 60 + self.rng.below(540) as u64; // 2 s .. 20 s at 30 fps
        self.objects.push(ActiveObject {
            track_id: self.next_track_id,
            class,
            bbox,
            velocity,
            jitter,
            base_appearance,
            ttl,
        });
        self.next_track_id += 1;
    }

    fn step_population(&mut self) {
        // Death.
        self.objects.retain_mut(|o| {
            o.ttl = o.ttl.saturating_sub(1);
            o.ttl > 0
        });
        // Birth toward the target population.
        let deficit = self.config.mean_objects - self.objects.len() as f64;
        let spawn_prob = (deficit / self.config.mean_objects.max(1.0)).clamp(0.0, 1.0) * 0.3 + 0.01;
        if self.rng.bernoulli(spawn_prob) {
            self.spawn_object();
        }
    }

    fn step_motion(&mut self) -> f32 {
        let mut total_motion = 0.0;
        for obj in &mut self.objects {
            obj.velocity.0 += self.rng.next_gaussian_f32(0.0, 0.0008);
            obj.velocity.1 += self.rng.next_gaussian_f32(0.0, 0.0008);
            obj.velocity.0 = obj.velocity.0.clamp(-0.02, 0.02);
            obj.velocity.1 = obj.velocity.1.clamp(-0.02, 0.02);
            obj.bbox = obj.bbox.translated_clamped(obj.velocity.0, obj.velocity.1);
            total_motion += (obj.velocity.0.powi(2) + obj.velocity.1.powi(2)).sqrt();
        }
        if self.objects.is_empty() {
            0.0
        } else {
            total_motion / self.objects.len() as f32
        }
    }

    fn refresh_appearances(&mut self) {
        let world = self.config.library.world().clone();
        let domain = self.current_domain.clone();
        for obj in &mut self.objects {
            obj.base_appearance = domain.object_appearance(&world, obj.class, &obj.jitter);
        }
    }

    fn make_proposals(&mut self, domain: &Domain) -> Vec<Proposal> {
        let noise = domain.noise_std();
        let mut proposals =
            Vec::with_capacity(self.objects.len() + self.config.background_proposals);
        let jitter_frac = self.config.bbox_jitter;
        let miss_rate = self.config.proposal_miss_rate;
        // Object proposals.
        for i in 0..self.objects.len() {
            if self.rng.bernoulli(miss_rate) {
                continue;
            }
            let (bbox, class, track_id, base) = {
                let o = &self.objects[i];
                (o.bbox, o.class, o.track_id, o.base_appearance.clone())
            };
            let dx = self.rng.next_gaussian_f32(0.0, jitter_frac * bbox.w);
            let dy = self.rng.next_gaussian_f32(0.0, jitter_frac * bbox.h);
            let sw = (1.0 + self.rng.next_gaussian_f32(0.0, jitter_frac)).clamp(0.6, 1.5);
            let sh = (1.0 + self.rng.next_gaussian_f32(0.0, jitter_frac)).clamp(0.6, 1.5);
            let proposal_box = BBox::new(bbox.x + dx, bbox.y + dy, bbox.w * sw, bbox.h * sh);
            let features: Vec<f32> = base
                .iter()
                .map(|&v| v + self.rng.next_gaussian_f32(0.0, noise))
                .collect();
            proposals.push(Proposal {
                bbox: proposal_box,
                features,
                true_class: Some(class),
                track_id: Some(track_id),
            });
        }
        // Background distractors.
        for _ in 0..self.config.background_proposals {
            let size = self.rng.range_f64(0.04, 0.2) as f32;
            let bbox = BBox::new(
                self.rng.range_f64(0.0, (1.0 - size) as f64) as f32,
                self.rng.range_f64(0.0, (1.0 - size) as f64) as f32,
                size,
                size,
            );
            proposals.push(Proposal {
                bbox,
                features: domain.background_appearance(&mut self.rng),
                true_class: None,
                track_id: None,
            });
        }
        self.rng.shuffle(&mut proposals);
        proposals
    }
}

impl Iterator for VideoStream {
    type Item = Frame;

    fn next(&mut self) -> Option<Frame> {
        if self.frame_index >= self.config.total_frames() {
            return None;
        }
        // Advance to the scene containing this frame.
        while self.scene_offset >= self.config.scenes[self.scene_index].frames {
            self.scene_offset -= self.config.scenes[self.scene_index].frames;
            self.scene_index += 1;
            // Scene cut: the camera segment changes, existing tracks end.
            self.objects.clear();
            for _ in 0..self.config.mean_objects.round() as usize {
                self.spawn_object();
            }
        }

        let (domain, in_transition) = self.effective_domain(self.scene_index, self.scene_offset);
        let domain_changed =
            domain.name != self.current_domain.name || in_transition || self.in_transition_last;
        self.current_domain = domain.clone();
        self.in_transition_last = in_transition;
        if domain_changed {
            self.refresh_appearances();
        }

        self.step_population();
        let motion = self.step_motion();

        let ground_truth: Vec<GroundTruthObject> = self
            .objects
            .iter()
            .map(|o| GroundTruthObject {
                track_id: o.track_id,
                class: o.class,
                bbox: o.bbox,
            })
            .collect();
        let proposals = self.make_proposals(&domain);

        let (w, h) = self.config.resolution;
        let frame = Frame {
            index: self.frame_index,
            timestamp: self.frame_index as f64 / self.config.fps as f64,
            scene_index: self.scene_index,
            domain_name: domain.name.clone(),
            ground_truth,
            proposals,
            raw_bytes: w as u64 * h as u64 * 3,
            motion_magnitude: motion,
        };

        self.frame_index += 1;
        self.scene_offset += 1;
        Some(frame)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.remaining() as usize;
        (rem, Some(rem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{Illumination, Weather};
    use crate::world::WorldConfig;

    fn two_scene_config(transition: u64) -> StreamConfig {
        let mut library = DomainLibrary::new(WorldConfig::new(3, 8, 1));
        library.generate(
            "day",
            Illumination::Day,
            Weather::Sunny,
            0.0,
            vec![3.0, 1.0, 1.0],
        );
        library.generate(
            "night",
            Illumination::Night,
            Weather::Rainy,
            0.8,
            vec![1.0, 0.2, 2.0],
        );
        StreamConfig {
            name: "test".into(),
            library,
            scenes: vec![SceneSpec::new(0, 100), SceneSpec::new(1, 100)],
            fps: 30,
            mean_objects: 5.0,
            background_proposals: 6,
            bbox_jitter: 0.12,
            proposal_miss_rate: 0.05,
            resolution: (512, 512),
            transition_frames: transition,
            seed: 7,
        }
    }

    #[test]
    fn stream_yields_exactly_total_frames() {
        let config = two_scene_config(0);
        let frames: Vec<Frame> = config.build().collect();
        assert_eq!(frames.len(), 200);
        assert_eq!(frames[0].index, 0);
        assert_eq!(frames[199].index, 199);
    }

    #[test]
    fn scene_switch_changes_domain_name() {
        let config = two_scene_config(0);
        let frames: Vec<Frame> = config.build().collect();
        assert_eq!(frames[50].domain_name, "day");
        assert_eq!(frames[150].domain_name, "night");
        assert_eq!(frames[99].scene_index, 0);
        assert_eq!(frames[100].scene_index, 1);
    }

    #[test]
    fn transition_blends_domain_names() {
        let config = two_scene_config(20);
        let frames: Vec<Frame> = config.build().collect();
        assert!(
            frames[105].domain_name.contains("->"),
            "{}",
            frames[105].domain_name
        );
        assert_eq!(frames[150].domain_name, "night");
    }

    #[test]
    fn objects_persist_across_adjacent_frames() {
        let config = two_scene_config(0);
        let frames: Vec<Frame> = config.build().take(30).collect();
        let ids_a: Vec<u64> = frames[10].ground_truth.iter().map(|o| o.track_id).collect();
        let ids_b: Vec<u64> = frames[11].ground_truth.iter().map(|o| o.track_id).collect();
        let shared = ids_a.iter().filter(|id| ids_b.contains(id)).count();
        assert!(
            shared >= ids_a.len().saturating_sub(2),
            "tracks should persist"
        );
    }

    #[test]
    fn scene_cut_resets_tracks() {
        let config = two_scene_config(0);
        let frames: Vec<Frame> = config.build().collect();
        let last_scene0: Vec<u64> = frames[99].ground_truth.iter().map(|o| o.track_id).collect();
        let first_scene1: Vec<u64> = frames[100]
            .ground_truth
            .iter()
            .map(|o| o.track_id)
            .collect();
        assert!(last_scene0.iter().all(|id| !first_scene1.contains(id)));
    }

    #[test]
    fn population_hovers_near_mean() {
        let config = two_scene_config(0);
        let frames: Vec<Frame> = config.build().collect();
        let avg = frames
            .iter()
            .skip(20)
            .map(|f| f.ground_truth.len() as f64)
            .sum::<f64>()
            / (frames.len() - 20) as f64;
        assert!((2.0..8.0).contains(&avg), "mean population {avg}");
    }

    #[test]
    fn proposals_include_objects_and_background() {
        let config = two_scene_config(0);
        let frame = config.build().nth(20).expect("frame exists");
        assert_eq!(frame.background_proposal_count(), 6);
        assert!(frame.object_proposal_count() >= 1);
    }

    #[test]
    fn object_proposals_overlap_their_ground_truth() {
        let config = two_scene_config(0);
        let frame = config.build().nth(30).expect("frame exists");
        for p in frame.proposals.iter().filter(|p| p.true_class.is_some()) {
            let gt = frame
                .ground_truth
                .iter()
                .find(|o| Some(o.track_id) == p.track_id)
                .expect("proposal references live track");
            assert!(p.bbox.iou(&gt.bbox) > 0.2, "proposal drifted too far");
        }
    }

    #[test]
    fn stream_is_deterministic() {
        let config = two_scene_config(0);
        let a: Vec<Frame> = config.build().take(50).collect();
        let b: Vec<Frame> = config.build().take(50).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let config = two_scene_config(0);
        let a: Vec<Frame> = config.clone().with_seed(1).build().take(20).collect();
        let b: Vec<Frame> = config.with_seed(2).build().take(20).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn with_total_frames_rescales() {
        let config = two_scene_config(0).with_total_frames(50);
        assert_eq!(config.total_frames(), 50);
        let frames: Vec<Frame> = config.build().collect();
        assert_eq!(frames.len(), 50);
        // Both scenes survive the rescale.
        assert!(frames.iter().any(|f| f.scene_index == 1));
    }

    #[test]
    fn size_hint_is_exact() {
        let config = two_scene_config(0);
        let mut stream = config.build();
        assert_eq!(stream.size_hint(), (200, Some(200)));
        stream.next();
        assert_eq!(stream.size_hint(), (199, Some(199)));
    }
}
