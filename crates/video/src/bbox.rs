//! Axis-aligned bounding boxes in normalized image coordinates.

use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box with its top-left corner at `(x, y)`, in
/// normalized coordinates (`0.0..=1.0` spans the image).
///
/// # Examples
///
/// ```
/// use shoggoth_video::BBox;
///
/// let a = BBox::new(0.0, 0.0, 0.5, 0.5);
/// let b = BBox::new(0.25, 0.25, 0.5, 0.5);
/// let iou = a.iou(&b);
/// assert!((iou - 1.0 / 7.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    /// Left edge.
    pub x: f32,
    /// Top edge.
    pub y: f32,
    /// Width (non-negative).
    pub w: f32,
    /// Height (non-negative).
    pub h: f32,
}

impl BBox {
    /// Creates a box; negative sizes are clamped to zero.
    pub fn new(x: f32, y: f32, w: f32, h: f32) -> Self {
        Self {
            x,
            y,
            w: w.max(0.0),
            h: h.max(0.0),
        }
    }

    /// Area of the box.
    pub fn area(&self) -> f32 {
        self.w * self.h
    }

    /// Center point `(cx, cy)`.
    pub fn center(&self) -> (f32, f32) {
        (self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Intersection area with another box.
    pub fn intersection(&self, other: &BBox) -> f32 {
        let x1 = self.x.max(other.x);
        let y1 = self.y.max(other.y);
        let x2 = (self.x + self.w).min(other.x + other.w);
        let y2 = (self.y + self.h).min(other.y + other.h);
        (x2 - x1).max(0.0) * (y2 - y1).max(0.0)
    }

    /// Intersection-over-union with another box, in `[0, 1]`.
    ///
    /// Returns `0.0` when the union is empty (both boxes degenerate).
    pub fn iou(&self, other: &BBox) -> f32 {
        let inter = self.intersection(other);
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Returns a copy translated by `(dx, dy)` and clamped so the box stays
    /// within the unit image.
    pub fn translated_clamped(&self, dx: f32, dy: f32) -> BBox {
        let w = self.w.min(1.0);
        let h = self.h.min(1.0);
        BBox {
            x: (self.x + dx).clamp(0.0, 1.0 - w),
            y: (self.y + dy).clamp(0.0, 1.0 - h),
            w,
            h,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_boxes_have_iou_one() {
        let b = BBox::new(0.1, 0.2, 0.3, 0.4);
        assert!((b.iou(&b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn disjoint_boxes_have_iou_zero() {
        let a = BBox::new(0.0, 0.0, 0.2, 0.2);
        let b = BBox::new(0.5, 0.5, 0.2, 0.2);
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn iou_is_symmetric() {
        let a = BBox::new(0.0, 0.0, 0.5, 0.5);
        let b = BBox::new(0.1, 0.1, 0.5, 0.5);
        assert_eq!(a.iou(&b), b.iou(&a));
    }

    #[test]
    fn half_overlap_hand_checked() {
        // Two 1x1 boxes offset by half in one axis: inter 0.5, union 1.5.
        let a = BBox::new(0.0, 0.0, 1.0, 1.0);
        let b = BBox::new(0.5, 0.0, 1.0, 1.0);
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_boxes_do_not_divide_by_zero() {
        let a = BBox::new(0.3, 0.3, 0.0, 0.0);
        assert_eq!(a.iou(&a), 0.0);
    }

    #[test]
    fn negative_size_clamped() {
        let b = BBox::new(0.0, 0.0, -1.0, 0.5);
        assert_eq!(b.w, 0.0);
        assert_eq!(b.area(), 0.0);
    }

    #[test]
    fn translation_keeps_box_in_image() {
        let b = BBox::new(0.9, 0.9, 0.2, 0.2);
        let t = b.translated_clamped(0.5, 0.5);
        assert!(t.x + t.w <= 1.0 + 1e-6);
        assert!(t.y + t.h <= 1.0 + 1e-6);
    }

    #[test]
    fn center_hand_checked() {
        let b = BBox::new(0.2, 0.4, 0.2, 0.2);
        let (cx, cy) = b.center();
        assert!((cx - 0.3).abs() < 1e-6);
        assert!((cy - 0.5).abs() < 1e-6);
    }
}
