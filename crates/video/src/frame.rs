//! Frames, ground-truth objects, and region proposals.

use crate::{BBox, ClassId};

/// A ground-truth object present in a frame.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruthObject {
    /// Stream-unique identifier (stable across the object's lifetime).
    pub track_id: u64,
    /// The object's true class.
    pub class: ClassId,
    /// The object's true bounding box.
    pub bbox: BBox,
}

/// A region proposal a detector classifies.
///
/// Detectors never see `true_class`; it exists so the evaluation can score
/// detections and so the replay buffer can be audited in tests.
#[derive(Debug, Clone, PartialEq)]
pub struct Proposal {
    /// Proposed bounding box (jittered off the true box for objects).
    pub bbox: BBox,
    /// Latent appearance features the detector observes.
    pub features: Vec<f32>,
    /// Ground truth: `Some(class)` for a true-object proposal, `None` for a
    /// background distractor. Hidden from detectors.
    pub true_class: Option<ClassId>,
    /// Track id of the underlying object, if any.
    pub track_id: Option<u64>,
}

/// One video frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Zero-based frame index within the stream.
    pub index: u64,
    /// Presentation time in seconds (index / fps).
    pub timestamp: f64,
    /// Index of the scene this frame belongs to.
    pub scene_index: usize,
    /// Name of the active domain (for diagnostics).
    pub domain_name: String,
    /// Ground-truth objects visible in the frame.
    pub ground_truth: Vec<GroundTruthObject>,
    /// Region proposals (objects + background distractors), shuffled.
    pub proposals: Vec<Proposal>,
    /// Uncompressed frame size in bytes (resolution-dependent); the codec
    /// model in `shoggoth-net` compresses from this base.
    pub raw_bytes: u64,
    /// Mean inter-frame motion of tracked objects since the previous frame,
    /// in normalized image units (drives codec compressibility).
    pub motion_magnitude: f32,
}

impl Frame {
    /// Ground-truth class ids in this frame (one per object).
    pub fn ground_truth_classes(&self) -> Vec<ClassId> {
        self.ground_truth.iter().map(|o| o.class).collect()
    }

    /// Number of true-object proposals.
    pub fn object_proposal_count(&self) -> usize {
        self.proposals
            .iter()
            .filter(|p| p.true_class.is_some())
            .count()
    }

    /// Number of background proposals.
    pub fn background_proposal_count(&self) -> usize {
        self.proposals.len() - self.object_proposal_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_with(classes: &[Option<ClassId>]) -> Frame {
        Frame {
            index: 0,
            timestamp: 0.0,
            scene_index: 0,
            domain_name: "test".into(),
            ground_truth: classes
                .iter()
                .flatten()
                .enumerate()
                .map(|(i, &c)| GroundTruthObject {
                    track_id: i as u64,
                    class: c,
                    bbox: BBox::new(0.0, 0.0, 0.1, 0.1),
                })
                .collect(),
            proposals: classes
                .iter()
                .map(|&c| Proposal {
                    bbox: BBox::new(0.0, 0.0, 0.1, 0.1),
                    features: vec![0.0; 4],
                    true_class: c,
                    track_id: None,
                })
                .collect(),
            raw_bytes: 1000,
            motion_magnitude: 0.0,
        }
    }

    #[test]
    fn proposal_counts_split_by_kind() {
        let f = frame_with(&[Some(0), None, Some(1), None, None]);
        assert_eq!(f.object_proposal_count(), 2);
        assert_eq!(f.background_proposal_count(), 3);
        assert_eq!(f.ground_truth_classes(), vec![0, 1]);
    }
}
