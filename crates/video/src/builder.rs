//! A fluent builder for custom stream scenarios.
//!
//! The presets cover the paper's three benchmarks; real deployments want
//! their own drift scripts. [`StreamBuilder`] lets users declare domains
//! by name, chain scenes, and get a validated [`StreamConfig`]:
//!
//! ```
//! use shoggoth_video::builder::StreamBuilder;
//! use shoggoth_video::{Illumination, Weather, WorldConfig};
//!
//! let config = StreamBuilder::new("toll-plaza", WorldConfig::new(2, 16, 9))
//!     .domain("day", Illumination::Day, Weather::Sunny, 0.0, vec![3.0, 1.0])
//!     .domain("storm", Illumination::Dusk, Weather::Rainy, 0.7, vec![2.0, 1.5])
//!     .scene("day", 600)
//!     .scene("storm", 900)
//!     .scene("day", 600)
//!     .mean_objects(5.0)
//!     .transition_frames(45)
//!     .build()?;
//! assert_eq!(config.total_frames(), 2100);
//! # Ok::<(), shoggoth_video::builder::BuildStreamError>(())
//! ```

use crate::domain::{DomainLibrary, Illumination, Weather};
use crate::stream::{SceneSpec, StreamConfig};
use crate::world::WorldConfig;

/// Errors from assembling a custom stream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildStreamError {
    /// A scene referenced a domain name that was never declared.
    UnknownDomain {
        /// The undeclared name.
        name: String,
    },
    /// The same domain name was declared twice.
    DuplicateDomain {
        /// The repeated name.
        name: String,
    },
    /// No scenes were declared.
    NoScenes,
    /// A scene had zero frames.
    EmptyScene {
        /// Index of the offending scene.
        index: usize,
    },
}

impl std::fmt::Display for BuildStreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildStreamError::UnknownDomain { name } => {
                write!(f, "scene references undeclared domain \"{name}\"")
            }
            BuildStreamError::DuplicateDomain { name } => {
                write!(f, "domain \"{name}\" declared twice")
            }
            BuildStreamError::NoScenes => write!(f, "stream has no scenes"),
            BuildStreamError::EmptyScene { index } => {
                write!(f, "scene {index} has zero frames")
            }
        }
    }
}

impl std::error::Error for BuildStreamError {}

/// Fluent builder producing a validated [`StreamConfig`].
#[derive(Debug, Clone)]
pub struct StreamBuilder {
    name: String,
    library: DomainLibrary,
    domain_names: Vec<String>,
    scenes: Vec<(String, u64)>,
    fps: u32,
    mean_objects: f64,
    background_proposals: usize,
    bbox_jitter: f32,
    proposal_miss_rate: f64,
    resolution: (u32, u32),
    transition_frames: u64,
    seed: u64,
}

impl StreamBuilder {
    /// Starts a builder over a fresh feature world.
    pub fn new(name: &str, world: WorldConfig) -> Self {
        let seed = world.seed;
        Self {
            name: name.to_owned(),
            library: DomainLibrary::new(world),
            domain_names: Vec::new(),
            scenes: Vec::new(),
            fps: 30,
            mean_objects: 5.0,
            background_proposals: 6,
            bbox_jitter: 0.12,
            proposal_miss_rate: 0.06,
            resolution: (512, 512),
            transition_frames: 60,
            seed,
        }
    }

    /// Declares a domain (order matters: the first declared domain is the
    /// pre-training source by the workspace convention).
    ///
    /// # Panics
    ///
    /// Panics if `class_mix` length or `severity` are invalid (see
    /// [`DomainLibrary::generate`]). Duplicate names are reported at
    /// [`build`](Self::build) time.
    pub fn domain(
        mut self,
        name: &str,
        illumination: Illumination,
        weather: Weather,
        severity: f32,
        class_mix: Vec<f64>,
    ) -> Self {
        self.library
            .generate(name, illumination, weather, severity, class_mix);
        self.domain_names.push(name.to_owned());
        self
    }

    /// Appends a scene playing `frames` frames of the named domain.
    pub fn scene(mut self, domain: &str, frames: u64) -> Self {
        self.scenes.push((domain.to_owned(), frames));
        self
    }

    /// Sets the playback rate (default 30 fps).
    pub fn fps(mut self, fps: u32) -> Self {
        self.fps = fps;
        self
    }

    /// Sets the expected concurrent object count (default 5).
    pub fn mean_objects(mut self, mean: f64) -> Self {
        self.mean_objects = mean;
        self
    }

    /// Sets the background distractors per frame (default 6).
    pub fn background_proposals(mut self, count: usize) -> Self {
        self.background_proposals = count;
        self
    }

    /// Sets the proposal-box jitter fraction (default 0.12).
    pub fn bbox_jitter(mut self, jitter: f32) -> Self {
        self.bbox_jitter = jitter;
        self
    }

    /// Sets the per-frame proposal miss probability (default 0.06).
    pub fn proposal_miss_rate(mut self, rate: f64) -> Self {
        self.proposal_miss_rate = rate;
        self
    }

    /// Sets the frame resolution (default 512×512).
    pub fn resolution(mut self, width: u32, height: u32) -> Self {
        self.resolution = (width, height);
        self
    }

    /// Sets the gradual-transition length at scene switches (default 60).
    pub fn transition_frames(mut self, frames: u64) -> Self {
        self.transition_frames = frames;
        self
    }

    /// Sets the stream seed (defaults to the world seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildStreamError`] if a scene references an undeclared
    /// domain, a domain name repeats, no scene was declared, or a scene is
    /// empty.
    pub fn build(self) -> Result<StreamConfig, BuildStreamError> {
        for (i, name) in self.domain_names.iter().enumerate() {
            if self.domain_names[..i].contains(name) {
                return Err(BuildStreamError::DuplicateDomain { name: name.clone() });
            }
        }
        if self.scenes.is_empty() {
            return Err(BuildStreamError::NoScenes);
        }
        let mut scenes = Vec::with_capacity(self.scenes.len());
        for (index, (name, frames)) in self.scenes.iter().enumerate() {
            let domain_index = self
                .domain_names
                .iter()
                .position(|n| n == name)
                .ok_or_else(|| BuildStreamError::UnknownDomain { name: name.clone() })?;
            if *frames == 0 {
                return Err(BuildStreamError::EmptyScene { index });
            }
            scenes.push(SceneSpec::new(domain_index, *frames));
        }
        Ok(StreamConfig {
            name: self.name,
            library: self.library,
            scenes,
            fps: self.fps,
            mean_objects: self.mean_objects,
            background_proposals: self.background_proposals,
            bbox_jitter: self.bbox_jitter,
            proposal_miss_rate: self.proposal_miss_rate,
            resolution: self.resolution,
            transition_frames: self.transition_frames,
            seed: self.seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> StreamBuilder {
        StreamBuilder::new("test", WorldConfig::new(2, 8, 1))
            .domain("a", Illumination::Day, Weather::Sunny, 0.0, vec![1.0, 1.0])
            .domain(
                "b",
                Illumination::Night,
                Weather::Rainy,
                0.8,
                vec![1.0, 0.5],
            )
    }

    #[test]
    fn valid_scenario_builds_and_plays() {
        let config = base()
            .scene("a", 50)
            .scene("b", 50)
            .mean_objects(3.0)
            .build()
            .expect("valid scenario");
        assert_eq!(config.total_frames(), 100);
        let frames: Vec<_> = config.build().collect();
        assert_eq!(frames.len(), 100);
        assert_eq!(frames[0].domain_name, "a");
    }

    #[test]
    fn unknown_domain_is_rejected() {
        let err = base().scene("zzz", 10).build().expect_err("must fail");
        assert_eq!(err, BuildStreamError::UnknownDomain { name: "zzz".into() });
        assert!(err.to_string().contains("zzz"));
    }

    #[test]
    fn duplicate_domain_is_rejected() {
        let err = base()
            .domain("a", Illumination::Day, Weather::Cloudy, 0.1, vec![1.0, 1.0])
            .scene("a", 10)
            .build()
            .expect_err("must fail");
        assert_eq!(err, BuildStreamError::DuplicateDomain { name: "a".into() });
    }

    #[test]
    fn empty_scenario_is_rejected() {
        assert_eq!(
            base().build().expect_err("must fail"),
            BuildStreamError::NoScenes
        );
    }

    #[test]
    fn zero_length_scene_is_rejected() {
        let err = base()
            .scene("a", 10)
            .scene("b", 0)
            .build()
            .expect_err("must fail");
        assert_eq!(err, BuildStreamError::EmptyScene { index: 1 });
    }

    #[test]
    fn builder_settings_propagate() {
        let config = base()
            .scene("a", 10)
            .fps(15)
            .background_proposals(9)
            .bbox_jitter(0.2)
            .proposal_miss_rate(0.5)
            .resolution(256, 128)
            .transition_frames(5)
            .seed(42)
            .build()
            .expect("valid scenario");
        assert_eq!(config.fps, 15);
        assert_eq!(config.background_proposals, 9);
        assert_eq!(config.resolution, (256, 128));
        assert_eq!(config.seed, 42);
    }
}
