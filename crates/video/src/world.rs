//! The latent feature space shared by streams, domains and detectors.
//!
//! Real detectors see pixels; our substitute detectors see points in a
//! `feature_dim`-dimensional latent space. Each object class has a fixed
//! *prototype* vector; a domain transforms prototypes with its own mixing
//! matrix, shift and contrast (appearance change), and adds
//! illumination-dependent noise (the paper's "objects at night are difficult
//! to distinguish"). Because the prototypes are fixed per world seed, the
//! teacher model, the student model and every stream built from the same
//! [`WorldConfig`] agree on what a "car" looks like.

use crate::ClassId;
use serde::{Deserialize, Serialize};
use shoggoth_util::Rng;

/// Configuration of a feature world.
///
/// # Examples
///
/// ```
/// use shoggoth_video::{FeatureWorld, WorldConfig};
///
/// let world = FeatureWorld::new(&WorldConfig::new(4, 16, 7));
/// assert_eq!(world.num_classes(), 4);
/// assert_eq!(world.prototype(0).len(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Number of foreground object classes.
    pub num_classes: usize,
    /// Dimensionality of the latent feature space.
    pub feature_dim: usize,
    /// Seed fixing the class prototypes.
    pub seed: u64,
}

impl WorldConfig {
    /// Creates a world configuration.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes == 0` or `feature_dim == 0`.
    pub fn new(num_classes: usize, feature_dim: usize, seed: u64) -> Self {
        assert!(num_classes > 0, "need at least one class");
        assert!(feature_dim > 0, "need at least one feature dimension");
        Self {
            num_classes,
            feature_dim,
            seed,
        }
    }
}

/// Fixed class prototypes in latent feature space.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureWorld {
    config: WorldConfig,
    prototypes: Vec<Vec<f32>>,
}

impl FeatureWorld {
    /// Generates the prototypes for a configuration.
    ///
    /// Prototypes are drawn once from an isotropic Gaussian and rescaled to
    /// a common norm, so classes are roughly equidistant and no class is
    /// trivially separable by magnitude alone.
    pub fn new(config: &WorldConfig) -> Self {
        let mut rng = Rng::seed_from(config.seed ^ 0x5747_4f52_4c44); // "WORLD"
        let mut prototypes = Vec::with_capacity(config.num_classes);
        for _ in 0..config.num_classes {
            let mut proto: Vec<f32> = (0..config.feature_dim)
                .map(|_| rng.next_gaussian_f32(0.0, 1.0))
                .collect();
            let norm = proto.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
            // Common norm 2.0: far enough apart to be learnable, close
            // enough that domain noise creates genuine confusion.
            for v in &mut proto {
                *v *= 2.0 / norm;
            }
            prototypes.push(proto);
        }
        Self {
            config: config.clone(),
            prototypes,
        }
    }

    /// The configuration this world was built from.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// Number of foreground classes.
    pub fn num_classes(&self) -> usize {
        self.config.num_classes
    }

    /// Latent feature dimensionality.
    pub fn feature_dim(&self) -> usize {
        self.config.feature_dim
    }

    /// The prototype vector of a class.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn prototype(&self, class: ClassId) -> &[f32] {
        &self.prototypes[class]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototypes_are_deterministic_per_seed() {
        let cfg = WorldConfig::new(3, 8, 11);
        let a = FeatureWorld::new(&cfg);
        let b = FeatureWorld::new(&cfg);
        assert_eq!(a, b);
        let c = FeatureWorld::new(&WorldConfig::new(3, 8, 12));
        assert_ne!(a, c);
    }

    #[test]
    fn prototypes_have_common_norm() {
        let world = FeatureWorld::new(&WorldConfig::new(5, 32, 0));
        for c in 0..5 {
            let norm = world.prototype(c).iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((norm - 2.0).abs() < 1e-4, "class {c} norm {norm}");
        }
    }

    #[test]
    fn prototypes_are_distinct() {
        let world = FeatureWorld::new(&WorldConfig::new(4, 32, 1));
        for a in 0..4 {
            for b in (a + 1)..4 {
                let dist: f32 = world
                    .prototype(a)
                    .iter()
                    .zip(world.prototype(b))
                    .map(|(x, y)| (x - y).powi(2))
                    .sum::<f32>()
                    .sqrt();
                assert!(dist > 0.5, "classes {a} and {b} nearly collide: {dist}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "need at least one class")]
    fn zero_classes_rejected() {
        WorldConfig::new(0, 8, 0);
    }
}
