//! Synthetic drifting video streams — the data substrate of the
//! reproduction.
//!
//! The paper evaluates on UA-DETRAC, KITTI and Waymo Open video with
//! changing weather and illumination. Those datasets (and the pixels
//! themselves) are unavailable here, so this crate generates the *structure*
//! that matters to the system under test:
//!
//! * **Domains** ([`Domain`]) — a weather/illumination condition with its
//!   own class mix (the paper's Fig. 1(c) class-distribution shift) and its
//!   own appearance transform over a latent feature space (the paper's
//!   Fig. 1(b) appearance shift).
//! * **Scenes and streams** ([`StreamConfig`], [`VideoStream`]) — a stream
//!   is a chronological chain of scenes; objects persist and move within a
//!   scene, so nearby frames are strongly correlated while the long-run
//!   distribution drifts.
//! * **Frames and proposals** ([`Frame`], [`Proposal`]) — each frame carries
//!   ground-truth objects plus region proposals (true-object proposals with
//!   jittered boxes, and background distractors). Detectors classify
//!   proposals; evaluation matches detections against ground truth.
//!
//! Three presets ([`presets::detrac`], [`presets::kitti`],
//! [`presets::waymo`]) mirror the scale, class counts and drift tempo of the
//! paper's datasets.
//!
//! # Examples
//!
//! ```
//! use shoggoth_video::presets;
//!
//! let config = presets::detrac(42).with_total_frames(600);
//! let frames: Vec<_> = config.build().collect();
//! assert_eq!(frames.len(), 600);
//! assert!(frames[0].proposals.iter().any(|p| p.true_class.is_some()));
//! ```

pub mod bbox;
pub mod builder;
pub mod domain;
pub mod frame;
pub mod presets;
pub mod stream;
pub mod world;

pub use bbox::BBox;
pub use builder::StreamBuilder;
pub use domain::{Domain, DomainLibrary, Illumination, Weather};
pub use frame::{Frame, GroundTruthObject, Proposal};
pub use stream::{SceneSpec, StreamConfig, VideoStream};
pub use world::{FeatureWorld, WorldConfig};

/// Identifier of an object class within a stream's world.
pub type ClassId = usize;
