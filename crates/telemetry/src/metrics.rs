//! Counters and fixed-bucket histograms aggregated from the event stream.

use serde::Serialize;

/// Monotone event counters maintained by the ring recorder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct TelemetryCounters {
    /// Frames played (one `FrameStatus` each).
    pub frames: u64,
    /// Frames sampled into upload chunks.
    pub frames_sampled: u64,
    /// Sampling instants skipped while half-open.
    pub samples_skipped: u64,
    /// Chunks transmitted on the uplink (probes and retransmits
    /// included).
    pub chunks_uploaded: u64,
    /// Of those, half-open probe chunks.
    pub probe_uploads: u64,
    /// Of those, retransmits (attempt > 1).
    pub retransmits: u64,
    /// Transmitted chunks the link lost (any fault).
    pub uploads_lost: u64,
    /// Full chunks discarded because the breaker was open.
    pub uploads_suppressed: u64,
    /// In-flight uploads that passed their deadline.
    pub upload_timeouts: u64,
    /// Circuit-breaker state changes.
    pub breaker_transitions: u64,
    /// Label batches delivered back to the edge.
    pub label_batches: u64,
    /// Labeled samples pooled from those batches.
    pub labeled_samples: u64,
    /// Label batches the cloud dropped.
    pub cloud_label_drops: u64,
    /// Label batches the cloud returned late.
    pub slow_label_batches: u64,
    /// Completed adaptive-training sessions.
    pub adaptation_steps: u64,
    /// Controller rate decisions.
    pub rate_decisions: u64,
}

/// A fixed-bucket histogram: `bounds` are ascending inclusive upper
/// edges, and one extra overflow bucket catches everything above the last
/// edge (non-finite samples land there too), so bucket counts always sum
/// to the number of recorded samples.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates a histogram over ascending inclusive upper edges. One
    /// overflow bucket is appended internally.
    pub fn new(bounds: &[f64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample. Finite samples update the running mean/min/max;
    /// samples above the last edge (or non-finite) count in the overflow
    /// bucket.
    pub fn record(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        if value.is_finite() {
            self.sum += value;
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
    }

    /// Total samples recorded (always the sum of the bucket counts).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The configured upper edges (without the overflow bucket).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Freezes the histogram into its summary form.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.total();
        let buckets = self
            .bounds
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.counts.iter().copied())
            .collect();
        HistogramSummary {
            count,
            mean: if count == 0 {
                0.0
            } else {
                self.sum / count as f64
            },
            min: if count == 0 { 0.0 } else { self.min },
            max: if count == 0 { 0.0 } else { self.max },
            buckets,
        }
    }
}

/// Immutable snapshot of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Mean of the finite samples (`0` when empty).
    pub mean: f64,
    /// Smallest finite sample (`0` when empty).
    pub min: f64,
    /// Largest finite sample (`0` when empty).
    pub max: f64,
    /// `(inclusive upper edge, count)` pairs; the final edge is
    /// `f64::INFINITY` (the overflow bucket).
    pub buckets: Vec<(f64, u64)>,
}

/// Aggregated telemetry of one run, attached to the simulation report.
///
/// Purely observational: the engine's behavior and every other report
/// field are bit-identical whether or not a summary was collected, which
/// is why the report's equality deliberately ignores it.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TelemetrySummary {
    /// Events offered to the recorder.
    pub events_recorded: u64,
    /// Events the bounded ring evicted (oldest first).
    pub events_dropped: u64,
    /// Monotone event counters.
    pub counters: TelemetryCounters,
    /// Per-frame inference latency in milliseconds (1000 / achieved FPS).
    pub frame_latency_ms: HistogramSummary,
    /// Retransmit-queue depth sampled per frame.
    pub queue_depth: HistogramSummary,
    /// Absolute per-frame mAP@0.5 change between consecutive frames.
    pub map_delta: HistogramSummary,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_real_line() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 3.0, 9.0, f64::NAN, f64::INFINITY] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 3], "1.0 is inclusive in bucket 0");
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn summary_statistics_cover_finite_samples() {
        let mut h = Histogram::new(&[10.0]);
        h.record(2.0);
        h.record(6.0);
        h.record(f64::NAN);
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert!((s.mean - 8.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        assert_eq!(s.buckets.len(), 2);
        assert_eq!(s.buckets[1].0, f64::INFINITY);
    }

    #[test]
    fn empty_histogram_summarizes_to_zeros() {
        let s = Histogram::new(&[1.0]).summary();
        assert_eq!((s.count, s.mean, s.min, s.max), (0, 0.0, 0.0, 0.0));
    }
}
