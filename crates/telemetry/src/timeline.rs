//! Self-contained HTML/SVG timeline report of one recorded run.
//!
//! Four lanes over simulation time: sampling rate, per-frame accuracy
//! (raw and smoothed), cumulative uplink bytes, and the circuit breaker's
//! state band with event markers (adaptation steps, upload timeouts).
//! The renderer is deterministic string building — same records, same
//! bytes out — and the output opens in any browser with no external
//! assets.

use crate::event::{BreakerPhase, Event, Record};

const WIDTH: f64 = 960.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 20.0;
const LANE_H: f64 = 96.0;
const LANE_GAP: f64 = 40.0;
const TOP: f64 = 28.0;
/// Maximum polyline points per lane; longer series are strided down.
const MAX_POINTS: usize = 1200;

/// One per-frame status sample extracted from the stream.
struct StatusPoint {
    secs: f64,
    map: f64,
    rate: f64,
    uplink_mb: f64,
    breaker: BreakerPhase,
}

fn phase_color(phase: BreakerPhase) -> &'static str {
    match phase {
        BreakerPhase::Closed => "#2a9d4a",
        BreakerPhase::Open => "#d33a3a",
        BreakerPhase::HalfOpen => "#e6a817",
    }
}

fn downsample<T>(points: &[T]) -> Vec<&T> {
    let stride = points.len().div_ceil(MAX_POINTS).max(1);
    points.iter().step_by(stride).collect()
}

/// Renders a polyline for `(secs, value)` pairs inside a lane box.
fn polyline(
    points: &[(f64, f64)],
    x_of: impl Fn(f64) -> f64,
    lane_top: f64,
    vmin: f64,
    vmax: f64,
    color: &str,
    stroke_width: f64,
) -> String {
    if points.is_empty() {
        return String::new();
    }
    let span = (vmax - vmin).max(1e-12);
    let mut path = String::with_capacity(points.len() * 12);
    for (secs, v) in points {
        let x = x_of(*secs);
        let y = lane_top + LANE_H - (v.clamp(vmin, vmax) - vmin) / span * LANE_H;
        path.push_str(&format!("{x:.1},{y:.1} "));
    }
    format!(
        "<polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"{stroke_width}\" \
         points=\"{}\"/>\n",
        path.trim_end()
    )
}

/// Lane frame: border box, title, and min/max value labels.
fn lane_frame(lane_top: f64, title: &str, vmin: f64, vmax: f64) -> String {
    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    format!(
        "<rect x=\"{MARGIN_L}\" y=\"{lane_top}\" width=\"{plot_w}\" height=\"{LANE_H}\" \
         fill=\"#fafafa\" stroke=\"#ccc\"/>\n\
         <text x=\"{MARGIN_L}\" y=\"{:.1}\" class=\"lane\">{title}</text>\n\
         <text x=\"{:.1}\" y=\"{:.1}\" class=\"tick\" text-anchor=\"end\">{vmax:.2}</text>\n\
         <text x=\"{:.1}\" y=\"{:.1}\" class=\"tick\" text-anchor=\"end\">{vmin:.2}</text>\n",
        lane_top - 8.0,
        MARGIN_L - 6.0,
        lane_top + 10.0,
        MARGIN_L - 6.0,
        lane_top + LANE_H - 2.0,
    )
}

/// Renders the full report for a recorded event stream.
///
/// Returns a complete HTML document; callers write it to disk. A stream
/// with no `FrameStatus` events renders an explanatory placeholder.
pub fn render_timeline(title: &str, records: &[Record]) -> String {
    let statuses: Vec<StatusPoint> = records
        .iter()
        .filter_map(|r| match r.event {
            Event::FrameStatus {
                map,
                sampling_rate,
                uplink_bytes,
                breaker,
                ..
            } => Some(StatusPoint {
                secs: r.stamp.sim_secs,
                map,
                rate: sampling_rate,
                uplink_mb: uplink_bytes as f64 / (1024.0 * 1024.0),
                breaker,
            }),
            _ => None,
        })
        .collect();

    let mut body = String::new();
    if statuses.is_empty() {
        body.push_str(
            "<p>No <code>frame_status</code> events were recorded; nothing to plot. \
                       Run the simulation with a <code>RingRecorder</code> attached.</p>\n",
        );
        return page(title, 0, &body);
    }

    let t_min = statuses[0].secs;
    let t_max = statuses[statuses.len() - 1].secs.max(t_min + 1e-9);
    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let x_of = |secs: f64| MARGIN_L + (secs - t_min) / (t_max - t_min) * plot_w;

    let sampled = downsample(&statuses);
    let mut svg = String::new();

    // Lane 1: sampling rate.
    let lane1 = TOP;
    let rate_max = statuses.iter().map(|s| s.rate).fold(0.0, f64::max).max(0.1);
    svg.push_str(&lane_frame(lane1, "sampling rate (fps)", 0.0, rate_max));
    let rate_pts: Vec<(f64, f64)> = sampled.iter().map(|s| (s.secs, s.rate)).collect();
    svg.push_str(&polyline(
        &rate_pts, x_of, lane1, 0.0, rate_max, "#1f6fb5", 1.5,
    ));

    // Lane 2: accuracy, raw (light) and 30-frame trailing mean (dark).
    let lane2 = TOP + (LANE_H + LANE_GAP);
    svg.push_str(&lane_frame(lane2, "accuracy (per-frame mAP@0.5)", 0.0, 1.0));
    let raw_pts: Vec<(f64, f64)> = sampled.iter().map(|s| (s.secs, s.map)).collect();
    svg.push_str(&polyline(&raw_pts, x_of, lane2, 0.0, 1.0, "#c9b6e4", 1.0));
    let mut smooth = Vec::with_capacity(statuses.len());
    let mut window_sum = 0.0;
    for (i, s) in statuses.iter().enumerate() {
        window_sum += s.map;
        if i >= 30 {
            window_sum -= statuses[i - 30].map;
        }
        smooth.push((s.secs, window_sum / (i.min(29) + 1) as f64));
    }
    let smooth_pts: Vec<(f64, f64)> = downsample(&smooth).into_iter().copied().collect();
    svg.push_str(&polyline(
        &smooth_pts,
        x_of,
        lane2,
        0.0,
        1.0,
        "#5b2d8f",
        1.8,
    ));

    // Lane 3: cumulative uplink megabytes.
    let lane3 = TOP + 2.0 * (LANE_H + LANE_GAP);
    let mb_max = statuses
        .iter()
        .map(|s| s.uplink_mb)
        .fold(0.0, f64::max)
        .max(1e-6);
    svg.push_str(&lane_frame(lane3, "uplink (MB cumulative)", 0.0, mb_max));
    let mb_pts: Vec<(f64, f64)> = sampled.iter().map(|s| (s.secs, s.uplink_mb)).collect();
    svg.push_str(&polyline(&mb_pts, x_of, lane3, 0.0, mb_max, "#b5541f", 1.5));

    // Lane 4: breaker-state band plus event markers.
    let lane4 = TOP + 3.0 * (LANE_H + LANE_GAP);
    svg.push_str(&format!(
        "<text x=\"{MARGIN_L}\" y=\"{:.1}\" class=\"lane\">breaker state · \
         <tspan fill=\"#2a9d4a\">closed</tspan> / <tspan fill=\"#d33a3a\">open</tspan> / \
         <tspan fill=\"#e6a817\">half-open</tspan> · markers: \
         <tspan fill=\"#1f6fb5\">▲ adaptation</tspan> \
         <tspan fill=\"#d33a3a\">│ timeout</tspan></text>\n",
        lane4 - 8.0
    ));
    let band_h = 34.0;
    let mut seg_start = statuses[0].secs;
    let mut seg_phase = statuses[0].breaker;
    let flush = |svg: &mut String, start: f64, end: f64, phase: BreakerPhase| {
        let x0 = x_of(start);
        let x1 = x_of(end).max(x0 + 0.5);
        svg.push_str(&format!(
            "<rect x=\"{x0:.1}\" y=\"{lane4}\" width=\"{:.1}\" height=\"{band_h}\" \
             fill=\"{}\"/>\n",
            x1 - x0,
            phase_color(phase)
        ));
    };
    for s in &statuses {
        if s.breaker != seg_phase {
            flush(&mut svg, seg_start, s.secs, seg_phase);
            seg_start = s.secs;
            seg_phase = s.breaker;
        }
    }
    flush(&mut svg, seg_start, t_max, seg_phase);
    let marker_y = lane4 + band_h + 4.0;
    for r in records {
        match r.event {
            Event::AdaptationStep { .. } => {
                let x = x_of(r.stamp.sim_secs);
                svg.push_str(&format!(
                    "<path d=\"M {x:.1} {marker_y} l 4 8 l -8 0 z\" fill=\"#1f6fb5\"/>\n"
                ));
            }
            Event::UploadTimedOut { .. } => {
                let x = x_of(r.stamp.sim_secs);
                svg.push_str(&format!(
                    "<line x1=\"{x:.1}\" y1=\"{:.1}\" x2=\"{x:.1}\" y2=\"{:.1}\" \
                     stroke=\"#d33a3a\" stroke-width=\"1\"/>\n",
                    marker_y + 12.0,
                    marker_y + 24.0
                ));
            }
            _ => {}
        }
    }

    // Shared time axis.
    let axis_y = lane4 + band_h + 30.0;
    svg.push_str(&format!(
        "<line x1=\"{MARGIN_L}\" y1=\"{axis_y}\" x2=\"{:.1}\" y2=\"{axis_y}\" stroke=\"#888\"/>\n",
        WIDTH - MARGIN_R
    ));
    for i in 0..=6 {
        let secs = t_min + (t_max - t_min) * f64::from(i) / 6.0;
        let x = x_of(secs);
        svg.push_str(&format!(
            "<line x1=\"{x:.1}\" y1=\"{axis_y}\" x2=\"{x:.1}\" y2=\"{:.1}\" stroke=\"#888\"/>\n\
             <text x=\"{x:.1}\" y=\"{:.1}\" class=\"tick\" text-anchor=\"middle\">{secs:.0} s</text>\n",
            axis_y + 5.0,
            axis_y + 18.0
        ));
    }

    let height = axis_y + 30.0;
    body.push_str(&format!(
        "<svg viewBox=\"0 0 {WIDTH} {height:.0}\" width=\"{WIDTH}\" height=\"{height:.0}\" \
         xmlns=\"http://www.w3.org/2000/svg\">\n{svg}</svg>\n"
    ));
    page(title, records.len(), &body)
}

fn page(title: &str, record_count: usize, body: &str) -> String {
    format!(
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n\
         <title>{title}</title>\n\
         <style>\n\
         body {{ font-family: sans-serif; margin: 24px; color: #222; }}\n\
         .lane {{ font-size: 12px; font-weight: bold; fill: #444; }}\n\
         .tick {{ font-size: 10px; fill: #666; }}\n\
         </style></head><body>\n\
         <h1>{title}</h1>\n\
         <p>{record_count} telemetry records, stamped in simulation time \
         (deterministic: identical runs render identical reports).</p>\n\
         {body}</body></html>\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Record;

    fn status(secs: f64, frame: u64, breaker: BreakerPhase) -> Record {
        Record::new(
            secs,
            frame,
            Event::FrameStatus {
                map: 0.6,
                fps: 30.0,
                sampling_rate: 0.5,
                detections: 1,
                uplink_bytes: frame * 100,
                queue_depth: 0,
                breaker,
            },
        )
    }

    #[test]
    fn renders_all_four_lanes() {
        let records: Vec<Record> = (0..100)
            .map(|i| {
                let phase = if i < 50 {
                    BreakerPhase::Closed
                } else {
                    BreakerPhase::Open
                };
                status(i as f64 / 30.0, i, phase)
            })
            .collect();
        let html = render_timeline("test run", &records);
        assert!(html.contains("sampling rate (fps)"));
        assert!(html.contains("per-frame mAP@0.5"));
        assert!(html.contains("uplink (MB cumulative)"));
        assert!(html.contains("breaker state"));
        assert!(html.contains("<svg"));
        // Two breaker segments: one closed rect, one open rect.
        assert!(html.contains(phase_color(BreakerPhase::Closed)));
        assert!(html.contains(phase_color(BreakerPhase::Open)));
    }

    #[test]
    fn rendering_is_deterministic() {
        let records: Vec<Record> = (0..40)
            .map(|i| status(i as f64 / 30.0, i, BreakerPhase::Closed))
            .collect();
        assert_eq!(
            render_timeline("run", &records),
            render_timeline("run", &records)
        );
    }

    #[test]
    fn empty_stream_renders_placeholder() {
        let html = render_timeline("empty", &[]);
        assert!(html.contains("No <code>frame_status</code> events"));
        assert!(!html.contains("<svg"));
    }

    #[test]
    fn long_series_are_downsampled() {
        let records: Vec<Record> = (0..10_000)
            .map(|i| status(i as f64 / 30.0, i, BreakerPhase::Closed))
            .collect();
        let html = render_timeline("long", &records);
        // ~1200 points × ~12 bytes per coordinate pair per lane keeps the
        // document far below the raw 10k-point size.
        assert!(html.len() < 400_000, "timeline too large: {}", html.len());
    }
}
