//! # Shoggoth telemetry — deterministic sim-time tracing
//!
//! Observability for the edge-cloud pipeline without breaking its
//! bit-identical determinism. The rules, enforced by tests and the xtask
//! `telemetry-hygiene` lint:
//!
//! * **Sim-time stamping only.** Every [`Record`] carries simulation
//!   seconds and a frame index ([`Stamp`]); wall clocks
//!   (`Instant`/`SystemTime`) are banned in this crate.
//! * **Observation only.** Recorders never draw randomness and the engine
//!   never branches on recorder state, so a run's `SimReport` is
//!   bit-identical with recording on ([`RingRecorder`]) or off
//!   ([`NoopRecorder`]) — and serial vs. parallel fleet runs produce
//!   identical per-device event streams.
//! * **Static dispatch.** The engine is generic over [`Recorder`], so the
//!   no-op's empty inlined `record` calls compile away entirely; hot
//!   tensor kernels take no recorder at all.
//!
//! The crate provides the event taxonomy ([`Event`]), the recorders,
//! counters and fixed-bucket histograms aggregated into a
//! [`TelemetrySummary`], a hand-rolled deterministic JSONL exporter
//! ([`export::to_jsonl`]), and a self-contained HTML/SVG timeline report
//! ([`timeline::render_timeline`]).

pub mod event;
pub mod export;
pub mod metrics;
pub mod recorder;
pub mod timeline;

pub use event::{BreakerPhase, Event, Record, Stamp};
pub use export::{record_to_json, to_jsonl};
pub use metrics::{Histogram, HistogramSummary, TelemetryCounters, TelemetrySummary};
pub use recorder::{NoopRecorder, Recorder, RingRecorder};
pub use timeline::render_timeline;
