//! Recorders: where the engine hands its stamped events.
//!
//! The contract every recorder must honor: **observation only**. A
//! recorder never draws randomness, never reads wall clocks, and the
//! engine never branches on recorder state — so a run produces
//! bit-identical results whether it records into a ring, or into the
//! zero-overhead no-op.

use crate::event::{Event, Record};
use crate::metrics::{Histogram, TelemetryCounters, TelemetrySummary};
use shoggoth_util::RingBuffer;

/// Sink for stamped telemetry events.
///
/// The simulation engine is generic over its recorder, so the no-op
/// implementation compiles away entirely (static dispatch, empty inlined
/// bodies).
pub trait Recorder {
    /// Accepts one stamped event.
    fn record(&mut self, record: Record);

    /// Whether this recorder keeps anything (`false` for the no-op; lets
    /// callers skip building expensive event payloads — never branch
    /// simulation logic on it).
    fn is_enabled(&self) -> bool {
        true
    }

    /// Aggregated summary of everything recorded so far, if this recorder
    /// aggregates (`None` for the no-op).
    fn summary(&self) -> Option<TelemetrySummary> {
        None
    }
}

/// The zero-overhead recorder: drops every event at compile time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn record(&mut self, _record: Record) {}

    #[inline(always)]
    fn is_enabled(&self) -> bool {
        false
    }
}

/// Bucket edges of the per-frame latency histogram, in milliseconds
/// (33.4 ms ≈ one 30 fps frame time).
const LATENCY_BOUNDS_MS: [f64; 7] = [20.0, 33.4, 40.0, 50.0, 66.8, 100.0, 200.0];
/// Bucket edges of the retransmit-queue-depth histogram.
const QUEUE_BOUNDS: [f64; 5] = [0.0, 1.0, 2.0, 4.0, 8.0];
/// Bucket edges of the per-frame |Δ mAP@0.5| histogram.
const MAP_DELTA_BOUNDS: [f64; 5] = [0.01, 0.05, 0.1, 0.2, 0.5];

/// A bounded in-memory recorder backed by `shoggoth-util`'s ring buffer.
///
/// Keeps the most recent `capacity` records verbatim (oldest evicted
/// first, with an eviction count), and aggregates counters plus three
/// fixed-bucket histograms over *every* record ever offered — eviction
/// loses raw events, never aggregate truth.
#[derive(Debug, Clone)]
pub struct RingRecorder {
    ring: RingBuffer<Record>,
    events_recorded: u64,
    events_dropped: u64,
    counters: TelemetryCounters,
    frame_latency_ms: Histogram,
    queue_depth: Histogram,
    map_delta: Histogram,
    last_map: Option<f64>,
}

impl RingRecorder {
    /// Default ring capacity: enough for several minutes of per-frame
    /// status events plus the sparser pipeline events.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// Creates a recorder keeping at most `capacity` raw records
    /// (a zero capacity is promoted to 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: RingBuffer::new(capacity.max(1)),
            events_recorded: 0,
            events_dropped: 0,
            counters: TelemetryCounters::default(),
            frame_latency_ms: Histogram::new(&LATENCY_BOUNDS_MS),
            queue_depth: Histogram::new(&QUEUE_BOUNDS),
            map_delta: Histogram::new(&MAP_DELTA_BOUNDS),
            last_map: None,
        }
    }

    /// Events offered so far (recorded + evicted).
    pub fn events_recorded(&self) -> u64 {
        self.events_recorded
    }

    /// Events the bounded ring has evicted.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// The counters aggregated so far.
    pub fn counters(&self) -> &TelemetryCounters {
        &self.counters
    }

    /// Copies out the retained records, oldest → newest.
    pub fn records(&self) -> Vec<Record> {
        self.ring.iter().copied().collect()
    }

    /// Drains the retained records, oldest → newest, leaving the ring
    /// empty (aggregates are kept).
    pub fn drain_records(&mut self) -> Vec<Record> {
        self.ring.drain()
    }

    fn aggregate(&mut self, event: &Event) {
        let c = &mut self.counters;
        match *event {
            Event::FrameSampled { .. } => c.frames_sampled += 1,
            Event::SampleSkipped => c.samples_skipped += 1,
            Event::ChunkUploaded {
                probe,
                attempt,
                latency_secs,
                ..
            } => {
                c.chunks_uploaded += 1;
                if probe {
                    c.probe_uploads += 1;
                }
                if attempt > 1 {
                    c.retransmits += 1;
                }
                if latency_secs.is_none() {
                    c.uploads_lost += 1;
                }
            }
            Event::UploadSuppressed { .. } => c.uploads_suppressed += 1,
            Event::UploadTimedOut { .. } => c.upload_timeouts += 1,
            Event::BreakerTransition { .. } => c.breaker_transitions += 1,
            Event::LabelBatchArrived { samples, .. } => {
                c.label_batches += 1;
                c.labeled_samples += u64::from(samples);
            }
            Event::CloudLabelsDropped => c.cloud_label_drops += 1,
            Event::CloudLabelsSlow { .. } => c.slow_label_batches += 1,
            Event::AdaptationStep { .. } => c.adaptation_steps += 1,
            Event::RateDecision { .. } => c.rate_decisions += 1,
            Event::FrameStatus {
                map,
                fps,
                queue_depth,
                ..
            } => {
                c.frames += 1;
                if fps > 0.0 {
                    self.frame_latency_ms.record(1000.0 / fps);
                }
                self.queue_depth.record(f64::from(queue_depth));
                if let Some(prev) = self.last_map {
                    self.map_delta.record((map - prev).abs());
                }
                self.last_map = Some(map);
            }
        }
    }
}

impl Default for RingRecorder {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

impl Recorder for RingRecorder {
    fn record(&mut self, record: Record) {
        self.events_recorded += 1;
        self.aggregate(&record.event);
        if self.ring.push(record).is_some() {
            self.events_dropped += 1;
        }
    }

    fn summary(&self) -> Option<TelemetrySummary> {
        Some(TelemetrySummary {
            events_recorded: self.events_recorded,
            events_dropped: self.events_dropped,
            counters: self.counters,
            frame_latency_ms: self.frame_latency_ms.summary(),
            queue_depth: self.queue_depth.summary(),
            map_delta: self.map_delta.summary(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::BreakerPhase;

    fn status(sim_secs: f64, frame: u64, map: f64) -> Record {
        Record::new(
            sim_secs,
            frame,
            Event::FrameStatus {
                map,
                fps: 30.0,
                sampling_rate: 0.5,
                detections: 2,
                uplink_bytes: 1000,
                queue_depth: 1,
                breaker: BreakerPhase::Closed,
            },
        )
    }

    #[test]
    fn noop_keeps_nothing() {
        let mut noop = NoopRecorder;
        noop.record(status(0.0, 0, 0.5));
        assert!(!noop.is_enabled());
        assert!(noop.summary().is_none());
    }

    #[test]
    fn ring_retains_and_aggregates() {
        let mut rec = RingRecorder::new(16);
        rec.record(status(0.0, 0, 0.5));
        rec.record(status(0.1, 1, 0.7));
        rec.record(Record::new(0.1, 1, Event::SampleSkipped));
        let summary = rec.summary().expect("ring aggregates");
        assert_eq!(summary.events_recorded, 3);
        assert_eq!(summary.counters.frames, 2);
        assert_eq!(summary.counters.samples_skipped, 1);
        assert_eq!(summary.frame_latency_ms.count, 2);
        assert_eq!(summary.map_delta.count, 1, "first frame has no delta");
        assert_eq!(rec.records().len(), 3);
    }

    #[test]
    fn eviction_counts_but_keeps_aggregates() {
        let mut rec = RingRecorder::new(2);
        for i in 0..5 {
            rec.record(status(i as f64 * 0.1, i, 0.5));
        }
        assert_eq!(rec.events_dropped(), 3);
        assert_eq!(rec.records().len(), 2);
        let summary = rec.summary().expect("ring aggregates");
        assert_eq!(summary.counters.frames, 5, "aggregates survive eviction");
        assert_eq!(summary.events_dropped, 3);
    }

    #[test]
    fn drain_empties_the_ring_only() {
        let mut rec = RingRecorder::new(8);
        rec.record(status(0.0, 0, 0.5));
        let drained = rec.drain_records();
        assert_eq!(drained.len(), 1);
        assert!(rec.records().is_empty());
        assert_eq!(rec.events_recorded(), 1);
    }
}
