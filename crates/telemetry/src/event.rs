//! Typed telemetry events for the edge-cloud pipeline.
//!
//! Every event is stamped with **simulation time and frame index** — never
//! wall clock — so a recorded run is bit-identical across machines, thread
//! counts, and recorder on/off configurations. The taxonomy follows the
//! pipeline end to end: frame sampling, chunk uploads and their fates,
//! breaker transitions, label arrival, adaptation steps, and the
//! controller's rate decisions with their Eq. (2)–(3) inputs.

use serde::Serialize;

/// Deterministic timestamp of one event: simulation seconds plus the
/// index of the frame being played when the event fired.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Stamp {
    /// Simulation time in seconds.
    pub sim_secs: f64,
    /// Index of the stream frame during which the event fired.
    pub frame: u64,
}

/// The circuit breaker's phase as seen by telemetry.
///
/// A local mirror of the core crate's breaker state (telemetry sits below
/// the core crate in the dependency graph, so it cannot import it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum BreakerPhase {
    /// Uploads flow normally.
    Closed,
    /// Outage detected: uplink suspended.
    Open,
    /// Probing the link with a single chunk.
    HalfOpen,
}

impl BreakerPhase {
    /// Stable lowercase name used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerPhase::Closed => "closed",
            BreakerPhase::Open => "open",
            BreakerPhase::HalfOpen => "half_open",
        }
    }
}

/// One telemetry event.
///
/// All payloads are plain scalars so records are `Copy` and the ring
/// recorder stores them without allocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum Event {
    /// A frame was sampled into the pending upload chunk.
    FrameSampled {
        /// Chunk occupancy after this frame joined.
        chunk_len: u32,
        /// Breaker phase at sampling time (open-phase samples are headed
        /// for suppression, not transmission).
        breaker: BreakerPhase,
    },
    /// A sampling instant was skipped (half-open breaker: the probe owns
    /// the uplink).
    SampleSkipped,
    /// A chunk (or probe) was encoded and transmitted on the uplink.
    ChunkUploaded {
        /// Frames in the chunk.
        frames: u32,
        /// Bytes billed on the uplink.
        bytes: u64,
        /// 1-based send attempt (`> 1` marks a retransmit).
        attempt: u32,
        /// Whether this was a half-open probe chunk.
        probe: bool,
        /// Whether the link lost it to a scheduled outage window.
        lost_to_outage: bool,
        /// Delivery latency in seconds; `None` if the link lost it.
        latency_secs: Option<f64>,
    },
    /// A full chunk was counted and discarded because the breaker was
    /// open (its would-be bytes credited as savings).
    UploadSuppressed {
        /// Frames in the discarded chunk.
        frames: u32,
        /// Uplink bytes the chunk would have cost.
        bytes: u64,
    },
    /// An in-flight upload passed its deadline unacknowledged.
    UploadTimedOut {
        /// 1-based attempt that timed out.
        attempt: u32,
        /// Whether the timed-out upload was a probe.
        probe: bool,
        /// Whether the chunk re-entered the retransmit queue (false for
        /// probes and exhausted attempts).
        requeued: bool,
    },
    /// The circuit breaker changed state.
    BreakerTransition {
        /// Phase before the transition.
        from: BreakerPhase,
        /// Phase after the transition.
        to: BreakerPhase,
    },
    /// A label batch arrived back on the edge and joined the training
    /// pool.
    LabelBatchArrived {
        /// Labeled samples in the batch.
        samples: u32,
        /// Frames the batch covers.
        frames: u32,
        /// Whether the originating upload had already timed out (labels
        /// still pool; breaker state unchanged).
        straggler: bool,
        /// Whether this acknowledgment closed the breaker (a probe
        /// landed).
        closed_breaker: bool,
    },
    /// The cloud dropped a delivered batch's labels (cloud-side fault).
    CloudLabelsDropped,
    /// The cloud returned a label batch late (cloud-side fault).
    CloudLabelsSlow {
        /// Extra cloud-side queueing latency in seconds.
        extra_secs: f64,
    },
    /// One adaptive-training session completed (edge- or cloud-side).
    AdaptationStep {
        /// Fresh samples in the session.
        fresh_samples: u32,
        /// Replay samples drawn over all mini-batches.
        replay_samples: u32,
        /// Mini-batches executed.
        mini_batches: u32,
        /// Mean training loss over the session.
        mean_loss: f64,
        /// Loss of the first mini-batch (drift shock on arrival).
        first_batch_loss: f64,
        /// Loss of the last mini-batch (how far the session converged).
        last_batch_loss: f64,
        /// Modeled wall-clock of the session in seconds.
        session_secs: f64,
        /// Whether the session ran in the cloud (AMS) rather than on the
        /// edge.
        cloud_side: bool,
    },
    /// The controller produced a new sampling rate — with every Eq.
    /// (2)–(3) input and term, so a rate trajectory can be attributed to
    /// φ, α, or λ pressure.
    RateDecision {
        /// Scene-change score φ̄ over the recent-frame horizon.
        phi_bar: f64,
        /// Edge-reported estimated accuracy α.
        alpha: f64,
        /// Raw resource-usage sample λ the edge reported.
        lambda: f64,
        /// Smoothed λ̄ after this observation.
        lambda_bar: f64,
        /// Term `R(φ) = η_r · (φ̄ − φ_target)`.
        r_phi: f64,
        /// Term `R(α) = η_α · max(0, α_target − α)`.
        r_alpha: f64,
        /// Term `R(λ) = (1 + λ̄_{t+1} − λ̄_t) · r_t`.
        r_lambda: f64,
        /// The clamped new rate `r_{t+1}` in fps.
        rate: f64,
    },
    /// Per-frame status sample: the timeline's backbone, emitted once per
    /// played frame after evaluation.
    FrameStatus {
        /// Per-frame mAP@0.5 of the system output.
        map: f64,
        /// Achieved inference FPS under training contention.
        fps: f64,
        /// Sampling rate in force (outage floor while the breaker is not
        /// closed).
        sampling_rate: f64,
        /// Detections the system emitted for this frame.
        detections: u32,
        /// Cumulative uplink bytes billed so far.
        uplink_bytes: u64,
        /// Retransmit-queue depth.
        queue_depth: u32,
        /// Breaker phase while the frame played.
        breaker: BreakerPhase,
    },
}

impl Event {
    /// Stable lowercase kind name used in exports.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::FrameSampled { .. } => "frame_sampled",
            Event::SampleSkipped => "sample_skipped",
            Event::ChunkUploaded { .. } => "chunk_uploaded",
            Event::UploadSuppressed { .. } => "upload_suppressed",
            Event::UploadTimedOut { .. } => "upload_timed_out",
            Event::BreakerTransition { .. } => "breaker_transition",
            Event::LabelBatchArrived { .. } => "label_batch_arrived",
            Event::CloudLabelsDropped => "cloud_labels_dropped",
            Event::CloudLabelsSlow { .. } => "cloud_labels_slow",
            Event::AdaptationStep { .. } => "adaptation_step",
            Event::RateDecision { .. } => "rate_decision",
            Event::FrameStatus { .. } => "frame_status",
        }
    }
}

/// A stamped event: what happened, and when in simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Record {
    /// Deterministic sim-time stamp.
    pub stamp: Stamp,
    /// The event payload.
    pub event: Event,
}

impl Record {
    /// Builds a record from its stamp components and event.
    pub fn new(sim_secs: f64, frame: u64, event: Event) -> Self {
        Self {
            stamp: Stamp { sim_secs, frame },
            event,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_and_distinct() {
        let events = [
            Event::SampleSkipped,
            Event::CloudLabelsDropped,
            Event::CloudLabelsSlow { extra_secs: 0.5 },
            Event::BreakerTransition {
                from: BreakerPhase::Closed,
                to: BreakerPhase::Open,
            },
        ];
        let kinds: Vec<&str> = events.iter().map(Event::kind).collect();
        assert_eq!(
            kinds,
            [
                "sample_skipped",
                "cloud_labels_dropped",
                "cloud_labels_slow",
                "breaker_transition"
            ]
        );
    }

    #[test]
    fn phases_have_stable_names() {
        assert_eq!(BreakerPhase::Closed.as_str(), "closed");
        assert_eq!(BreakerPhase::Open.as_str(), "open");
        assert_eq!(BreakerPhase::HalfOpen.as_str(), "half_open");
    }

    #[test]
    fn records_are_copy() {
        let r = Record::new(1.5, 45, Event::SampleSkipped);
        let s = r;
        assert_eq!(r, s, "Record must be Copy for allocation-free rings");
    }
}
