//! JSONL export of a recorded event stream.
//!
//! The writer is hand-rolled and fully deterministic: field order is
//! fixed per event kind, floats use Rust's shortest-roundtrip `Display`
//! (non-finite values become `null`), and no wall-clock or locale state
//! is consulted. One JSON object per line, stamped with `secs` (sim time)
//! and `frame`.

use crate::event::{Event, Record};

/// Formats an `f64` as a JSON value (non-finite → `null`).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `Display` omits the decimal point for integral floats; keep the
        // output unambiguously a float-typed field anyway (valid JSON
        // either way, and `1` parses as the number 1).
        s
    } else {
        "null".to_string()
    }
}

/// Incremental JSON object writer with fixed field order.
struct Obj {
    buf: String,
}

impl Obj {
    fn new(record: &Record) -> Self {
        let mut buf = String::with_capacity(160);
        buf.push_str("{\"type\":\"");
        buf.push_str(record.event.kind());
        buf.push_str("\",\"secs\":");
        buf.push_str(&json_f64(record.stamp.sim_secs));
        buf.push_str(",\"frame\":");
        buf.push_str(&record.stamp.frame.to_string());
        Self { buf }
    }

    fn key(&mut self, key: &str) {
        self.buf.push_str(",\"");
        self.buf.push_str(key);
        self.buf.push_str("\":");
    }

    fn num(mut self, key: &str, v: f64) -> Self {
        self.key(key);
        self.buf.push_str(&json_f64(v));
        self
    }

    fn opt_num(mut self, key: &str, v: Option<f64>) -> Self {
        self.key(key);
        match v {
            Some(v) => self.buf.push_str(&json_f64(v)),
            None => self.buf.push_str("null"),
        }
        self
    }

    fn int(mut self, key: &str, v: u64) -> Self {
        self.key(key);
        self.buf.push_str(&v.to_string());
        self
    }

    fn flag(mut self, key: &str, v: bool) -> Self {
        self.key(key);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    fn text(mut self, key: &str, v: &str) -> Self {
        // Only used for enum kind names, which contain no characters that
        // need escaping.
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(v);
        self.buf.push('"');
        self
    }

    fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Serializes one record to a single JSON line (no trailing newline).
pub fn record_to_json(record: &Record) -> String {
    let obj = Obj::new(record);
    match record.event {
        Event::FrameSampled { chunk_len, breaker } => obj
            .int("chunk_len", u64::from(chunk_len))
            .text("breaker", breaker.as_str())
            .finish(),
        Event::SampleSkipped | Event::CloudLabelsDropped => obj.finish(),
        Event::ChunkUploaded {
            frames,
            bytes,
            attempt,
            probe,
            lost_to_outage,
            latency_secs,
        } => obj
            .int("frames", u64::from(frames))
            .int("bytes", bytes)
            .int("attempt", u64::from(attempt))
            .flag("probe", probe)
            .flag("lost_to_outage", lost_to_outage)
            .opt_num("latency_secs", latency_secs)
            .finish(),
        Event::UploadSuppressed { frames, bytes } => obj
            .int("frames", u64::from(frames))
            .int("bytes", bytes)
            .finish(),
        Event::UploadTimedOut {
            attempt,
            probe,
            requeued,
        } => obj
            .int("attempt", u64::from(attempt))
            .flag("probe", probe)
            .flag("requeued", requeued)
            .finish(),
        Event::BreakerTransition { from, to } => obj
            .text("from", from.as_str())
            .text("to", to.as_str())
            .finish(),
        Event::LabelBatchArrived {
            samples,
            frames,
            straggler,
            closed_breaker,
        } => obj
            .int("samples", u64::from(samples))
            .int("frames", u64::from(frames))
            .flag("straggler", straggler)
            .flag("closed_breaker", closed_breaker)
            .finish(),
        Event::CloudLabelsSlow { extra_secs } => obj.num("extra_secs", extra_secs).finish(),
        Event::AdaptationStep {
            fresh_samples,
            replay_samples,
            mini_batches,
            mean_loss,
            first_batch_loss,
            last_batch_loss,
            session_secs,
            cloud_side,
        } => obj
            .int("fresh_samples", u64::from(fresh_samples))
            .int("replay_samples", u64::from(replay_samples))
            .int("mini_batches", u64::from(mini_batches))
            .num("mean_loss", mean_loss)
            .num("first_batch_loss", first_batch_loss)
            .num("last_batch_loss", last_batch_loss)
            .num("session_secs", session_secs)
            .flag("cloud_side", cloud_side)
            .finish(),
        Event::RateDecision {
            phi_bar,
            alpha,
            lambda,
            lambda_bar,
            r_phi,
            r_alpha,
            r_lambda,
            rate,
        } => obj
            .num("phi_bar", phi_bar)
            .num("alpha", alpha)
            .num("lambda", lambda)
            .num("lambda_bar", lambda_bar)
            .num("r_phi", r_phi)
            .num("r_alpha", r_alpha)
            .num("r_lambda", r_lambda)
            .num("rate", rate)
            .finish(),
        Event::FrameStatus {
            map,
            fps,
            sampling_rate,
            detections,
            uplink_bytes,
            queue_depth,
            breaker,
        } => obj
            .num("map", map)
            .num("fps", fps)
            .num("sampling_rate", sampling_rate)
            .int("detections", u64::from(detections))
            .int("uplink_bytes", uplink_bytes)
            .int("queue_depth", u64::from(queue_depth))
            .text("breaker", breaker.as_str())
            .finish(),
    }
}

/// Serializes a record stream to JSONL (one object per line, trailing
/// newline included when non-empty).
pub fn to_jsonl(records: &[Record]) -> String {
    let mut out = String::new();
    for record in records {
        out.push_str(&record_to_json(record));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::BreakerPhase;

    #[test]
    fn lines_carry_stamp_and_kind() {
        let line = record_to_json(&Record::new(1.5, 45, Event::SampleSkipped));
        assert_eq!(
            line,
            "{\"type\":\"sample_skipped\",\"secs\":1.5,\"frame\":45}"
        );
    }

    #[test]
    fn lost_uploads_serialize_null_latency() {
        let line = record_to_json(&Record::new(
            2.0,
            60,
            Event::ChunkUploaded {
                frames: 4,
                bytes: 9000,
                attempt: 2,
                probe: false,
                lost_to_outage: true,
                latency_secs: None,
            },
        ));
        assert!(line.contains("\"latency_secs\":null"), "{line}");
        assert!(line.contains("\"lost_to_outage\":true"), "{line}");
        assert!(line.contains("\"attempt\":2"), "{line}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let line = record_to_json(&Record::new(
            0.0,
            0,
            Event::CloudLabelsSlow {
                extra_secs: f64::NAN,
            },
        ));
        assert!(line.contains("\"extra_secs\":null"), "{line}");
    }

    #[test]
    fn jsonl_is_one_line_per_record() {
        let records = [
            Record::new(0.0, 0, Event::SampleSkipped),
            Record::new(
                0.1,
                3,
                Event::BreakerTransition {
                    from: BreakerPhase::Closed,
                    to: BreakerPhase::Open,
                },
            ),
        ];
        let jsonl = to_jsonl(&records);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("\"from\":\"closed\""));
        assert!(lines[1].contains("\"to\":\"open\""));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            // Balanced quotes: every key/value string is closed.
            assert_eq!(line.matches('"').count() % 2, 0);
        }
    }
}
