//! Property test: fixed-bucket histograms never lose a sample.

use proptest::prelude::*;
use shoggoth_telemetry::Histogram;

proptest! {
    /// For arbitrary bounds and arbitrary samples — including non-finite
    /// ones, which land in the overflow bucket — the bucket counts always
    /// sum to the number of recorded events.
    #[test]
    fn bucket_counts_sum_to_event_count(
        values in proptest::collection::vec(-1e6..1e6f64, 0..200),
        b1 in -10.0..10.0f64,
        b2 in 10.0..1000.0f64,
        nans in 0usize..4,
        infs in 0usize..4,
    ) {
        let mut h = Histogram::new(&[b1, b2]);
        for v in &values {
            h.record(*v);
        }
        for _ in 0..nans {
            h.record(f64::NAN);
        }
        for _ in 0..infs {
            h.record(f64::INFINITY);
        }
        let expected = (values.len() + nans + infs) as u64;
        prop_assert_eq!(h.total(), expected);
        prop_assert_eq!(h.counts().iter().sum::<u64>(), expected);
        prop_assert_eq!(h.summary().count, expected);
        prop_assert_eq!(
            h.summary().buckets.iter().map(|(_, c)| *c).sum::<u64>(),
            expected
        );
    }
}
